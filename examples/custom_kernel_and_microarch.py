#!/usr/bin/env python
"""Author a custom kernel in the loop-nest DSL and study it end to end.

Shows the full substrate: DSL -> IR -> ProGraML-style graph -> IR2Vec-style
vector -> simulated execution with PAPI-style counters.  The thread-sweep
study then runs through the unified pipeline: the ``fig1`` experiment spec
accepts any micro-architecture (a preset name or a full parameter dict), so
a user-defined machine slots straight into the declarative flow — no script
required.
"""

import dataclasses

import numpy as np

from repro.embeddings import IR2VecEncoder
from repro.frontend import Array, Assign, Dim, For, KernelSpec, LoopVar, Reduce, analyze_spec, lower_to_ir
from repro.graphs import build_programl_graph
from repro.ir import print_module
from repro.pipeline import run_experiment
from repro.simulator import COMET_LAKE_8C


def build_kernel() -> KernelSpec:
    """A blocked dot-product-with-update kernel (user-defined)."""
    N = Dim("N")
    x = Array("x", (N,))
    y = Array("y", (N,))
    out = Array("out", (N,))
    i, j = LoopVar("i"), LoopVar("j")
    body = [
        For(i, N // 64, [
            Assign(out[i], 0.0),
            For(j, 64, [Reduce(out[i], x[i * 64 + j] * y[i * 64 + j])]),
        ], parallel=True)
    ]
    return KernelSpec("blocked-dot", suite="custom", arrays=[x, y, out],
                      body=body, base_sizes={"N": 2_000_000},
                      domain="user example")


def build_microarch() -> dict:
    """A user-defined 12-core machine, derived from the Comet Lake preset."""
    return dict(dataclasses.asdict(COMET_LAKE_8C),
                name="custom_12c", cores=12, l3_mb=24.0, mem_bw_gbs=55.0)


def main() -> None:
    spec = build_kernel()

    module = lower_to_ir(spec)
    print("=== IR (first 25 lines) ===")
    print("\n".join(print_module(module).splitlines()[:25]))

    graph = build_programl_graph(module)
    vector = IR2VecEncoder().encode_module(module)
    print(f"\nProGraML-style graph: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges")
    print(f"IR2Vec-style vector: dim={vector.shape[0]}, "
          f"norm={np.linalg.norm(vector):.2f}")

    summary = analyze_spec(spec, scale=1.0)
    print(f"\nworkload: {summary.flops:.2e} flops, "
          f"{summary.mem_bytes / 1e6:.1f} MB of accesses, "
          f"arithmetic intensity {summary.arithmetic_intensity:.3f} flops/byte")

    # the thread-sweep study of Figure 1, on the custom machine, through the
    # declarative pipeline — experiment parameters accept custom microarchs
    custom_arch = build_microarch()
    run = run_experiment(
        "fig1",
        overrides={"arch": custom_arch, "max_kernels": 6, "num_inputs": 3},
        cache_dir=None,
    )
    print(f"\n=== fig1 on the custom {custom_arch['name']} machine ===")
    print(run.text)


if __name__ == "__main__":
    main()
