#!/usr/bin/env python
"""Author a custom kernel in the loop-nest DSL and study it end to end.

Shows the full substrate: DSL -> IR -> ProGraML-style graph -> IR2Vec-style
vector -> simulated execution on two micro-architectures with PAPI-style
counters, plus a thread sweep to find the best configuration on each machine.
"""

import numpy as np

from repro.embeddings import IR2VecEncoder
from repro.frontend import Array, Assign, Dim, For, KernelSpec, LoopVar, Reduce, analyze_spec, lower_to_ir
from repro.frontend.openmp import OMPConfig
from repro.graphs import build_programl_graph
from repro.ir import print_module
from repro.profiling import PAPIProfiler, SELECTED_COUNTERS
from repro.simulator import BROADWELL_8C, COMET_LAKE_8C, OpenMPSimulator


def build_kernel() -> KernelSpec:
    """A blocked dot-product-with-update kernel (user-defined)."""
    N = Dim("N")
    x = Array("x", (N,))
    y = Array("y", (N,))
    out = Array("out", (N,))
    i, j = LoopVar("i"), LoopVar("j")
    body = [
        For(i, N // 64, [
            Assign(out[i], 0.0),
            For(j, 64, [Reduce(out[i], x[i * 64 + j] * y[i * 64 + j])]),
        ], parallel=True)
    ]
    return KernelSpec("blocked-dot", suite="custom", arrays=[x, y, out],
                      body=body, base_sizes={"N": 2_000_000},
                      domain="user example")


def main() -> None:
    spec = build_kernel()

    module = lower_to_ir(spec)
    print("=== IR (first 25 lines) ===")
    print("\n".join(print_module(module).splitlines()[:25]))

    graph = build_programl_graph(module)
    vector = IR2VecEncoder().encode_module(module)
    print(f"\nProGraML-style graph: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges")
    print(f"IR2Vec-style vector: dim={vector.shape[0]}, "
          f"norm={np.linalg.norm(vector):.2f}")

    summary = analyze_spec(spec, scale=1.0)
    print(f"\nworkload: {summary.flops:.2e} flops, "
          f"{summary.mem_bytes / 1e6:.1f} MB of accesses, "
          f"arithmetic intensity {summary.arithmetic_intensity:.3f} flops/byte")

    for arch in (COMET_LAKE_8C, BROADWELL_8C):
        simulator = OpenMPSimulator(arch, noise=0.0)
        times = {t: simulator.run(summary, OMPConfig(t)).time_seconds
                 for t in range(1, arch.max_threads + 1)}
        best = min(times, key=times.get)
        profiler = PAPIProfiler(arch, noise=0.0)
        record = profiler.profile(spec, scale=1.0, events=SELECTED_COUNTERS)
        print(f"\n{arch.name}: best thread count = {best} "
              f"({times[best] * 1e3:.2f} ms vs "
              f"{times[arch.max_threads] * 1e3:.2f} ms at {arch.max_threads} threads)")
        print("  counters @ default config: "
              + ", ".join(f"{k.split('_', 1)[1]}={v:.2e}"
                          for k, v in record.counters.items()))


if __name__ == "__main__":
    main()
