#!/usr/bin/env python
"""Tune threads, scheduling policy and chunk size (the Table-2 search space).

Runs the ``fig7`` experiment spec — leave-one-application-out validation of
the MGA tuner against the OpenTuner-like and Bayesian baselines over the
full Table-2 space on the Skylake 10c/20t model — at reduced scale through
the unified pipeline.  The black-box searches fan out over ``workers=2``
campaign sessions; the results are identical at any worker count.

Shell equivalent::

    python -m repro run fig7 --workers 2 \
        --set max_apps=4 --set num_inputs=2 --set epochs=6 --set budget=6
"""

from repro.pipeline import run_experiment


def main() -> None:
    run = run_experiment(
        "fig7",
        overrides={"max_apps": 4, "num_inputs": 2, "epochs": 6, "budget": 6},
        workers=2,
        cache_dir=None,
    )
    for stage in run.stages:
        print(f"stage {stage.name:<10} {stage.kind:<16} {stage.seconds:6.2f}s")
    print()
    print(run.text)


if __name__ == "__main__":
    main()
