#!/usr/bin/env python
"""Tune threads, scheduling policy and chunk size (the Table-2 search space).

Reproduces the §4.1.4 workflow at small scale on the Skylake 10c/20t model:
leave-one-application-out training, then a comparison of the MGA prediction
against the OpenTuner-like and Bayesian baselines for the held-out kernel.
"""

import numpy as np

from repro.core import MGATuner
from repro.datasets import OpenMPDatasetBuilder
from repro.evaluation.metrics import geometric_mean
from repro.kernels import registry
from repro.simulator import SKYLAKE_4114
from repro.tuners import BLISSTuner, OpenTunerLike, SearchSpace, YtoptTuner, full_search_space


def main() -> None:
    arch = SKYLAKE_4114
    space = full_search_space(max_threads=arch.max_threads)
    print(f"search space: {len(space)} configurations "
          f"(threads x schedule x chunk, Table 2)")

    held_out = "polybench/2mm"
    train_specs = [registry.get_kernel(f"polybench/{n}")
                   for n in ("gemm", "lu", "syrk", "jacobi-2d", "mvt",
                             "correlation", "trmm", "bicg")]
    builder = OpenMPDatasetBuilder(arch, list(space), seed=0)
    dataset = builder.build(train_specs, np.geomspace(1e6, 3e8, 4))

    tuner = MGATuner(arch, list(space), seed=0)
    tuner.fit(dataset, epochs=25)

    # evaluate on the held-out application across several input sizes
    target = registry.get_kernel(held_out)
    eval_builder = OpenMPDatasetBuilder(arch, list(space), seed=1)
    eval_ds = eval_builder.build([target], np.geomspace(1e6, 3e8, 4))

    predictions = tuner.predict_indices(eval_ds, list(range(len(eval_ds))))
    mga_speedups = [eval_ds.samples[i].speedup_of(int(p))
                    for i, p in enumerate(predictions)]
    oracle_speedups = [s.oracle_speedup for s in eval_ds.samples]

    # search tuners get one tuning session on the median input
    reference = eval_ds.samples[len(eval_ds) // 2]
    lookup = SearchSpace(eval_ds.configs)

    def objective(config):
        return float(reference.times[lookup.index_of(config)])

    rows = [("MGA (per-input prediction)", geometric_mean(mga_speedups))]
    for name, factory in (("OpenTuner", OpenTunerLike), ("ytopt", YtoptTuner),
                          ("BLISS", BLISSTuner)):
        result = factory(budget=10, seed=0).tune(objective, lookup)
        chosen = lookup.index_of(result.best_config)
        speedups = [s.speedup_of(chosen) for s in eval_ds.samples]
        rows.append((f"{name} (single config, 10 evals)",
                     geometric_mean(speedups)))
    rows.append(("Oracle", geometric_mean(oracle_speedups)))

    print(f"\ngeometric-mean speedup over the default configuration "
          f"for held-out {held_out}:")
    for name, value in rows:
        print(f"  {name:<32} {value:5.2f}x")


if __name__ == "__main__":
    main()
