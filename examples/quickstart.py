#!/usr/bin/env python
"""Quickstart: run a paper experiment through the unified pipeline.

Every figure/table of the paper is a declarative
:class:`~repro.pipeline.ExperimentSpec`; ``run_experiment`` executes it with
content-addressed stage caching, so the expensive dataset build happens once
and every re-run (or any other experiment with the same dataset recipe)
reuses it.  The same flow is available from the shell as::

    python -m repro list
    python -m repro run fig1 --quick --cache ~/.cache/repro/stages
"""

import tempfile

from repro.pipeline import experiment_names, get_spec, run_experiment


def main() -> None:
    print("registered experiments:", ", ".join(experiment_names()))
    spec = get_spec("fig1")
    print(f"\nfig1 parameters: {dict(spec.params)}")
    print(f"fig1 stages:     "
          f"{' -> '.join(s.name + ':' + s.kind for s in spec.stages)}")

    with tempfile.TemporaryDirectory() as cache:
        # cold run: the dataset stage simulates the loop x input x config grid
        run = run_experiment("fig1", quick=True, cache_dir=cache)
        print("\nfirst run (cold cache):")
        for stage in run.stages:
            print(f"  stage {stage.name:<10} {stage.cache:<9} "
                  f"{stage.seconds:6.2f}s")

        # warm run: the dataset comes back from the stage cache, bit-for-bit
        rerun = run_experiment("fig1", quick=True, cache_dir=cache)
        print("second run (warm cache):")
        for stage in rerun.stages:
            print(f"  stage {stage.name:<10} {stage.cache:<9} "
                  f"{stage.seconds:6.2f}s")

    print("\n" + rerun.text)


if __name__ == "__main__":
    main()
