#!/usr/bin/env python
"""Quickstart: tune the OpenMP runtime configuration of one kernel.

Builds a small training dataset on the simulated Comet Lake machine, trains
the MGA tuner (heterogeneous GNN + denoising autoencoder + counters), and
tunes an *unseen* kernel at an unseen input size — comparing the predicted
configuration against the default and the brute-force oracle.
"""

import numpy as np

from repro.core import MGATuner
from repro.datasets import OpenMPDatasetBuilder
from repro.frontend import analyze_spec
from repro.frontend.openmp import default_omp_config
from repro.kernels import registry
from repro.simulator import COMET_LAKE_8C, OpenMPSimulator
from repro.tuners import thread_search_space


def main() -> None:
    arch = COMET_LAKE_8C
    space = thread_search_space(arch)

    # 1. training data: a handful of loops x input sizes (leave atax out)
    train_specs = [s for s in registry.openmp_kernels()[:16]
                   if s.uid != "polybench/atax"]
    builder = OpenMPDatasetBuilder(arch, list(space), seed=0)
    dataset = builder.build(train_specs, np.geomspace(1e5, 3e8, 5))
    print(f"training dataset: {len(dataset)} samples, "
          f"{dataset.num_configs} configurations")

    # 2. train the MGA tuner
    tuner = MGATuner(arch, list(space), seed=0)
    history = tuner.fit(dataset, epochs=30)
    print(f"final training loss: {history['loss'][-1]:.4f}")

    # 3. tune an unseen kernel at an unseen input size
    target = registry.get_kernel("polybench/atax")
    scale = target.scale_for_bytes(32e6)
    config, counters = tuner.tune(target, scale=scale)
    print(f"\npredicted configuration for {target.uid}: {config.label()}")

    # 4. compare against default and oracle on the simulator
    simulator = OpenMPSimulator(arch, noise=0.0)
    summary = analyze_spec(target, scale)
    default_time = simulator.run(summary, default_omp_config(arch.cores)).time_seconds
    predicted_time = simulator.run(summary, config).time_seconds
    times = [(c, simulator.run(summary, c).time_seconds) for c in space]
    oracle_config, oracle_time = min(times, key=lambda kv: kv[1])
    print(f"default ({default_omp_config(arch.cores).label()}): "
          f"{default_time * 1e3:.3f} ms")
    print(f"MGA prediction ({config.label()}): {predicted_time * 1e3:.3f} ms "
          f"-> speedup {default_time / predicted_time:.2f}x")
    print(f"oracle ({oracle_config.label()}): {oracle_time * 1e3:.3f} ms "
          f"-> speedup {default_time / oracle_time:.2f}x")


if __name__ == "__main__":
    main()
