#!/usr/bin/env python
"""OpenCL heterogeneous device mapping (the §4.2 task).

Builds the device-mapping dataset for the AMD Tahiti 7970 + i7-3820 pair,
trains the multimodal MGA mapper and the Grewe et al. decision-tree baseline,
and reports accuracy / F1 / speedup over the static mapping.
"""

from repro.core import DeviceMapper
from repro.datasets import DevMapDatasetBuilder
from repro.evaluation.metrics import geometric_mean
from repro.kernels import registry
from repro.nn import accuracy, f1_score
from repro.simulator import TAHITI_7970
from repro.tuners import GreweBaseline, StaticMappingBaseline


def main() -> None:
    specs = registry.opencl_kernels()[:60]
    builder = DevMapDatasetBuilder(TAHITI_7970, seed=0)
    dataset = builder.build(specs, points_per_kernel=3)
    labels = dataset.labels()
    print(f"device-mapping dataset: {len(dataset)} points, "
          f"{100 * labels.mean():.0f}% GPU-labelled "
          f"(device: {dataset.gpu_name})")

    train_idx, val_idx = dataset.stratified_kfold(k=5, seed=0)[0]
    y_true = labels[val_idx]
    static_label = dataset.static_mapping_label()

    def speedup_over_static(preds):
        ref = [dataset.samples[i].time_of(static_label) for i in val_idx]
        got = [dataset.samples[i].time_of(int(p)) for i, p in zip(val_idx, preds)]
        return geometric_mean([r / g for r, g in zip(ref, got)])

    results = {}
    static = StaticMappingBaseline().fit(dataset, train_idx)
    results["Static mapping"] = static.predict(dataset, val_idx)
    grewe = GreweBaseline(seed=0).fit(dataset, train_idx)
    results["Grewe et al."] = grewe.predict(dataset, val_idx)
    mga = DeviceMapper(seed=0)
    mga.fit(dataset, train_indices=train_idx, epochs=25)
    results["MGA"] = mga.predict(dataset, val_idx)

    print(f"\n{'approach':<16}{'accuracy %':>12}{'F1':>8}{'speedup/static':>16}")
    for name, preds in results.items():
        print(f"{name:<16}{100 * accuracy(preds, y_true):12.1f}"
              f"{f1_score(preds, y_true):8.2f}"
              f"{speedup_over_static(preds):16.2f}")
    print(f"{'Oracle':<16}{100.0:12.1f}{1.0:8.2f}"
          f"{speedup_over_static(y_true):16.2f}")


if __name__ == "__main__":
    main()
