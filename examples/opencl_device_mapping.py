#!/usr/bin/env python
"""OpenCL heterogeneous device mapping (the §4.2 task).

Runs the ``table3`` experiment spec — stratified cross-validation of the
multimodal MGA mapper against the Grewe et al. and static-mapping baselines
on the AMD Tahiti 7970 + i7-3820 pair — at reduced scale through the
unified pipeline.

Shell equivalent::

    python -m repro run table3 \
        --set 'gpus=["amd_tahiti_7970"]' --set max_kernels=60 \
        --set folds=5 --set epochs=10 \
        --set 'include_baselines=["Static mapping", "Grewe et al."]'
"""

from repro.pipeline import run_experiment


def main() -> None:
    run = run_experiment(
        "table3",
        overrides={
            "gpus": ["amd_tahiti_7970"],
            "max_kernels": 60,
            "folds": 5,
            "epochs": 10,
            "include_baselines": ["Static mapping", "Grewe et al."],
        },
        cache_dir=None,
    )
    for stage in run.stages:
        print(f"stage {stage.name:<10} {stage.kind:<16} {stage.seconds:6.2f}s")
    print()
    print(run.text)


if __name__ == "__main__":
    main()
