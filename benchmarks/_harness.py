"""Shared benchmark harness: wall-clock timing + machine-readable artifacts.

Benchmarks that want their results tracked across PRs call
:func:`write_bench_json`, which drops a ``BENCH_<name>.json`` file at the
repository root with the payload plus machine/timestamp metadata.  CI runs
the quick modes of these benchmarks so performance regressions show up in
the trajectory, not just in anecdotes.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

REPO_ROOT = Path(__file__).resolve().parent.parent


def time_call(fn: Callable[[], object], repeats: int = 3,
              warmup: int = 1) -> Dict[str, Union[float, List[float]]]:
    """Time ``fn()`` after ``warmup`` throwaway runs; returns best/mean/all."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "times_s": times,
    }


def machine_info() -> Dict[str, str]:
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def write_bench_json(name: str, payload: Dict,
                     directory: Optional[Path] = None) -> Path:
    """Write ``BENCH_<name>.json`` (repo root by default); returns the path."""
    out_dir = Path(directory) if directory is not None else REPO_ROOT
    path = out_dir / f"BENCH_{name}.json"
    document = {
        "benchmark": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": machine_info(),
    }
    document.update(payload)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path
