"""Campaign scaling: multiprocess evaluation fan-out vs the serial loop.

Runs the same random-search campaign (same seeds, same batch schedule) over
the Table-2 configuration space at increasing worker counts and reports the
wall-clock speedup.  The objective is the simulator with
``walltime_scale=1`` — every evaluation *occupies* the simulated execution
time (capped), which is the cost structure of a real campaign: the search
process waits on kernel executions, and a worker pool overlaps those waits.
Because every measurement's RNG is seeded per configuration, the histories
at every worker count are byte-identical — the speedup is pure overlap, not
a different search trajectory.

Writes ``BENCH_campaign_scaling.json`` at the repository root.  Run directly
(``python benchmarks/bench_campaign_scaling.py [--quick]``) or through
pytest.
"""

import argparse
import json

from repro.simulator.microarch import SKYLAKE_4114
from repro.tuners import (
    RandomSearchTuner,
    SimObjectiveSpec,
    TuningCampaign,
    full_search_space,
)

from _harness import write_bench_json

#: gemm simulates in 0.6-15 ms depending on the configuration; scaling the
#: occupancy up until (nearly) every evaluation saturates the cap gives each
#: one a uniform ~30 ms of wall time, so the measured speedup reflects
#: evaluation overlap rather than luck in how slow/fast configurations land
#: on workers.
WALLTIME_SCALE = 20.0
WALLTIME_CAP = 0.030


def _run_campaign(workers: int, budget: int, batch_size: int,
                  repeats: int) -> TuningCampaign:
    space = full_search_space(max_threads=SKYLAKE_4114.max_threads)
    spec = SimObjectiveSpec(kernel_uid="polybench/gemm", arch=SKYLAKE_4114,
                            scale=1.0, seed=99, repeats=repeats,
                            walltime_scale=WALLTIME_SCALE,
                            walltime_cap=WALLTIME_CAP)
    campaign = TuningCampaign(RandomSearchTuner(budget=budget, seed=11),
                              space, spec, workers=workers,
                              batch_size=batch_size)
    campaign.run()
    return campaign


def run(budget: int = 64, batch_size: int = 8, repeats: int = 2,
        worker_counts=(1, 2, 4)) -> dict:
    results = {}
    reference_history = None
    for workers in worker_counts:
        campaign = _run_campaign(workers, budget, batch_size, repeats)
        if reference_history is None:
            reference_history = campaign.history
        elif campaign.history != reference_history:
            raise AssertionError(
                f"history at workers={workers} diverged from workers="
                f"{worker_counts[0]} — campaign is not order-independent")
        results[workers] = campaign.wall_seconds
    serial = results[worker_counts[0]]
    top = worker_counts[-1]
    return {
        "objective": {"kernel": "polybench/gemm", "arch": SKYLAKE_4114.name,
                      "repeats": repeats, "walltime_scale": WALLTIME_SCALE,
                      "walltime_cap_s": WALLTIME_CAP},
        "budget": budget,
        "batch_size": batch_size,
        "histories_identical": True,
        "workers": {
            str(w): {"wall_s": results[w], "speedup": serial / results[w]}
            for w in worker_counts
        },
        # dimensionless ratio for the CI regression gate (see
        # benchmarks/check_regression.py)
        "gate_metrics": {
            f"campaign_speedup_{top}w": serial / results[top],
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small budget, workers 1-2, no speedup assert "
                             "(CI smoke mode)")
    args = parser.parse_args()

    if args.quick:
        payload = run(budget=16, batch_size=4, repeats=1,
                      worker_counts=(1, 2))
    else:
        payload = run()
    path = write_bench_json("campaign_scaling", payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")

    if not args.quick:
        speedup4 = payload["workers"]["4"]["speedup"]
        assert speedup4 >= 2.0, (
            f"expected >=2x wall-clock speedup at 4 workers, got "
            f"{speedup4:.2f}x")
        print(f"4-worker speedup {speedup4:.2f}x (>= 2x required)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
