"""Figure 9: µ-architecture portability (train Comet Lake, predict Broadwell /
Sandy Bridge) at reduced size."""

from repro.evaluation.experiments import fig9
from repro.evaluation.metrics import geometric_mean


def test_fig9_microarch_portability(once, capsys):
    result = once(fig9.run, max_kernels=10, num_inputs=3, epochs=20)
    with capsys.disabled():
        print()
        print(fig9.format_result(result))
    for arch, data in result["per_arch"].items():
        pred = geometric_mean(data["predicted"])
        oracle = geometric_mean(data["oracle"])
        assert pred > 0.6 * oracle      # portable predictions remain useful
        assert pred >= 0.75             # and do not regress far below the default
