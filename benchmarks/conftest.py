"""Benchmark configuration: every experiment runs once (no repetition) since
each "iteration" is a full (miniature) reproduction of a paper experiment.

``REPRO_BENCH_QUICK=1`` switches the pytest benchmarks into smoke mode:
drastically reduced dataset sizes / epochs and relaxed (or skipped) quality
assertions.  CI runs that mode on every push so a benchmark that stops
importing, crashing or converging is caught immediately instead of rotting.
"""

import os

import pytest

#: quick/smoke mode flag consumed by the individual benchmark files
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["note"] = ("MGA-tuner reproduction benchmarks; timings are "
                            "harness wall-clock, experiment outputs are printed"
                            + ("; QUICK smoke mode" if QUICK else ""))


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once and return its result."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)
    return runner
