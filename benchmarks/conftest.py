"""Benchmark configuration: every experiment runs once (no repetition) since
each "iteration" is a full (miniature) reproduction of a paper experiment."""

import pytest


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["note"] = ("MGA-tuner reproduction benchmarks; timings are "
                            "harness wall-clock, experiment outputs are printed")


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once and return its result."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)
    return runner
