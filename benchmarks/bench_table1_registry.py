"""Table 1: benchmark-suite coverage of the kernel registry."""

from repro.kernels import registry


def test_table1_registry(once, capsys):
    specs = once(registry.all_kernels)
    with capsys.disabled():
        print()
        print("Table 1: benchmarks per suite")
        for suite, apps in registry.TABLE1.items():
            print(f"  {suite:<16} {len(apps):3d} applications: "
                  f"{', '.join(apps[:6])}{' ...' if len(apps) > 6 else ''}")
        print(f"  total kernels (native models): {len(specs)}")
    assert len(specs) >= 100
