"""Training throughput: the vectorised fast path vs the seed implementation.

Times one ``MGAModel.fit`` epoch (DAE pre-training excluded) in three
configurations over the same OpenMP tuning dataset:

* ``seed``  — the frozen snapshot of the original implementation
  (``_seed_baseline``): float64, reallocating gradient accumulation,
  per-gate GRU matmuls with two ``concat`` copies per step, ``np.add.at``
  scatters, and block-diagonal batches rebuilt + frozen modalities
  re-encoded for every minibatch of every epoch.
* ``naive`` — the new engine with every fast-path switch off (float64,
  ``np.add.at``, no batch/frozen caching): isolates how much comes from the
  engine itself (in-place grads, iterative backward, fused GRU) vs the
  caching/layout/dtype switches.
* ``fast``  — the default training configuration: float32, sorted-segment
  (``reduceat``) message passing over cached CSR edge layouts, cached
  block-diagonal batches and precomputed frozen-modality features.

Writes ``BENCH_training_throughput.json`` at the repository root via the
shared harness.  Run directly (``python benchmarks/bench_training_throughput.py
[--quick]``) or through pytest.
"""

import argparse
import json

import numpy as np

from repro.core.mga import MGAModel
from repro.datasets.openmp import OpenMPDatasetBuilder
from repro.kernels import registry
from repro.nn import use_fast_segment_ops
from repro.simulator.microarch import SKYLAKE_4114
from repro.tuners.space import thread_search_space

from _harness import time_call, write_bench_json
from _seed_baseline import SeedMGATrainer


def _build_dataset(num_kernels: int, num_inputs: int):
    space = thread_search_space(SKYLAKE_4114)
    builder = OpenMPDatasetBuilder(SKYLAKE_4114, list(space), seed=0)
    dataset = builder.build(registry.openmp_kernels()[:num_kernels],
                            np.geomspace(1e5, 1e8, num_inputs))
    graphs = [s.graph for s in dataset.samples]
    vectors = np.stack([s.vector for s in dataset.samples])
    extra = dataset.counter_matrix()
    labels = dataset.labels()
    return dataset, graphs, vectors, extra, labels


def _seed_epoch_seconds(data, epochs: int, repeats: int) -> float:
    """Epoch time of the frozen seed implementation on the same dataset."""
    dataset, graphs, vectors, extra, labels = data
    # the frozen modalities are pre-fitted exactly as in the other configs;
    # the seed loop re-encodes / re-scales them per minibatch regardless
    frozen = MGAModel(graph_feature_dim=graphs[0].feature_dim,
                      vector_dim=vectors.shape[1], extra_dim=extra.shape[1],
                      num_classes=dataset.num_configs, seed=0, dtype="float64")
    frozen.dae.fit(vectors, epochs=2)
    frozen.extra_scaler.fit(frozen.prepare_extra(extra))
    trainer = SeedMGATrainer(graphs[0].feature_dim, dataset.num_configs,
                             frozen.dae, frozen.extra_scaler,
                             frozen.prepare_extra, seed=0)
    timing = time_call(
        lambda: trainer.fit(graphs, vectors, extra, labels, epochs=epochs),
        repeats=repeats, warmup=1)
    return timing["best_s"] / epochs


def _epoch_seconds(model: MGAModel, data, epochs: int, fast_ops: bool,
                   cache_batches: bool, precompute_frozen: bool,
                   repeats: int) -> float:
    _, graphs, vectors, extra, labels = data
    model.dae.fit(vectors, epochs=2)
    model.extra_scaler.fit(model.prepare_extra(extra))
    with use_fast_segment_ops(fast_ops):
        timing = time_call(
            lambda: model.fit(graphs, vectors, extra, labels, epochs=epochs,
                              dae_epochs=0, cache_batches=cache_batches,
                              precompute_frozen=precompute_frozen),
            repeats=repeats, warmup=1)
    return timing["best_s"] / epochs


def run(quick: bool = False) -> dict:
    num_kernels, num_inputs = (6, 3) if quick else (12, 4)
    epochs = 2 if quick else 4
    repeats = 2 if quick else 3
    data = _build_dataset(num_kernels, num_inputs)
    dataset, graphs, vectors, extra, labels = data
    model_kwargs = dict(
        graph_feature_dim=graphs[0].feature_dim, vector_dim=vectors.shape[1],
        extra_dim=extra.shape[1], num_classes=dataset.num_configs, seed=0)

    seed_s = _seed_epoch_seconds(data, epochs, repeats)

    naive_model = MGAModel(dtype="float64", **model_kwargs)
    naive_s = _epoch_seconds(naive_model, data, epochs, fast_ops=False,
                             cache_batches=False, precompute_frozen=False,
                             repeats=repeats)

    fast_model = MGAModel(dtype="float32", **model_kwargs)
    fast_s = _epoch_seconds(fast_model, data, epochs, fast_ops=True,
                            cache_batches=True, precompute_frozen=True,
                            repeats=repeats)

    n = len(labels)
    result = {
        "quick": quick,
        "num_samples": n,
        "num_parameters": fast_model.num_parameters(),
        "epoch_seconds": {
            "seed": seed_s,
            "naive": naive_s,
            "fast": fast_s,
        },
        "samples_per_second": {
            "seed": n / seed_s,
            "naive": n / naive_s,
            "fast": n / fast_s,
        },
        "speedup_vs_seed": seed_s / fast_s,
        "speedup_vs_naive": naive_s / fast_s,
        # dimensionless ratios survive hardware changes; the CI regression
        # gate diffs them against benchmarks/baselines/ with a tolerance
        "gate_metrics": {
            "training_speedup_vs_seed": seed_s / fast_s,
            "training_speedup_vs_naive": naive_s / fast_s,
        },
    }
    write_bench_json("training_throughput", result)
    return result


def test_training_throughput(once, capsys):
    result = once(run, quick=True)
    with capsys.disabled():
        print("\n" + json.dumps(
            {k: result[k] for k in ("epoch_seconds", "speedup_vs_seed",
                                    "speedup_vs_naive")}, indent=2))
    # quick mode on noisy CI hardware: require a conservative margin of the
    # full-size ≥3x target
    assert result["speedup_vs_seed"] >= 2.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small dataset / few epochs (CI mode)")
    args = parser.parse_args()
    summary = run(quick=args.quick)
    print(json.dumps(summary, indent=2))
    if not args.quick and summary["speedup_vs_seed"] < 3.0:
        raise SystemExit("training fast path regressed below 3x vs seed")
