"""Training throughput: the vectorised fast path vs the seed implementation.

Times one ``MGAModel.fit`` epoch (DAE pre-training excluded) in four
configurations over the same OpenMP tuning dataset:

* ``seed``  — the frozen snapshot of the original implementation
  (``_seed_baseline``): float64, reallocating gradient accumulation,
  per-gate GRU matmuls with two ``concat`` copies per step, ``np.add.at``
  scatters, and block-diagonal batches rebuilt + frozen modalities
  re-encoded for every minibatch of every epoch.
* ``naive`` — the new engine with every fast-path switch off (float64,
  ``np.add.at``, no batch/frozen caching): isolates how much comes from the
  engine itself (in-place grads, iterative backward, fused GRU) vs the
  caching/layout/dtype switches.
* ``fast``  — the eager fast path: float32, sorted-segment (``reduceat``)
  message passing over cached CSR edge layouts, cached block-diagonal
  batches and precomputed frozen-modality features, tape replay off.
* ``tape``  — ``fast`` plus tape record/replay (the default training
  configuration): each minibatch's backward graph is compiled once and
  replayed from arena buffers on every later visit.  A persistent
  :class:`~repro.nn.TapeRunner` is shared across the warmup and timed fits
  so the timed epochs are pure replay; the bench asserts the tape loss
  history is bit-identical to the eager ``fast`` history.

Writes ``BENCH_training_throughput.json`` at the repository root via the
shared harness.  Run directly (``python benchmarks/bench_training_throughput.py
[--quick]``) or through pytest.
"""

import argparse
import json
import time

import numpy as np

from repro.core.mga import MGAModel
from repro.datasets.openmp import OpenMPDatasetBuilder
from repro.kernels import registry
from repro.nn import TapeRunner, runtime as nn_runtime, use_fast_segment_ops
from repro.simulator.microarch import SKYLAKE_4114
from repro.tuners.space import thread_search_space

from _harness import time_call, write_bench_json
from _seed_baseline import SeedMGATrainer


def _build_dataset(num_kernels: int, num_inputs: int):
    space = thread_search_space(SKYLAKE_4114)
    builder = OpenMPDatasetBuilder(SKYLAKE_4114, list(space), seed=0)
    dataset = builder.build(registry.openmp_kernels()[:num_kernels],
                            np.geomspace(1e5, 1e8, num_inputs))
    graphs = [s.graph for s in dataset.samples]
    vectors = np.stack([s.vector for s in dataset.samples])
    extra = dataset.counter_matrix()
    labels = dataset.labels()
    return dataset, graphs, vectors, extra, labels


def _seed_epoch_seconds(data, epochs: int, repeats: int) -> float:
    """Epoch time of the frozen seed implementation on the same dataset."""
    dataset, graphs, vectors, extra, labels = data
    # the frozen modalities are pre-fitted exactly as in the other configs;
    # the seed loop re-encodes / re-scales them per minibatch regardless
    frozen = MGAModel(graph_feature_dim=graphs[0].feature_dim,
                      vector_dim=vectors.shape[1], extra_dim=extra.shape[1],
                      num_classes=dataset.num_configs, seed=0, dtype="float64")
    frozen.dae.fit(vectors, epochs=2)
    frozen.extra_scaler.fit(frozen.prepare_extra(extra))
    trainer = SeedMGATrainer(graphs[0].feature_dim, dataset.num_configs,
                             frozen.dae, frozen.extra_scaler,
                             frozen.prepare_extra, seed=0)
    timing = time_call(
        lambda: trainer.fit(graphs, vectors, extra, labels, epochs=epochs),
        repeats=repeats, warmup=1)
    return timing["best_s"] / epochs


def _epoch_seconds(model: MGAModel, data, epochs: int, fast_ops: bool,
                   cache_batches: bool, precompute_frozen: bool,
                   repeats: int) -> float:
    _, graphs, vectors, extra, labels = data
    model.dae.fit(vectors, epochs=2)
    model.extra_scaler.fit(model.prepare_extra(extra))

    def fit_once():
        model.fit(graphs, vectors, extra, labels, epochs=epochs,
                  dae_epochs=0, cache_batches=cache_batches,
                  precompute_frozen=precompute_frozen, tape=False)

    with use_fast_segment_ops(fast_ops):
        timing = time_call(fit_once, repeats=repeats, warmup=1)
    return timing["best_s"] / epochs


def _paired_fast_tape(data, epochs: int, repeats: int, model_kwargs: dict):
    """Eager fast path vs tape replay, timed as interleaved pairs.

    Single-core CI boxes drift by tens of percent on multi-second
    timescales, and sequential best-of-N blocks absorb that drift into
    whichever configuration happened to run during the quiet window.
    Alternating the two fits and taking the median of per-pair ratios
    cancels the drift.  The tape runner (plan cache + gradient arena)
    persists across all fits, so every timed tape epoch is pure replay;
    each fit's loss history is asserted bit-identical between the two
    configurations.
    """
    _, graphs, vectors, extra, labels = data
    models = {}
    for name in ("fast", "tape"):
        m = MGAModel(dtype="float32", **model_kwargs)
        m.dae.fit(vectors, epochs=2)
        m.extra_scaler.fit(m.prepare_extra(extra))
        models[name] = m
    runner = TapeRunner()
    histories = {"fast": [], "tape": []}
    times = {"fast": [], "tape": []}

    def fit_once(name: str, timed: bool) -> None:
        start = time.perf_counter()
        history = models[name].fit(
            graphs, vectors, extra, labels, epochs=epochs, dae_epochs=0,
            cache_batches=True, precompute_frozen=True,
            tape=(name == "tape"),
            tape_runner=runner if name == "tape" else None)
        elapsed = time.perf_counter() - start
        histories[name].append(history["loss"])
        if timed:
            times[name].append(elapsed)

    with use_fast_segment_ops(True):
        for name in ("fast", "tape"):
            fit_once(name, timed=False)  # warmup; records the tape plans
        for _ in range(3 * repeats):
            for name in ("fast", "tape"):
                fit_once(name, timed=True)
    if histories["tape"] != histories["fast"]:
        raise AssertionError(
            "tape replay diverged from the eager fast path: loss histories "
            "must be bit-identical")
    ratios = sorted(f / t for f, t in zip(times["fast"], times["tape"]))
    return {
        "fast_s": min(times["fast"]) / epochs,
        "tape_s": min(times["tape"]) / epochs,
        "tape_speedup_vs_eager": ratios[len(ratios) // 2],
        "num_parameters": models["fast"].num_parameters(),
    }


def run(quick: bool = False) -> dict:
    num_kernels, num_inputs = (6, 3) if quick else (12, 4)
    epochs = 2 if quick else 4
    repeats = 2 if quick else 3
    data = _build_dataset(num_kernels, num_inputs)
    dataset, graphs, vectors, extra, labels = data
    model_kwargs = dict(
        graph_feature_dim=graphs[0].feature_dim, vector_dim=vectors.shape[1],
        extra_dim=extra.shape[1], num_classes=dataset.num_configs, seed=0)

    seed_s = _seed_epoch_seconds(data, epochs, repeats)

    naive_model = MGAModel(dtype="float64", **model_kwargs)
    naive_s = _epoch_seconds(naive_model, data, epochs, fast_ops=False,
                             cache_batches=False, precompute_frozen=False,
                             repeats=repeats)

    paired = _paired_fast_tape(data, epochs, repeats, model_kwargs)
    fast_s, tape_s = paired["fast_s"], paired["tape_s"]
    tape_speedup = paired["tape_speedup_vs_eager"]

    n = len(labels)
    result = {
        "quick": quick,
        # active array backend behind repro.nn.backend.xp — future
        # cupy/torch numbers land in the same trajectory file, keyed by
        # this field instead of a schema change
        "backend": nn_runtime.config().backend,
        "num_samples": n,
        "num_parameters": paired["num_parameters"],
        "epoch_seconds": {
            "seed": seed_s,
            "naive": naive_s,
            "fast": fast_s,
            "tape": tape_s,
        },
        "samples_per_second": {
            "seed": n / seed_s,
            "naive": n / naive_s,
            "fast": n / fast_s,
            "tape": n / tape_s,
        },
        "speedup_vs_seed": seed_s / tape_s,
        "speedup_vs_naive": naive_s / tape_s,
        "tape_speedup_vs_eager": tape_speedup,
        # dimensionless ratios survive hardware changes; the CI regression
        # gate diffs them against benchmarks/baselines/ with a tolerance
        "gate_metrics": {
            "training_speedup_vs_seed": seed_s / tape_s,
            "training_speedup_vs_naive": naive_s / tape_s,
            "tape_speedup_vs_eager": tape_speedup,
        },
    }
    write_bench_json("training_throughput", result)
    return result


def test_training_throughput(once, capsys):
    result = once(run, quick=True)
    with capsys.disabled():
        print("\n" + json.dumps(
            {k: result[k] for k in ("epoch_seconds", "speedup_vs_seed",
                                    "speedup_vs_naive",
                                    "tape_speedup_vs_eager")}, indent=2))
    # quick mode on noisy CI hardware: require a conservative margin of the
    # full-size ≥3x-vs-seed target.  Tape replay measures 1.10-1.35x over
    # the eager fast path on this single-core box depending on allocator
    # pressure (the bs=32 step is ~90% raw array math, so the replay win is
    # bounded by the eliminated graph/allocator overhead); the paired-median
    # statistic keeps the floor check stable
    assert result["speedup_vs_seed"] >= 2.0
    assert result["tape_speedup_vs_eager"] >= 1.02


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small dataset / few epochs (CI mode)")
    args = parser.parse_args()
    summary = run(quick=args.quick)
    print(json.dumps(summary, indent=2))
    if not args.quick and summary["speedup_vs_seed"] < 3.0:
        raise SystemExit("training fast path regressed below 3x vs seed")
