"""Figure 6: unseen loops and unseen input sizes (reduced size)."""

from repro.evaluation.experiments import fig6
from repro.evaluation.metrics import geometric_mean


def test_fig6_unseen_loops_and_inputs(once, capsys):
    result = once(fig6.run, max_kernels=12, num_inputs=5, folds=3, epochs=25)
    with capsys.disabled():
        print()
        print(fig6.format_result(result))
    norm = geometric_mean([v for v in result["MGA_normalized"] if v > 0])
    assert norm > 0.6               # still a usable fraction of the oracle
    assert all(m <= o + 1e-9 for m, o in zip(result["MGA"], result["Oracle"]))
