"""Figure 1 (motivation): kmeans thread sweep + best-thread distribution."""

from repro.evaluation.experiments import fig1


def test_fig1_motivation(once, capsys):
    fig1a = once(fig1.run_fig1a, scale=2.0)
    fig1b = fig1.run_fig1b(max_kernels=20, num_inputs=8)
    with capsys.disabled():
        print()
        print(fig1.format_result(fig1a, fig1b))
    # shape checks: tuning matters for a substantial fraction of combinations
    assert fig1b["percent_non_default"] > 30.0
    assert min(fig1a, key=fig1a.get) != 1
