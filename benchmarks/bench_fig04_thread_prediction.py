"""Figure 4: OpenMP thread prediction, k-fold cross validation (reduced size).

Expected shape (paper): MGA and the other DL tuners are much closer to the
oracle than the Default configuration and the search/Bayesian tuners.
"""

from repro.evaluation.experiments import fig4
from repro.evaluation.metrics import geometric_mean


def test_fig4_thread_prediction(once, capsys):
    result = once(fig4.run, max_kernels=14, num_inputs=4, folds=3, epochs=25,
                  budget=5)
    with capsys.disabled():
        print()
        print(fig4.format_result(result))
    table = result["normalized"]
    mga = geometric_mean([v for v in table["MGA"] if v > 0])
    default = geometric_mean([v for v in table["Default"] if v > 0])
    opentuner = geometric_mean([v for v in table["OpenTuner"] if v > 0])
    assert mga > default            # DL tuning beats the default config
    assert mga > 0.7                # close to the oracle
    assert mga >= opentuner - 0.05  # at least on par with per-loop search
