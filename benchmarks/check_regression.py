"""CI benchmark regression gate: diff fresh metrics against a baseline.

Every JSON-emitting benchmark publishes a ``gate_metrics`` object of
dimensionless, higher-is-better ratios (speedups, scaling factors) —
numbers that are comparable across machines, unlike absolute wall-clock.
CI runs the benchmarks in quick mode and diffs their fresh ``gate_metrics``
against the committed quick-mode baselines under ``benchmarks/baselines/``;
a metric that drops more than ``--tolerance`` (default 30%) below its
baseline fails the job.

A benchmark whose committed baseline carries a top-level ``"gate": false``
is *skipped* (exit 0): the JSON is still produced and inspectable, but its
metrics are known-noisy on shared runners and do not gate merges.

Usage::

    python benchmarks/check_regression.py \
        --current BENCH_training_throughput.json \
        --baseline benchmarks/baselines/BENCH_training_throughput.quick.json
"""

import argparse
import json
import os


def _load(path: str, role: str):
    """Parsed JSON, or ``None`` after printing an actionable failure."""
    if not os.path.exists(path):
        print(f"FAIL {path}: {role} file does not exist")
        if role == "baseline":
            print("  every gated benchmark needs a committed quick-mode "
                  "baseline under benchmarks/baselines/;")
            print(f"  run the benchmark with --quick and commit its "
                  f"gate_metrics as {path}")
            print("  (or mark the baseline '\"gate\": false' to exempt it)")
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except json.JSONDecodeError as exc:
        print(f"FAIL {path}: {role} is not valid JSON ({exc})")
        return None


def check(current_path: str, baseline_path: str,
          tolerance: float) -> int:
    current = _load(current_path, "current")
    baseline = _load(baseline_path, "baseline")
    if current is None or baseline is None:
        return 1
    if baseline.get("gate") is False or current.get("gate") is False:
        marker = baseline_path if baseline.get("gate") is False \
            else current_path
        print(f"SKIP {current_path}: marked \"gate\": false in {marker}")
        return 0

    baseline_metrics = baseline.get("gate_metrics")
    if not baseline_metrics:
        print(f"FAIL {baseline_path}: no gate_metrics in baseline")
        return 1
    current_metrics = current.get("gate_metrics") or {}

    failures = 0
    for name, reference in sorted(baseline_metrics.items()):
        fresh = current_metrics.get(name)
        if fresh is None:
            print(f"FAIL {name}: missing from {current_path}")
            failures += 1
            continue
        floor = float(reference) * (1.0 - tolerance)
        ratio = float(fresh) / float(reference)
        verdict = "ok" if float(fresh) >= floor else "FAIL"
        print(f"{verdict:>4} {name}: current {float(fresh):.3f} vs baseline "
              f"{float(reference):.3f} ({100 * ratio:.0f}%, floor "
              f"{floor:.3f})")
        failures += int(verdict == "FAIL")
    if failures:
        print(f"{failures} gate metric(s) regressed more than "
              f"{100 * tolerance:.0f}% below baseline")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop below baseline "
                             "(default 0.30)")
    args = parser.parse_args()
    return check(args.current, args.baseline, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
