"""Ablations called out in DESIGN.md / §4.1.3 of the paper:

* per-relation convolution type (GGNN vs GCN vs GraphSAGE vs GAT),
* heterogeneous (per-relation) GNN vs homogeneous GNN on the flattened graph.

The paper reports GGNN as the best per-relation convolution and motivates the
heterogeneous design; here we check that all variants train and report their
validation speedups side by side.  The miniature needs enough data/epochs for
the ranking to stabilise (12 kernels x 4 inputs, 40 epochs — at smaller
scales the variants are statistically indistinguishable and the GGNN-vs-best
check is a coin flip); ``REPRO_BENCH_QUICK=1`` shrinks it to a smoke test
that only checks every variant trains to a usable model.
"""

from repro.core.mga import ModalityConfig
from repro.core.tuner import MGATuner
from repro.evaluation.experiments.common import build_openmp_dataset, select_openmp_kernels
from repro.evaluation.metrics import geometric_mean
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners.space import thread_search_space

from conftest import QUICK


def _speedup(dataset, train_idx, val_idx, epochs, **kwargs):
    tuner = MGATuner(dataset.arch, dataset.configs,
                     modalities=ModalityConfig.programl(), seed=0, **kwargs)
    tuner.fit(dataset, train_indices=train_idx, epochs=epochs)
    preds = tuner.predict_indices(dataset, val_idx)
    return geometric_mean([dataset.samples[i].speedup_of(int(p))
                           for i, p in zip(val_idx, preds)])


def test_ablation_conv_type_and_heterogeneity(once, capsys):
    num_kernels, num_inputs, epochs = (6, 2, 5) if QUICK else (12, 4, 40)
    space = thread_search_space(COMET_LAKE_8C)
    specs = select_openmp_kernels(num_kernels)
    dataset = build_openmp_dataset(COMET_LAKE_8C, space, specs,
                                   num_inputs=num_inputs, seed=0)
    train_idx, val_idx = dataset.kfold_by_kernel(k=3, seed=0)[0]
    oracle = geometric_mean([dataset.samples[i].oracle_speedup for i in val_idx])

    def run_all():
        rows = {}
        for conv in ("ggnn", "gcn", "sage", "gat"):
            rows[f"hetero-{conv}"] = _speedup(dataset, train_idx, val_idx,
                                              epochs, conv_type=conv)
        rows["homogeneous-ggnn"] = _speedup(dataset, train_idx, val_idx,
                                            epochs, conv_type="ggnn",
                                            hetero=False)
        return rows

    rows = once(run_all)
    with capsys.disabled():
        print("\n  GNN ablation (graph+counters modality, geomean speedup "
              f"over default; oracle {oracle:.2f}x)")
        for name, value in rows.items():
            print(f"    {name:<20} {value:5.2f}x")
    for value in rows.values():
        assert value > 0.8          # every variant produces usable predictions
    if not QUICK:
        assert rows["hetero-ggnn"] >= 0.85 * max(rows.values())
