"""§6 (Discussion): the networks are shallow and train in seconds per epoch."""


import numpy as np

from repro.core.mga import MGAModel
from repro.datasets.openmp import OpenMPDatasetBuilder
from repro.kernels import registry
from repro.simulator.microarch import SKYLAKE_4114
from repro.tuners.space import thread_search_space


def test_training_epoch_speed(benchmark, capsys):
    space = thread_search_space(SKYLAKE_4114)
    builder = OpenMPDatasetBuilder(SKYLAKE_4114, list(space), seed=0)
    dataset = builder.build(registry.openmp_kernels()[:12],
                            np.geomspace(1e5, 1e8, 4))
    graphs = [s.graph for s in dataset.samples]
    vectors = np.stack([s.vector for s in dataset.samples])
    extra = dataset.counter_matrix()
    labels = dataset.labels()
    model = MGAModel(graphs[0].feature_dim, vectors.shape[1], extra.shape[1],
                     dataset.num_configs, seed=0)
    model.dae.fit(vectors, epochs=3)
    model.extra_scaler.fit(model.prepare_extra(extra))

    def one_epoch():
        return model.fit(graphs, vectors, extra, labels, epochs=1,
                         dae_epochs=0)

    result = benchmark.pedantic(one_epoch, iterations=1, rounds=3)
    with capsys.disabled():
        print(f"\n  one MGA training epoch over {len(labels)} samples "
              f"({model.num_parameters()} parameters)")
    assert result["loss"][-1] > 0
