"""Table 3: OpenCL heterogeneous device mapping (reduced size)."""

from repro.evaluation.experiments import table3
from repro.simulator.microarch import TAHITI_7970


def test_table3_device_mapping(once, capsys):
    result = once(table3.run, gpus=(TAHITI_7970,), max_kernels=40,
                  points_per_kernel=3, folds=4, epochs=15,
                  include_baselines=("Static mapping", "Grewe et al.",
                                     "DeepTune", "inst2vec"))
    with capsys.disabled():
        print()
        print(table3.format_result(result))
    rows = result[TAHITI_7970.name]
    mga = rows["MGA"]
    static = rows["Static mapping"]
    # shape: MGA above the static mapping in accuracy and speedup, and a
    # usable fraction of the oracle speedup
    assert mga["accuracy"] >= static["accuracy"] - 1e-9
    assert mga["speedup_over_static"] >= 0.9 * static["speedup_over_static"]
    assert mga["accuracy"] >= 60.0
