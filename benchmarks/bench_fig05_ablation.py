"""Figure 5: static vs dynamic feature ablation (reduced size)."""

from repro.evaluation.experiments import fig5


def test_fig5_static_dynamic_ablation(once, capsys):
    result = once(fig5.run, max_kernels=12, num_inputs=4, epochs=25, budget=5)
    with capsys.disabled():
        print()
        print(fig5.format_result(result))
    # shape: the full MGA model (static + dynamic) does not lose to the
    # static-only variant, and everything stays below the oracle
    assert result["MGA"] >= result["MGA-Static"] - 0.1
    assert result["Oracle"] >= result["MGA"] - 1e-9
    assert result["MGA"] >= 0.95
