"""Router scaling: open-loop load against 1..N consistent-hash replica groups.

Publishes a small tuner under several model names (the shard keys), stands
up a fleet of single-worker ``ServeDaemon`` replicas behind a
``ServeRouter`` — everything over TCP on loopback — and drives the same
open-loop Poisson request stream (``repro.serve.loadgen``) at increasing
group counts.  Model names are picked deterministically so the consistent-
hash ring spreads them evenly over every topology, mirroring how a real
deployment shards by ``(model, version)``.

Three phases per report:

* **identity** — every routed response is byte-identical to the in-process
  ``InferenceEngine`` over the same published artifact (the acceptance
  bar: two network hops and a hash ring add distribution, never different
  answers);
* **scaling** — the same offered rate against 1, 2, .. replica groups;
  ``achieved_rps`` (goodput) should grow with the fleet;
* **overload** — a deliberately oversized rate against the smallest fleet;
  the excess must come back as structured ``overloaded`` sheds while every
  replica queue stays at its bound (no unbounded growth past saturation).

Replica runs emulate profiling *occupancy* exactly like
``bench_serving_scaling``: each cold request's profiling run sleeps for (a
capped multiple of) its simulated kernel execution time
(``REPRO_PROFILE_WALLTIME_SCALE``), so overlapping replicas buy real
wall-clock on single-core CI runners too.  The emulation only adds waits;
response values are unaffected.

Writes ``BENCH_router_scaling.json`` at the repository root; its
``gate_metrics`` are diffed against ``benchmarks/baselines/`` by the CI
regression gate.  Run directly (``python benchmarks/bench_router_scaling.py
[--quick]``) or through pytest.
"""

import argparse
import json
import os
import tempfile
import time

import numpy as np

from repro.core import MGATuner
from repro.datasets import OpenMPDatasetBuilder
from repro.kernels import registry
from repro.profiling.papi import WALLTIME_CAP_ENV, WALLTIME_SCALE_ENV
from repro.serve import (
    HashRing,
    InferenceEngine,
    ModelRegistry,
    ServeDaemon,
    ServeRouter,
    open_loop,
)
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners import thread_search_space

from _harness import write_bench_json

TRAIN_KERNELS = 8
TRAIN_INPUTS = 3
EPOCHS = 8
SERVE_KERNELS = 6          # unseen kernels served after training
MODELS_PER_GROUP = 2       # shard keys owned by each replica group
NUM_REQUESTS = 360         # distinct (model, kernel, scale) triples
WARMUP_REQUESTS = 24       # untimed: settles per-replica numpy/model caches
OFFERED_RPS = 120.0        # past 1-group capacity, under 4-group capacity
OVERLOAD_RPS = 400.0       # far past any capacity: must shed, not queue
OVERLOAD_REQUESTS = 120
CONCURRENCY = 48           # loadgen sender threads (callers, not load rate)
MAX_BATCH = 4
DEADLINE_MS = 2.0
MAX_QUEUE = 16             # per-replica bound: small so saturation sheds
SLO_MS = 250.0
LOOPBACK = "tcp://127.0.0.1:0"
#: profiling-occupancy emulation (see module docstring): each cold request
#: waits on its kernel's simulated execution, capped per run
WALLTIME_SCALE = 2.0
WALLTIME_CAP = 0.02


def _group_names(count: int):
    return [f"g{i}" for i in range(count)]


def _shard_models(group_count: int):
    """Model names hashing onto each group of a ``group_count`` fleet.

    Deterministic: candidate names are enumerated in order and bucketed by
    the same ring the router uses, until every group owns
    ``MODELS_PER_GROUP`` of them — balanced sharding by construction, no
    hash luck involved.
    """
    ring = HashRing(_group_names(group_count))
    buckets = {group: [] for group in _group_names(group_count)}
    index = 0
    while any(len(names) < MODELS_PER_GROUP for names in buckets.values()):
        name = f"bench-openmp-{index}"
        index += 1
        owner = buckets[ring.lookup(f"{name}@latest")]
        if len(owner) < MODELS_PER_GROUP:
            owner.append(name)
    return buckets


def _publish(root: str, model_names) -> None:
    arch = COMET_LAKE_8C
    space = list(thread_search_space(arch))
    specs = registry.openmp_kernels()
    tuner = MGATuner(arch, space, seed=0, gnn_hidden=12, gnn_out=12,
                     dae_hidden=24, dae_code=8, mlp_hidden=16)
    dataset = OpenMPDatasetBuilder(arch, space, seed=0).build(
        specs[:TRAIN_KERNELS], np.geomspace(1e5, 2e8, TRAIN_INPUTS))
    tuner.fit(dataset, epochs=EPOCHS, dae_epochs=EPOCHS)
    published = ModelRegistry(root)
    for name in model_names:
        published.publish(name, tuner)


def _request_stream(models, num_requests: int, seed: int = 7):
    """Distinct (model, kernel uid, scale) triples: every one a cache miss."""
    served = registry.openmp_kernels()[TRAIN_KERNELS:
                                       TRAIN_KERNELS + SERVE_KERNELS]
    rng = np.random.default_rng(seed)
    scales = rng.uniform(0.25, 4.0, size=num_requests)
    return [{"op": "tune", "model": models[i % len(models)],
             "kernel": served[i % len(served)].uid,
             "scale": round(float(scales[i]), 6)}
            for i in range(num_requests)]


def _reference_responses(root: str, requests):
    """The in-process engine's answers over the same published artifact.

    Every published name points at the same artifact, so the reference is
    computed once per (kernel, scale) regardless of the model name a
    request shards by.
    """
    tuner = ModelRegistry(root).load(requests[0]["model"])
    with InferenceEngine(tuner, max_batch_size=MAX_BATCH,
                         max_wait_ms=1.0) as engine:
        answers = {}
        for request in requests:
            key = (request["kernel"], request["scale"])
            if key not in answers:
                config, counters = engine.tune(
                    registry.get_kernel(request["kernel"]), request["scale"])
                answers[key] = {"config_label": config.label(),
                                "num_threads": config.num_threads,
                                "schedule": config.schedule.value,
                                "chunk_size": config.chunk_size,
                                "counters": dict(counters)}
    return [answers[(r["kernel"], r["scale"])] for r in requests]


def _identical(responses, reference) -> bool:
    for response, expected in zip(responses, reference):
        if response is None:
            return False
        got = {"config_label": response["config_label"],
               "num_threads": response["num_threads"],
               "schedule": response["schedule"],
               "chunk_size": response["chunk_size"],
               "counters": dict(response["counters"])}
        if got != expected:
            return False
    return True


class _Fleet:
    """``group_count`` single-worker TCP replicas behind one TCP router."""

    def __init__(self, root: str, group_count: int, shards):
        self.daemons = []
        self.router = None
        try:
            replicas = []
            for group in _group_names(group_count):
                daemon = ServeDaemon(
                    LOOPBACK, registry_root=root, workers=1,
                    max_batch=MAX_BATCH, deadline_ms=DEADLINE_MS,
                    max_queue=MAX_QUEUE, preload=shards[group]).start()
                self.daemons.append(daemon)
                replicas.append((group, daemon.address))
            self.router = ServeRouter(
                LOOPBACK, replicas=replicas, probe_interval=0.5,
                max_inflight=4 * CONCURRENCY,
                max_inflight_per_route=4 * CONCURRENCY).start()
        except BaseException:
            self.close()
            raise

    @property
    def address(self) -> str:
        return self.router.address

    def queue_depths(self):
        return [daemon.stats()["queue"]["depth"] for daemon in self.daemons]

    def close(self) -> None:
        if self.router is not None:
            self.router.shutdown()
        for daemon in self.daemons:
            daemon.shutdown()


def run(num_requests: int = NUM_REQUESTS, group_counts=(1, 2, 4),
        offered_rps: float = OFFERED_RPS,
        overload_requests: int = OVERLOAD_REQUESTS) -> dict:
    top = max(group_counts)
    shards = {count: _shard_models(count) for count in group_counts}
    all_models = sorted({name for by_group in shards.values()
                         for names in by_group.values() for name in names})
    with tempfile.TemporaryDirectory() as tmp:
        root = os.path.join(tmp, "registry")
        _publish(root, all_models)

        identical = True
        per_groups = {}
        os.environ[WALLTIME_SCALE_ENV] = str(WALLTIME_SCALE)
        os.environ[WALLTIME_CAP_ENV] = str(WALLTIME_CAP)
        try:
            for count in group_counts:
                models = [name for names in shards[count].values()
                          for name in names]
                requests = _request_stream(models, num_requests)
                reference = _reference_responses(root, requests)
                fleet = _Fleet(root, count, shards[count])
                try:
                    # untimed warmup: every replica serves a few batches
                    # before the clock starts, as a long-running fleet would
                    open_loop(fleet.address,
                              _request_stream(models, WARMUP_REQUESTS,
                                              seed=1234),
                              rate_rps=offered_rps, concurrency=CONCURRENCY)
                    report = open_loop(
                        fleet.address, requests, rate_rps=offered_rps,
                        concurrency=CONCURRENCY, slo_ms=SLO_MS,
                        collect_responses=True)
                    router_stats = fleet.router.stats()
                    depths = fleet.queue_depths()
                finally:
                    fleet.close()
                served = [response for response in report["responses"]
                          if response is not None]
                matched = [expected for response, expected
                           in zip(report["responses"], reference)
                           if response is not None]
                identical = identical and bool(served) \
                    and _identical(served, matched)
                per_groups[count] = {
                    "offered_rps": report["offered_rps"],
                    "achieved_rps": report["achieved_rps"],
                    "completed": report["completed"],
                    "shed": report["shed"],
                    "p50_latency_ms": report["latency_ms"]["p50"],
                    "p99_latency_ms": report["latency_ms"]["p99"],
                    "p999_latency_ms": report["latency_ms"]["p999"],
                    "slo_attainment": report["slo"]["attainment"],
                    "router_retried": router_stats["requests"]["retried"],
                    "final_queue_depths": depths,
                }

            # overload: the smallest fleet at a rate far past saturation —
            # the excess must shed with structured errors, queues bounded
            smallest = min(group_counts)
            models = [name for names in shards[smallest].values()
                      for name in names]
            fleet = _Fleet(root, smallest, shards[smallest])
            try:
                overload = open_loop(
                    fleet.address,
                    _request_stream(models, overload_requests, seed=99),
                    rate_rps=OVERLOAD_RPS, concurrency=CONCURRENCY)
                overload_depths = fleet.queue_depths()
            finally:
                fleet.close()
        finally:
            os.environ.pop(WALLTIME_SCALE_ENV, None)
            os.environ.pop(WALLTIME_CAP_ENV, None)

    base = min(group_counts)
    for count in group_counts:
        per_groups[count]["scaling"] = (per_groups[count]["achieved_rps"]
                                        / per_groups[base]["achieved_rps"])
    return {
        "models_per_group": MODELS_PER_GROUP,
        "requests": num_requests,
        "offered_rps": offered_rps,
        "concurrency": CONCURRENCY,
        "max_batch": MAX_BATCH,
        "deadline_ms": DEADLINE_MS,
        "max_queue": MAX_QUEUE,
        "slo_ms": SLO_MS,
        "profile_walltime": {"scale": WALLTIME_SCALE, "cap_s": WALLTIME_CAP},
        "predictions_identical_to_engine": identical,
        "groups": {str(count): per_groups[count] for count in group_counts},
        "overload": {
            "groups": min(group_counts),
            "offered_rps": OVERLOAD_RPS,
            "requests": overload_requests,
            "completed": overload["completed"],
            "shed": overload["shed"],
            "errors": overload["errors"],
            "final_queue_depths": overload_depths,
            "queues_bounded": all(depth <= MAX_QUEUE
                                  for depth in overload_depths),
        },
        # only dimensionless ratios gate CI: absolute rps depends on the
        # runner's hardware, the scaling ratio is fleet-level overlap
        "gate_metrics": {
            f"router_scaling_{top}g": per_groups[top]["scaling"],
        },
    }


def _check(payload: dict, quick: bool) -> None:
    assert payload["predictions_identical_to_engine"], (
        "routed responses diverged from the in-process InferenceEngine")
    overload = payload["overload"]
    assert overload["shed"] > 0, (
        "an offered rate far past saturation produced no structured sheds")
    assert overload["queues_bounded"], (
        f"replica queues exceeded their bound past saturation: "
        f"{overload['final_queue_depths']} > {payload['max_queue']}")
    if not quick:
        top = max(int(count) for count in payload["groups"])
        scaling = payload["groups"][str(top)]["scaling"]
        assert scaling >= 1.5, (
            f"expected >=1.5x goodput at {top} replica groups vs 1, got "
            f"{scaling:.2f}x")
        print(f"{top}-group scaling {scaling:.2f}x (>= 1.5x required)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small request count, groups 1-2, no scaling "
                             "assert (CI smoke mode)")
    args = parser.parse_args()

    if args.quick:
        payload = run(num_requests=96, group_counts=(1, 2),
                      overload_requests=64)
    else:
        payload = run()
    path = write_bench_json("router_scaling", payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")
    _check(payload, args.quick)
    return 0


def test_router_scaling(once, capsys):
    quick = os.environ.get("REPRO_BENCH_QUICK") == "1"
    if quick:
        payload = once(lambda: run(num_requests=96, group_counts=(1, 2),
                                   overload_requests=64))
    else:
        payload = once(run)
    with capsys.disabled():
        print()
        print("router scaling:")
        print(json.dumps(payload, indent=2))
    _check(payload, quick)


if __name__ == "__main__":
    raise SystemExit(main())
