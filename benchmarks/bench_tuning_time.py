"""§4.1.4: tuning-cost comparison (MGA vs search tuners) and §6 training speed."""


from repro.evaluation.experiments import tuning_time


def test_tuning_cost_comparison(once, capsys):
    result = once(tuning_time.run, budget=8, train_kernels=8, train_inputs=3,
                  epochs=8)
    with capsys.disabled():
        print()
        print(tuning_time.format_result(result))
    mga = result["MGA"]
    for name in ("ytopt", "OpenTuner", "BLISS"):
        assert result[name]["kernel_executions"] > mga["kernel_executions"]
        assert (result[name]["simulated_tuning_seconds"]
                >= mga["simulated_tuning_seconds"])
