"""Ablations: DAE swap-noise level and 5-counter selection vs all 20 counters.

§4.1.1 argues that keeping all ~20 preset counters causes a feature explosion
and that five Pearson-selected counters suffice; §3.2 fixes the swap-noise
rate at 10%.  These benchmarks quantify both choices on a small dataset.
"""

import numpy as np

from repro.core.mga import ModalityConfig
from repro.core.tuner import MGATuner
from repro.dae import DenoisingAutoencoder
from repro.datasets.openmp import OpenMPDatasetBuilder
from repro.evaluation.metrics import geometric_mean
from repro.kernels import registry
from repro.profiling import PAPI_PRESET_COUNTERS, SELECTED_COUNTERS
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners.space import thread_search_space


def test_ablation_counter_set_size(once, capsys):
    space = thread_search_space(COMET_LAKE_8C)
    specs = registry.openmp_kernels()[:10]
    targets = np.geomspace(1e5, 3e8, 3)

    def run_both():
        rows = {}
        for name, counters in (("5 selected counters", SELECTED_COUNTERS),
                               ("all 20 counters", PAPI_PRESET_COUNTERS)):
            builder = OpenMPDatasetBuilder(COMET_LAKE_8C, list(space),
                                           counter_names=counters, seed=0)
            dataset = builder.build(specs, targets)
            train_idx, val_idx = dataset.kfold_by_kernel(k=3, seed=0)[0]
            tuner = MGATuner(COMET_LAKE_8C, dataset.configs,
                             modalities=ModalityConfig.dynamic_only(), seed=0)
            tuner.fit(dataset, train_indices=train_idx, epochs=15)
            preds = tuner.predict_indices(dataset, val_idx)
            rows[name] = geometric_mean(
                [dataset.samples[i].speedup_of(int(p))
                 for i, p in zip(val_idx, preds)])
        return rows

    rows = once(run_both)
    with capsys.disabled():
        print("\n  counter-set ablation (dynamic-only model, geomean speedup)")
        for name, value in rows.items():
            print(f"    {name:<22} {value:5.2f}x")
    # the compact counter set should not be substantially worse
    assert rows["5 selected counters"] >= 0.85 * rows["all 20 counters"]


def test_ablation_dae_swap_noise(once, capsys):
    rng = np.random.default_rng(0)
    latent = rng.standard_normal((150, 6))
    vectors = latent @ rng.standard_normal((6, 32))

    def sweep():
        errors = {}
        for rate in (0.0, 0.1, 0.3):
            dae = DenoisingAutoencoder(32, hidden_dim=24, code_dim=8,
                                       swap_rate=rate, seed=0)
            dae.fit(vectors, epochs=10)
            errors[rate] = dae.reconstruction_error(vectors)
        return errors

    errors = once(sweep)
    with capsys.disabled():
        print("\n  DAE swap-noise ablation (reconstruction MSE on clean data)")
        for rate, err in errors.items():
            print(f"    swap rate {rate:.1f}: {err:.4f}")
    assert all(np.isfinite(v) for v in errors.values())
    # the paper's 10% noise should not be catastrophically worse than 0%
    assert errors[0.1] <= errors[0.0] * 3.0
