"""Serving throughput: batched+cached `InferenceEngine` vs naive per-request
`MGATuner.tune` on an identical request stream (JSON metrics printed)."""

import json
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import MGATuner
from repro.datasets import OpenMPDatasetBuilder
from repro.kernels import registry
from repro.serve import InferenceEngine
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners import thread_search_space

TRAIN_KERNELS = 8
TRAIN_INPUTS = 3
EPOCHS = 8
SERVE_KERNELS = 6          # unseen kernels served after training
SERVE_SCALES = (0.5, 2.0)
NUM_REQUESTS = 96
CLIENT_THREADS = 8


def run() -> dict:
    arch = COMET_LAKE_8C
    space = list(thread_search_space(arch))
    specs = registry.openmp_kernels()
    tuner = MGATuner(arch, space, seed=0, gnn_hidden=12, gnn_out=12,
                     dae_hidden=24, dae_code=8, mlp_hidden=16)
    dataset = OpenMPDatasetBuilder(arch, space, seed=0).build(
        specs[:TRAIN_KERNELS], np.geomspace(1e5, 2e8, TRAIN_INPUTS))
    tuner.fit(dataset, epochs=EPOCHS, dae_epochs=EPOCHS)

    # the request stream: repeated (kernel, scale) pairs, as a service sees
    # when many jobs tune the same hot kernels
    served = specs[TRAIN_KERNELS:TRAIN_KERNELS + SERVE_KERNELS]
    pairs = [(spec, scale) for spec in served for scale in SERVE_SCALES]
    rng = np.random.default_rng(7)
    requests = [pairs[i] for i in rng.integers(0, len(pairs),
                                               size=NUM_REQUESTS)]

    start = time.perf_counter()
    naive = [tuner.tune(spec, scale=scale) for spec, scale in requests]
    naive_seconds = time.perf_counter() - start

    with InferenceEngine(tuner, max_batch_size=32, max_wait_ms=2.0) as engine:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
            batched = list(pool.map(
                lambda req: engine.tune(req[0], scale=req[1]), requests))
        batched_seconds = time.perf_counter() - start
        stats = engine.stats()

    agreement = float(np.mean([a[0] == b[0]
                               for a, b in zip(naive, batched)]))
    return {
        "requests": NUM_REQUESTS,
        "naive_seconds": naive_seconds,
        "batched_seconds": batched_seconds,
        "naive_rps": NUM_REQUESTS / naive_seconds,
        "batched_rps": NUM_REQUESTS / batched_seconds,
        "speedup": naive_seconds / batched_seconds,
        "prediction_agreement": agreement,
        "cache_hit_rate": stats["cache_hit_rate"],
        "result_cache_hit_rate": stats["result_cache_hit_rate"],
        "memoized_responses": stats["memoized_responses"],
        "mean_batch_size": stats["mean_batch_size"],
        "max_batch_size_seen": stats["max_batch_size_seen"],
        "mean_latency_ms": stats["mean_latency_ms"],
    }


def test_serving_throughput(once, capsys):
    result = once(run)
    with capsys.disabled():
        print()
        print("serving throughput (batched+cached engine vs naive tune):")
        print(json.dumps(result, indent=2))
    assert result["prediction_agreement"] == 1.0
    assert result["mean_batch_size"] > 1.0          # batching actually engaged
    assert result["memoized_responses"] > 0         # repeats hit the caches
    assert result["speedup"] >= 2.0
