"""Frozen snapshot of the seed training implementation, for benchmarking.

This module preserves the original (pre-vectorisation) hot path verbatim so
``bench_training_throughput`` can measure the fast path against what the
code actually replaced, not against a reconstruction running on the new
engine: the reallocating gradient accumulation, the recursive backward
topological sort, the element-wise ``np.add.at`` scatters, the per-gate GRU
matmuls with two ``concat`` copies per step, and the per-minibatch
block-diagonal batch rebuild + frozen-modality re-encode.

It is used only by benchmarks; the library itself never imports it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.hetero import RELATIONS, batch_graphs


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class SeedTensor:
    """The seed's float64 tensor: reallocating grads, recursive backward."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False,
                 parents: Tuple["SeedTensor", ...] = (),
                 backward: Optional[Callable[[np.ndarray], None]] = None):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward = backward
        self._parents = parents

    @property
    def shape(self):
        return self.data.shape

    def item(self) -> float:
        return float(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    @staticmethod
    def _make(data, parents, backward) -> "SeedTensor":
        requires = any(p.requires_grad for p in parents)
        return SeedTensor(data, requires_grad=requires, parents=parents,
                          backward=backward if requires else None)

    def __add__(self, other) -> "SeedTensor":
        other = as_seed_tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return SeedTensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "SeedTensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return SeedTensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "SeedTensor":
        return self + (-as_seed_tensor(other))

    def __mul__(self, other) -> "SeedTensor":
        other = as_seed_tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return SeedTensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "SeedTensor":
        other = as_seed_tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(
                    -grad * self.data / (other.data ** 2), other.shape))

        return SeedTensor._make(self.data / other.data, (self, other), backward)

    def matmul(self, other: "SeedTensor") -> "SeedTensor":
        other = as_seed_tensor(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return SeedTensor._make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    def sum(self, axis=None, keepdims: bool = False) -> "SeedTensor":
        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is None:
                self._accumulate(np.full(self.shape, float(g)))
            else:
                if not keepdims:
                    g = np.expand_dims(g, axis)
                self._accumulate(np.broadcast_to(g, self.shape).copy())

        return SeedTensor._make(self.data.sum(axis=axis, keepdims=keepdims),
                                (self,), backward)

    def relu(self) -> "SeedTensor":
        mask = (self.data > 0).astype(np.float64)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return SeedTensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "SeedTensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return SeedTensor._make(out_data, (self,), backward)

    def tanh(self) -> "SeedTensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return SeedTensor._make(out_data, (self,), backward)

    def exp(self) -> "SeedTensor":
        out_data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return SeedTensor._make(out_data, (self,), backward)

    def log(self) -> "SeedTensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / np.maximum(self.data, 1e-12))

        return SeedTensor._make(np.log(np.maximum(self.data, 1e-12)), (self,),
                                backward)

    def index_select(self, index: np.ndarray) -> "SeedTensor":
        index = np.asarray(index, dtype=np.int64)

        def backward(grad):
            if self.requires_grad:
                acc = np.zeros_like(self.data)
                np.add.at(acc, index, grad)
                self._accumulate(acc)

        return SeedTensor._make(self.data[index], (self,), backward)

    def scatter_add(self, index: np.ndarray, num_rows: int) -> "SeedTensor":
        index = np.asarray(index, dtype=np.int64)
        out_data = np.zeros((num_rows,) + self.data.shape[1:], dtype=np.float64)
        np.add.at(out_data, index, self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad[index])

        return SeedTensor._make(out_data, (self,), backward)

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[SeedTensor] = []
        visited = set()

        def visit(t: "SeedTensor") -> None:
            if id(t) in visited:
                return
            visited.add(id(t))
            for parent in t._parents:
                visit(parent)
            topo.append(t)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for tensor in reversed(topo):
            if tensor._backward is not None and tensor.grad is not None:
                tensor._backward(tensor.grad)


def as_seed_tensor(value) -> SeedTensor:
    if isinstance(value, SeedTensor):
        return value
    return SeedTensor(value)


def seed_concat(tensors: Sequence[SeedTensor], axis: int = 1) -> SeedTensor:
    tensors = [as_seed_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(grad[tuple(slicer)])

    return SeedTensor._make(data, tuple(tensors), backward)


def seed_segment_mean(x: SeedTensor, segment_ids: np.ndarray,
                      num_segments: int) -> SeedTensor:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    sums = x.scatter_add(segment_ids, num_segments)
    return sums * SeedTensor(1.0 / counts[:, None])


# ----------------------------------------------------------------------
# seed layers / optimiser (only what the MGA training loop touches)
# ----------------------------------------------------------------------
def _xavier(shape, rng) -> np.ndarray:
    limit = np.sqrt(6.0 / (shape[0] + shape[-1]))
    return rng.uniform(-limit, limit, size=shape)


class SeedLinear:
    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator):
        self.weight = SeedTensor(_xavier((in_features, out_features), rng),
                                 requires_grad=True)
        self.bias = SeedTensor(np.zeros(out_features), requires_grad=True)

    def __call__(self, x: SeedTensor) -> SeedTensor:
        return x @ self.weight + self.bias

    def parameters(self) -> List[SeedTensor]:
        return [self.weight, self.bias]


class SeedGRUCell:
    """Seed GRU: one Linear per gate, two ``concat`` copies per step."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        self.w_z = SeedLinear(input_dim + hidden_dim, hidden_dim, rng)
        self.w_r = SeedLinear(input_dim + hidden_dim, hidden_dim, rng)
        self.w_h = SeedLinear(input_dim + hidden_dim, hidden_dim, rng)

    def __call__(self, x: SeedTensor, h: SeedTensor) -> SeedTensor:
        xh = seed_concat([x, h], axis=1)
        z = self.w_z(xh).sigmoid()
        r = self.w_r(xh).sigmoid()
        xrh = seed_concat([x, r * h], axis=1)
        h_tilde = self.w_h(xrh).tanh()
        one = SeedTensor(1.0)
        return (one - z) * h + z * h_tilde

    def parameters(self) -> List[SeedTensor]:
        return (self.w_z.parameters() + self.w_r.parameters()
                + self.w_h.parameters())


class SeedGGNNConv:
    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 num_steps: int = 2):
        self.project = SeedLinear(in_dim, out_dim, rng)
        self.message = SeedLinear(out_dim, out_dim, rng)
        self.gru = SeedGRUCell(out_dim, out_dim, rng)
        self.num_steps = num_steps

    def __call__(self, x: SeedTensor, edge_index: np.ndarray) -> SeedTensor:
        num_nodes = x.shape[0]
        h = self.project(x)
        if edge_index.size == 0:
            return h
        src, dst = edge_index[0], edge_index[1]
        deg = np.maximum(np.bincount(dst, minlength=num_nodes), 1.0)
        deg_in = SeedTensor((1.0 / deg)[:, None])
        for _ in range(self.num_steps):
            msgs = self.message(h).index_select(src)
            agg = msgs.scatter_add(dst, num_nodes) * deg_in
            h = self.gru(agg, h)
        return h

    def parameters(self) -> List[SeedTensor]:
        return (self.project.parameters() + self.message.parameters()
                + self.gru.parameters())


class SeedHeteroGNNEncoder:
    """Seed hetero encoder: one GGNN per relation per layer + mean pooling."""

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int,
                 num_layers: int, rng: np.random.Generator):
        self.input_proj = SeedLinear(in_dim, hidden_dim, rng)
        self.layers = [
            {rel: SeedGGNNConv(hidden_dim, hidden_dim, rng)
             for rel in RELATIONS}
            for _ in range(num_layers)
        ]
        self.output_proj = SeedLinear(hidden_dim, out_dim, rng)

    def __call__(self, batch) -> SeedTensor:
        h = self.input_proj(SeedTensor(batch.node_features)).relu()
        for layer in self.layers:
            outputs = []
            for rel in RELATIONS:
                edges = batch.edge_index.get(rel)
                if edges is None or edges.size == 0:
                    continue
                outputs.append(layer[rel](h, edges))
            total = outputs[0]
            for out in outputs[1:]:
                total = total + out
            h = (total * SeedTensor(1.0 / len(outputs))).relu()
        pooled = seed_segment_mean(h, batch.graph_index, batch.num_graphs)
        return self.output_proj(pooled)

    def parameters(self) -> List[SeedTensor]:
        params = self.input_proj.parameters() + self.output_proj.parameters()
        for layer in self.layers:
            for conv in layer.values():
                params += conv.parameters()
        return params


class SeedMLPHead:
    def __init__(self, in_dim: int, hidden: int, out_dim: int,
                 dropout: float, rng: np.random.Generator):
        self.fc1 = SeedLinear(in_dim, hidden, rng)
        self.fc2 = SeedLinear(hidden, out_dim, rng)
        self.dropout = dropout
        self._rng = np.random.default_rng(0)

    def __call__(self, x: SeedTensor) -> SeedTensor:
        h = self.fc1(x).relu()
        if self.dropout > 0:
            mask = ((self._rng.random(h.shape) >= self.dropout)
                    .astype(np.float64) / (1.0 - self.dropout))
            h = h * SeedTensor(mask)
        return self.fc2(h)

    def parameters(self) -> List[SeedTensor]:
        return self.fc1.parameters() + self.fc2.parameters()


def seed_cross_entropy(logits: SeedTensor, targets: np.ndarray,
                       class_weights) -> SeedTensor:
    n, c = logits.shape
    shifted = logits - SeedTensor(logits.data.max(axis=1, keepdims=True))
    log_probs = shifted - shifted.exp().sum(axis=1, keepdims=True).log()
    onehot = np.zeros((n, c))
    onehot[np.arange(n), targets] = 1.0
    if class_weights is not None:
        onehot *= np.asarray(class_weights)[targets][:, None]
    picked = log_probs * SeedTensor(onehot)
    return -(picked.sum() * (1.0 / n))


class SeedAdamW:
    """Seed Adam: fresh zero-state allocation probed on every step."""

    def __init__(self, parameters: List[SeedTensor], lr: float = 1e-2,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 1e-3):
        self.parameters = parameters
        self.lr, self.eps = lr, eps
        self.beta1, self.beta2 = betas
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        self._t += 1
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            m = self._m.get(id(p), np.zeros_like(p.data))
            v = self._v.get(id(p), np.zeros_like(p.data))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad ** 2
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            update = update + self.weight_decay * p.data
            p.data = p.data - self.lr * update


class SeedMGATrainer:
    """The seed ``MGAModel.fit`` epoch loop over pre-fitted frozen modalities.

    Per minibatch, exactly like the seed: rebuild the block-diagonal batch,
    re-encode the (frozen) DAE codes, re-scale the (frozen) extra features,
    run the hetero GNN + fused head, and update with the reallocating Adam.
    """

    def __init__(self, graph_feature_dim: int, num_classes: int, dae, scaler,
                 prepare_extra, gnn_hidden: int = 24, gnn_out: int = 24,
                 gnn_layers: int = 2, mlp_hidden: int = 32,
                 dropout: float = 0.05, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.gnn = SeedHeteroGNNEncoder(graph_feature_dim, gnn_hidden, gnn_out,
                                        gnn_layers, rng)
        fused_dim = gnn_out + dae.code_dim + scaler.min_.shape[0]
        self.head = SeedMLPHead(fused_dim, mlp_hidden, num_classes, dropout, rng)
        self.dae = dae
        self.scaler = scaler
        self.prepare_extra = prepare_extra
        self.num_classes = num_classes
        self.seed = seed

    def fit(self, graphs, vectors, extra, labels, epochs: int,
            batch_size: int = 32, lr: float = 1e-2) -> List[float]:
        labels = np.asarray(labels, dtype=np.int64)
        counts = np.bincount(labels, minlength=self.num_classes).astype(float)
        weights = np.where(counts > 0,
                           counts.sum() / np.maximum(counts, 1.0), 0.0)
        class_weights = weights / max(weights.max(), 1e-12)
        params = self.head.parameters() + self.gnn.parameters()
        optimizer = SeedAdamW(params, lr=lr)
        rng = np.random.default_rng(self.seed + 17)
        n = len(labels)
        history = []
        for _ in range(epochs):
            indices = np.arange(n)
            rng.shuffle(indices)
            epoch_loss, batches = 0.0, 0
            for start in range(0, n, batch_size):
                idx = indices[start:start + batch_size]
                batch = batch_graphs([graphs[i] for i in idx])
                fused = seed_concat([
                    self.gnn(batch),
                    SeedTensor(self.dae.encode(vectors[idx])),
                    SeedTensor(self.scaler.transform(
                        self.prepare_extra(extra[idx]))),
                ], axis=1)
                logits = self.head(fused)
                loss = seed_cross_entropy(logits, labels[idx], class_weights)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            history.append(epoch_loss / max(1, batches))
        return history
