"""Online lifecycle benchmark: hot-swap, shadow tee and drift under load.

Publishes two versions of one tuner (differently seeded fits over the same
training set, drift baseline co-published with each) behind a multi-worker
``ServeDaemon`` on loopback TCP, then exercises the three online-lifecycle
guarantees the serving layer claims:

* **swap** — an open-loop Poisson stream runs while the route hot-swaps
  from v1 to v2 mid-flight.  Every offered request must come back exactly
  once (zero dropped, zero shed), every micro-batch must be single-version
  (the flip lands *between* batches, never inside one), and a post-swap
  request grid must be byte-identical to a cold daemon pinned to v2 — the
  binary ``swap_identity`` gate;
* **shadow** — v1 redeploys as a shadow of the now-live v2 and a serial
  request drive is teed to it.  Shadow batches may only use idle workers:
  the daemon's contention counter must stay at zero while comparisons
  accumulate — the binary ``shadow_zero_critical_path_impact`` gate.  The
  report also records primary latency with the shadow off vs on;
* **drift** — the same daemon serves an exact replay of the training set
  (per-route drift deltas must stay unflagged and score zero) and then an
  out-of-distribution stream of unseen kernels at working-set scales far
  outside the training envelope (the deltas must flag).  Both loadgen
  reports carry the server's drift summary (``server_drift``).

The gates are binary by design — 1.0 when the invariant holds, 0.0 when it
does not — so the CI regression diff against ``benchmarks/baselines/``
fails on any violation, not only on a >30% drop.

Writes ``BENCH_hotswap.json`` at the repository root.  Run directly
(``python benchmarks/bench_hotswap.py [--quick]``) or through pytest.
"""

import argparse
import json
import os
import tempfile
import threading
import time

import numpy as np

from repro.core import MGATuner
from repro.datasets import OpenMPDatasetBuilder
from repro.kernels import registry
from repro.serve import (
    DaemonClient,
    ModelRegistry,
    ServeDaemon,
    baseline_for,
    open_loop,
)
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners import thread_search_space

from _harness import write_bench_json

MODEL = "bench-hotswap"
TRAIN_KERNELS = 6
TRAIN_INPUTS = 3
EPOCHS = 4
SERVE_KERNELS = 4          # unseen kernels: swap/shadow/OOD streams
NUM_REQUESTS = 240         # swap-phase stream (distinct → every one cold)
OFFERED_RPS = 80.0
CONCURRENCY = 32
IDENTITY_GRID = 24         # post-swap byte-identity grid size
SHADOW_REQUESTS = 24       # serial tee drive (and the shadow-off baseline)
OOD_REQUESTS = 36          # out-of-distribution drift stream
DRIFT_RPS = 40.0
WORKERS = 2
MAX_BATCH = 4
DEADLINE_MS = 2.0
MAX_QUEUE = 512            # zero-drop phase: the queue must absorb bursts
SLO_MS = 250.0
LOOPBACK = "tcp://127.0.0.1:0"

#: byte-identity is judged over every prediction-bearing response field
RESULT_FIELDS = ("version", "config_label", "num_threads", "schedule",
                 "chunk_size", "counters")


def _publish_two_versions(root: str):
    """v1 and v2 of ``MODEL`` (seeds 0 and 7) with drift baselines."""
    arch = COMET_LAKE_8C
    space = list(thread_search_space(arch))
    specs = registry.openmp_kernels()
    dataset = OpenMPDatasetBuilder(arch, space, seed=0).build(
        specs[:TRAIN_KERNELS], np.geomspace(1e5, 2e8, TRAIN_INPUTS))
    published = ModelRegistry(root)
    for seed in (0, 7):
        tuner = MGATuner(arch, space, seed=seed, gnn_hidden=12, gnn_out=12,
                         dae_hidden=24, dae_code=8, mlp_hidden=16)
        tuner.fit(dataset, epochs=EPOCHS, dae_epochs=EPOCHS)
        published.publish(MODEL, tuner,
                          drift_baseline=baseline_for(tuner, dataset))
    return dataset


def _served_kernels():
    return registry.openmp_kernels()[TRAIN_KERNELS:
                                     TRAIN_KERNELS + SERVE_KERNELS]


def _request_stream(num_requests: int, seed: int, lo: float = 0.25,
                    hi: float = 4.0):
    """Distinct (kernel, scale) pairs over the unseen serve kernels."""
    served = _served_kernels()
    rng = np.random.default_rng(seed)
    scales = rng.uniform(lo, hi, size=num_requests)
    return [{"op": "tune", "model": MODEL, "kernel": served[i % len(served)].uid,
             "scale": round(float(scales[i]), 6)}
            for i in range(num_requests)]


def _replay_stream(dataset):
    """The training set, verbatim: every (kernel, scale) the sketch saw."""
    return [{"op": "tune", "model": MODEL, "kernel": sample.kernel_uid,
             "scale": sample.scale}
            for sample in dataset.samples]


def _identity_grid():
    served = _served_kernels()
    return [{"op": "tune", "model": MODEL, "kernel": served[i % len(served)].uid,
             "scale": round(10.0 + 0.037 * i, 6)}
            for i in range(IDENTITY_GRID)]


def _serial_drive(address: str, requests):
    """One connection, one request at a time; returns (responses, mean_ms)."""
    responses, elapsed = [], []
    with DaemonClient(address) as client:
        for request in requests:
            start = time.perf_counter()
            responses.append(client.request(dict(request)))
            elapsed.append((time.perf_counter() - start) * 1e3)
    return responses, float(np.mean(elapsed))


def _cold_reference(root: str, requests):
    """What a fresh daemon pinned to v2 answers for ``requests``."""
    daemon = ServeDaemon(LOOPBACK, registry_root=root, workers=1,
                         max_batch=MAX_BATCH, deadline_ms=DEADLINE_MS,
                         watch_interval_s=0.0).start()
    try:
        with DaemonClient(daemon.address) as client:
            client.swap(MODEL, version=2)
            responses, _ = _serial_drive(daemon.address, requests)
        return responses
    finally:
        daemon.shutdown()


def _identical(responses, reference) -> bool:
    for response, expected in zip(responses, reference):
        if response is None:
            return False
        if any(response[field] != expected[field]
               for field in RESULT_FIELDS):
            return False
    return True


def _mixed_version_batches(responses) -> int:
    """Micro-batches that served more than one model version (must be 0)."""
    batches = {}
    for response in responses:
        if response is None:
            continue
        key = (response["worker"], response["batch"])
        batches.setdefault(key, set()).add(response["version"])
    return sum(1 for versions in batches.values() if len(versions) > 1)


def _swap_mid_stream(address: str, delay_s: float, outcome: dict):
    def flip():
        time.sleep(delay_s)
        try:
            with DaemonClient(address) as admin:
                outcome["result"] = admin.swap(MODEL, version=2)
        except Exception as exc:  # recorded, judged by the gate
            outcome["error"] = repr(exc)

    thread = threading.Thread(target=flip, daemon=True)
    thread.start()
    return thread


def _drift_route(stats: dict) -> dict:
    return stats["drift"]["routes"].get(f"{MODEL}@2",
                                        {"count": 0, "flagged": 0,
                                         "mean_score": 0.0})


def _drift_delta(after: dict, before: dict) -> dict:
    """Phase-local drift counters from two cumulative route summaries."""
    count = int(after["count"]) - int(before["count"])
    flagged = int(after["flagged"]) - int(before["flagged"])
    score = (float(after["mean_score"]) * int(after["count"])
             - float(before["mean_score"]) * int(before["count"]))
    return {
        "count": count,
        "flagged": flagged,
        "flagged_rate": (flagged / count) if count else 0.0,
        "mean_score": (score / count) if count else 0.0,
    }


def run(num_requests: int = NUM_REQUESTS,
        shadow_requests: int = SHADOW_REQUESTS,
        ood_requests: int = OOD_REQUESTS) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        root = os.path.join(tmp, "registry")
        dataset = _publish_two_versions(root)

        grid = _identity_grid()
        reference = _cold_reference(root, grid)

        daemon = ServeDaemon(LOOPBACK, registry_root=root, workers=WORKERS,
                             max_batch=MAX_BATCH, deadline_ms=DEADLINE_MS,
                             max_queue=MAX_QUEUE,
                             watch_interval_s=0.0).start()
        try:
            address = daemon.address
            with DaemonClient(address) as admin:
                admin.swap(MODEL, version=1)

            # ---- phase 1: hot-swap v1 → v2 under open-loop load --------
            stream = _request_stream(num_requests, seed=7)
            swap_outcome = {}
            flipper = _swap_mid_stream(
                address, 0.4 * num_requests / OFFERED_RPS, swap_outcome)
            report = open_loop(address, stream, rate_rps=OFFERED_RPS,
                               concurrency=CONCURRENCY, slo_ms=SLO_MS,
                               collect_responses=True)
            flipper.join()
            responses = report["responses"]
            served = [r for r in responses if r is not None]
            versions = sorted({r["version"] for r in served})
            mixed = _mixed_version_batches(responses)

            post_swap, _ = _serial_drive(address, grid)
            post_identical = (
                _identical(post_swap, reference)
                and all(r["version"] == 2 for r in post_swap))

            lifecycle = daemon.stats()["lifecycle"]
            route = lifecycle["routes"][MODEL]
            swap_ok = (
                "result" in swap_outcome
                and report["completed"] == len(stream)
                and report["shed"] == 0
                and len(served) == len(stream)
                and set(versions) <= {1, 2}
                and mixed == 0
                and post_identical
                and route["active_version"] == 2)

            # ---- phase 2: v1 shadows v2, strictly off the critical path
            baseline_reqs = _request_stream(shadow_requests, seed=11)
            _, mean_ms_off = _serial_drive(address, baseline_reqs)

            with DaemonClient(address) as admin:
                admin.shadow_start(MODEL, 1, fraction=1.0, tolerance=0.25)
                teed_reqs = _request_stream(shadow_requests, seed=13)
                primaries, mean_ms_on = _serial_drive(address, teed_reqs)
                deadline = time.monotonic() + 30.0
                status = admin.shadow_status(MODEL)
                while (status["compared"] < shadow_requests
                       and time.monotonic() < deadline):
                    time.sleep(0.05)
                    status = admin.shadow_status(MODEL)
                shadow_stats = daemon.stats()["shadow"]
                admin.shadow_stop(MODEL)

            shadow_ok = (
                status["compared"] >= shadow_requests
                and status["errors"] == 0
                and shadow_stats["contention"] == 0
                and all(r["version"] == 2 for r in primaries))

            # ---- phase 3: drift — exact training replay, then OOD ------
            before = _drift_route(daemon.stats())
            replay = open_loop(address, _replay_stream(dataset),
                               rate_rps=DRIFT_RPS, concurrency=8)
            mid = _drift_route(daemon.stats())
            in_dist = _drift_delta(mid, before)

            ood_stream = _request_stream(ood_requests, seed=17,
                                         lo=0.01, hi=0.1)
            ood_report = open_loop(address, ood_stream, rate_rps=DRIFT_RPS,
                                   concurrency=8)
            out_dist = _drift_delta(_drift_route(daemon.stats()), mid)
        finally:
            daemon.shutdown()

    return {
        "workers": WORKERS,
        "max_batch": MAX_BATCH,
        "deadline_ms": DEADLINE_MS,
        "max_queue": MAX_QUEUE,
        "swap": {
            "requests": len(stream),
            "offered_rps": report["offered_rps"],
            "achieved_rps": report["achieved_rps"],
            "completed": report["completed"],
            "shed": report["shed"],
            "errors": report["errors"],
            "p50_latency_ms": report["latency_ms"]["p50"],
            "p99_latency_ms": report["latency_ms"]["p99"],
            "slo_attainment": report["slo"]["attainment"],
            "admin": swap_outcome,
            "versions_served": versions,
            "mixed_version_batches": mixed,
            "post_swap_identical_to_cold_daemon": post_identical,
            "route": route,
        },
        "shadow": {
            "primary_mean_ms_shadow_off": mean_ms_off,
            "primary_mean_ms_shadow_on": mean_ms_on,
            "teed": status["teed"],
            "compared": status["compared"],
            "agree": status["agree"],
            "near": status["near"],
            "disagree": status["disagree"],
            "disagreement_rate": status["disagreement_rate"],
            "errors": status["errors"],
            "contention": shadow_stats["contention"],
            "batches": shadow_stats["batches"],
        },
        "drift": {
            "in_distribution": in_dist,
            "out_of_distribution": out_dist,
            "replay_server_drift": replay.get("server_drift"),
            "ood_server_drift": ood_report.get("server_drift"),
        },
        # binary invariants, not throughputs: 1.0 = holds, 0.0 = violated,
        # so the CI baseline diff fails on any break
        "gate_metrics": {
            "swap_identity": 1.0 if swap_ok else 0.0,
            "shadow_zero_critical_path_impact": 1.0 if shadow_ok else 0.0,
        },
    }


def _check(payload: dict) -> None:
    swap = payload["swap"]
    assert payload["gate_metrics"]["swap_identity"] == 1.0, swap
    assert swap["completed"] == swap["requests"], (
        f"dropped requests across the hot-swap: "
        f"{swap['completed']}/{swap['requests']}")
    assert swap["mixed_version_batches"] == 0, (
        "a micro-batch mixed model versions across the flip")
    assert swap["post_swap_identical_to_cold_daemon"], (
        "post-swap predictions diverged from a cold daemon pinned to v2")

    shadow = payload["shadow"]
    assert payload["gate_metrics"][
        "shadow_zero_critical_path_impact"] == 1.0, shadow
    assert shadow["compared"] > 0 and shadow["contention"] == 0, shadow

    drift = payload["drift"]
    in_dist, out_dist = drift["in_distribution"], drift["out_of_distribution"]
    assert in_dist["count"] > 0 and in_dist["flagged"] == 0, (
        f"training-set replay flagged as drift: {in_dist}")
    # near-zero: far below the 0.05 flag threshold, not bit-exact — the
    # served profile pass may pick a different (still in-envelope) config
    assert in_dist["mean_score"] < 0.02, in_dist
    assert out_dist["count"] > 0 and out_dist["flagged_rate"] > 0.5, (
        f"out-of-distribution stream not flagged: {out_dist}")
    assert drift["replay_server_drift"], (
        "loadgen report is missing the server drift summary")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small request counts (CI smoke mode)")
    args = parser.parse_args()

    if args.quick:
        payload = run(num_requests=96, shadow_requests=12, ood_requests=16)
    else:
        payload = run()
    path = write_bench_json("hotswap", payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")
    _check(payload)
    return 0


def test_hotswap(once, capsys):
    if os.environ.get("REPRO_BENCH_QUICK") == "1":
        payload = once(lambda: run(num_requests=96, shadow_requests=12,
                                   ood_requests=16))
    else:
        payload = once(run)
    with capsys.disabled():
        print()
        print("hotswap lifecycle:")
        print(json.dumps(payload, indent=2))
    _check(payload)


if __name__ == "__main__":
    raise SystemExit(main())
