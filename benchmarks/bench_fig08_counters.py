"""Figure 8: counter comparison (default vs tuned config) for 2mm."""

from repro.evaluation.experiments import fig8


def test_fig8_counters(once, capsys):
    result = once(fig8.run)
    with capsys.disabled():
        print()
        print(fig8.format_result(result))
    assert result["predicted_time"] <= result["default_time"]
    norm = result["normalized_counters"]
    assert norm["PAPI_L3_LDM"][0] <= norm["PAPI_L3_LDM"][1] * 1.2
