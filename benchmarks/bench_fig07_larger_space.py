"""Figure 7 + Table 2: larger search space, leave-one-application-out
(reduced: fewer applications / inputs, full Table-2 space).

The reduced experiment needs 4 inputs per application and 60 training epochs
for the MGA tuner to separate from noise (with the seed's 3 inputs / 20
epochs the leave-one-application-out folds train on 21 samples and the
quality assertions are a coin flip).  ``REPRO_BENCH_QUICK=1`` runs a tiny
smoke configuration that only checks the experiment machinery end to end.
"""

from repro.evaluation.experiments import fig7

from conftest import QUICK


def test_fig7_larger_search_space(once, capsys):
    kwargs = (dict(max_apps=4, num_inputs=2, epochs=4, budget=4)
              if QUICK else dict(max_apps=8, num_inputs=4, epochs=60, budget=8))
    result = once(fig7.run, **kwargs)
    with capsys.disabled():
        print()
        print(fig7.format_result(result))
    summary = result["summary"]
    assert summary["search_space_size"] == 7 * 3 * 7
    if QUICK:
        assert summary["num_apps"] == kwargs["max_apps"]
        return
    # MGA achieves a large fraction of the oracle speedup overall
    assert summary["geomean_mga"] >= 0.7 * summary["geomean_oracle"]
    # and is within the oracle for at least half of the applications at 0.85
    assert summary["apps_above_085"] >= summary["num_apps"] // 2
