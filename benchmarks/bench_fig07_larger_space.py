"""Figure 7 + Table 2: larger search space, leave-one-application-out
(reduced: fewer applications / inputs, full Table-2 space)."""

from repro.evaluation.experiments import fig7


def test_fig7_larger_search_space(once, capsys):
    result = once(fig7.run, max_apps=8, num_inputs=3, epochs=20, budget=8)
    with capsys.disabled():
        print()
        print(fig7.format_result(result))
    summary = result["summary"]
    assert summary["search_space_size"] == 7 * 3 * 7
    # MGA achieves a large fraction of the oracle speedup overall
    assert summary["geomean_mga"] >= 0.7 * summary["geomean_oracle"]
    # and is within the oracle for at least half of the applications at 0.85
    assert summary["apps_above_085"] >= summary["num_apps"] // 2
