"""Elastic fleet campaigns under a standard fault plan vs the serial loop.

Runs the same random-search campaign twice: once serially in-process
(``workers=1`` semantics) and once through
:class:`repro.tuners.fleet.CampaignCoordinator` with subprocess workers
evaluating leases over the serve transport — while a **standard fault
plan** drops, duplicates, and delays frames, stalls heartbeats, and
SIGKILLs each worker partway through its work.  A second wave of workers
joins mid-campaign (elastic join) and the coordinator's local fallback
backstops termination.

The gate metric is the one the fleet layer exists to protect, and it is
binary: ``elastic_history_identical`` is 1.0 iff the faulted elastic
history is byte-identical to the serial one.  Wall-clock numbers are
reported for context but do not gate (fault injection makes them noisy by
design).

Writes ``BENCH_campaign_elastic.json`` at the repository root.  Run
directly (``python benchmarks/bench_campaign_elastic.py [--quick]``).
"""

import argparse
import json
import multiprocessing
import os
import tempfile
import time
import uuid

from repro.serve.faults import FaultPlan
from repro.simulator.microarch import SKYLAKE_4114
from repro.tuners import (
    CampaignCoordinator,
    RandomSearchTuner,
    SimObjectiveSpec,
    TuningCampaign,
    full_search_space,
    run_worker,
)

from _harness import write_bench_json

#: same occupancy model as bench_campaign_scaling: every evaluation holds
#: ~30 ms of wall time, so worker overlap (and fault recovery) dominates
WALLTIME_SCALE = 20.0
WALLTIME_CAP = 0.030

#: the standard fault plan (seed pinned via REPRO_FAULT_SEED in CI)
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "1234"))

_FORK = multiprocessing.get_context("fork")


def _campaign(budget: int, batch_size: int) -> TuningCampaign:
    space = full_search_space(max_threads=SKYLAKE_4114.max_threads)
    spec = SimObjectiveSpec(kernel_uid="polybench/gemm", arch=SKYLAKE_4114,
                            scale=1.0, seed=99, repeats=1,
                            walltime_scale=WALLTIME_SCALE,
                            walltime_cap=WALLTIME_CAP)
    return TuningCampaign(RandomSearchTuner(budget=budget, seed=11),
                          space, spec, batch_size=batch_size)


def _spawn_wave(address: str, count: int, plan: FaultPlan,
                offset: int) -> list:
    procs = []
    for index in range(count):
        proc = _FORK.Process(
            target=run_worker, args=(address,),
            kwargs=dict(worker_id=f"bench{offset + index}",
                        fault_plan=plan,
                        fault_seed_offset=offset + index + 1,
                        max_configs=2, request_timeout=2.0,
                        retries=10, backoff_base=0.02),
            daemon=True)
        proc.start()
        procs.append(proc)
    return procs


def _elastic_run(budget: int, batch_size: int, workers: int,
                 plan: FaultPlan) -> tuple:
    address = os.path.join(tempfile.gettempdir(),
                           f"repro-elastic-{uuid.uuid4().hex[:10]}.sock")
    campaign = _campaign(budget, batch_size)
    started = time.perf_counter()
    with CampaignCoordinator(campaign, address, lease_timeout=0.5,
                             local_fallback_s=1.0,
                             max_lease_configs=4) as coordinator:
        first = _spawn_wave(coordinator.address, workers, plan, offset=0)
        # elastic join: a second wave arrives after the first wave has
        # started dying to its kill_after schedule
        time.sleep(0.5)
        second = _spawn_wave(coordinator.address, workers, plan,
                             offset=workers)
        result = coordinator.run()
        wall = time.perf_counter() - started
        for proc in first + second:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.kill()
    return result, wall, coordinator.stats()


def run(budget: int = 48, batch_size: int = 8, workers: int = 3) -> dict:
    plan = FaultPlan(drop=0.15, dup=0.15, delay_ms=10.0, kill_after=5,
                     stall_after=2, stall_for=0.6, seed=FAULT_SEED)
    serial_campaign = _campaign(budget, batch_size)
    serial_start = time.perf_counter()
    serial = serial_campaign.run()
    serial_wall = time.perf_counter() - serial_start

    elastic, elastic_wall, stats = _elastic_run(budget, batch_size,
                                                workers, plan)
    identical = elastic.history == serial.history
    return {
        "objective": {"kernel": "polybench/gemm", "arch": SKYLAKE_4114.name,
                      "walltime_scale": WALLTIME_SCALE,
                      "walltime_cap_s": WALLTIME_CAP},
        "budget": budget,
        "batch_size": batch_size,
        "workers_per_wave": workers,
        "fault_plan": plan.to_spec(),
        "serial": {"wall_s": serial_wall},
        "elastic": {
            "wall_s": elastic_wall,
            "speedup_vs_serial": serial_wall / elastic_wall,
            "leases": stats["leases"],
            "submissions": stats["submissions"],
            "local_evaluations": stats["local_evaluations"],
            "workers_seen": stats["workers"]["seen"],
        },
        "history_identical": identical,
        # binary gate: 1.0 iff the faulted elastic history is byte-identical
        # to serial — stable under the ratio-based regression gate, unlike
        # wall-clock under fault injection
        "gate_metrics": {
            "elastic_history_identical": 1.0 if identical else 0.0,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small budget, 2 workers per wave "
                             "(CI smoke mode)")
    args = parser.parse_args()

    if args.quick:
        payload = run(budget=16, batch_size=4, workers=2)
    else:
        payload = run()
    path = write_bench_json("campaign_elastic", payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")

    assert payload["history_identical"], (
        "elastic history diverged from serial under the standard fault "
        "plan — the fleet layer lost its exactly-once guarantee")
    print("elastic history identical to serial under "
          f"faults '{payload['fault_plan']}'")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
