"""Serving-daemon scaling: closed-loop load against 1..N worker processes.

Publishes a small tuner, then drives the same stream of *distinct*
``tune`` requests (every request pays real feature-extraction work — no
cache hits) through ``ServeDaemon`` at increasing worker counts with a
closed-loop generator: ``CLIENTS`` threads, each with its own connection,
each holding at most one request in flight.  Reports requests/second and
the speedup over the single-worker daemon, and verifies that every daemon
response is byte-identical to the in-process ``InferenceEngine`` over the
same published artifact (the acceptance bar: the daemon adds concurrency,
never different answers).

Like ``bench_campaign_scaling``, the daemon runs emulate the *occupancy*
of real profiling: each cold request's profiling run sleeps for (a capped
multiple of) its simulated kernel execution time
(``REPRO_PROFILE_WALLTIME_SCALE``, see :class:`repro.profiling.papi.
PAPIProfiler`).  On real hardware the service blocks on exactly that
execution, and overlapping those waits is what the worker pool buys — the
numbers are then meaningful even on single-core CI runners, where pure
CPU work cannot overlap.  The emulation only adds waits; response values
are unaffected (the byte-identity check runs without it).

Writes ``BENCH_serving_scaling.json`` at the repository root; its
``gate_metrics`` are diffed against ``benchmarks/baselines/`` by the CI
regression gate.  Run directly (``python benchmarks/bench_serving_scaling.py
[--quick]``) or through pytest.
"""

import argparse
import json
import os
import tempfile
import threading
import time

import numpy as np

from repro.core import MGATuner
from repro.datasets import OpenMPDatasetBuilder
from repro.kernels import registry
from repro.profiling.papi import WALLTIME_CAP_ENV, WALLTIME_SCALE_ENV
from repro.serve import DaemonClient, InferenceEngine, ModelRegistry, ServeDaemon
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners import thread_search_space

from _harness import write_bench_json

TRAIN_KERNELS = 8
TRAIN_INPUTS = 3
EPOCHS = 8
SERVE_KERNELS = 6          # unseen kernels served after training
NUM_REQUESTS = 240         # distinct (kernel, scale) pairs — no cache help
WARMUP_REQUESTS = 24       # untimed: settles per-worker numpy/model caches
CLIENTS = 24
MAX_BATCH = 4
DEADLINE_MS = 2.0
#: profiling-occupancy emulation (see module docstring): each cold request
#: waits on its kernel's simulated execution, capped per run
WALLTIME_SCALE = 2.0
WALLTIME_CAP = 0.02


def _publish(root: str) -> None:
    arch = COMET_LAKE_8C
    space = list(thread_search_space(arch))
    specs = registry.openmp_kernels()
    tuner = MGATuner(arch, space, seed=0, gnn_hidden=12, gnn_out=12,
                     dae_hidden=24, dae_code=8, mlp_hidden=16)
    dataset = OpenMPDatasetBuilder(arch, space, seed=0).build(
        specs[:TRAIN_KERNELS], np.geomspace(1e5, 2e8, TRAIN_INPUTS))
    tuner.fit(dataset, epochs=EPOCHS, dae_epochs=EPOCHS)
    ModelRegistry(root).publish("bench-openmp", tuner)


def _request_stream(num_requests: int, seed: int = 7):
    """Distinct (kernel uid, scale) pairs: every request is a cache miss."""
    served = registry.openmp_kernels()[TRAIN_KERNELS:
                                      TRAIN_KERNELS + SERVE_KERNELS]
    rng = np.random.default_rng(seed)
    scales = rng.uniform(0.25, 4.0, size=num_requests)
    return [(served[i % len(served)].uid, round(float(scales[i]), 6))
            for i in range(num_requests)]


def _reference_responses(root: str, requests):
    """The in-process engine's answers over the same published artifact."""
    tuner = ModelRegistry(root).load("bench-openmp")
    with InferenceEngine(tuner, max_batch_size=MAX_BATCH,
                         max_wait_ms=1.0) as engine:
        responses = []
        for uid, scale in requests:
            config, counters = engine.tune(registry.get_kernel(uid), scale)
            responses.append({"config_label": config.label(),
                              "num_threads": config.num_threads,
                              "schedule": config.schedule.value,
                              "chunk_size": config.chunk_size,
                              "counters": dict(counters)})
    return responses


def _closed_loop(socket_path: str, requests, clients: int):
    """Drive all requests through per-thread connections; returns responses."""
    responses = [None] * len(requests)
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker():
        client = DaemonClient(socket_path)
        try:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(requests):
                        return
                    cursor["next"] = index + 1
                uid, scale = requests[index]
                result = client.request({"op": "tune", "model": "bench-openmp",
                                         "kernel": uid, "scale": scale})
                responses[index] = {
                    "config_label": result["config_label"],
                    "num_threads": result["num_threads"],
                    "schedule": result["schedule"],
                    "chunk_size": result["chunk_size"],
                    "counters": dict(result["counters"]),
                }
        finally:
            client.close()

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return responses, time.perf_counter() - started


def run(num_requests: int = NUM_REQUESTS, clients: int = CLIENTS,
        worker_counts=(1, 2, 4)) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        root = os.path.join(tmp, "registry")
        _publish(root)
        requests = _request_stream(num_requests)
        warmup = _request_stream(WARMUP_REQUESTS, seed=1234)
        # the reference runs without occupancy emulation: values, not timing
        reference = _reference_responses(root, requests)

        per_workers = {}
        identical = True
        os.environ[WALLTIME_SCALE_ENV] = str(WALLTIME_SCALE)
        os.environ[WALLTIME_CAP_ENV] = str(WALLTIME_CAP)
        try:
            for workers in worker_counts:
                socket_path = os.path.join(tmp, f"daemon-{workers}.sock")
                with ServeDaemon(socket_path, registry_root=root,
                                 workers=workers, max_batch=MAX_BATCH,
                                 deadline_ms=DEADLINE_MS,
                                 max_queue=4 * clients,
                                 preload=["bench-openmp"]) as daemon:
                    # untimed warmup: every worker executes a few batches
                    # before the clock starts, as a long-running daemon would
                    _closed_loop(socket_path, warmup, clients)
                    responses, seconds = _closed_loop(socket_path, requests,
                                                      clients)
                    stats = daemon.stats()
                identical = identical and responses == reference
                per_workers[workers] = {
                    "wall_s": seconds,
                    "rps": num_requests / seconds,
                    "mean_batch_size": stats["batches"]["mean_size"],
                    "p50_latency_ms": stats["latency_ms"]["p50"],
                    "p99_latency_ms": stats["latency_ms"]["p99"],
                    "shed": stats["requests"]["shed"],
                }
        finally:
            os.environ.pop(WALLTIME_SCALE_ENV, None)
            os.environ.pop(WALLTIME_CAP_ENV, None)
    serial = per_workers[worker_counts[0]]["wall_s"]
    for workers in worker_counts:
        per_workers[workers]["speedup"] = \
            serial / per_workers[workers]["wall_s"]
    top = worker_counts[-1]
    return {
        "model": "bench-openmp",
        "requests": num_requests,
        "clients": clients,
        "max_batch": MAX_BATCH,
        "deadline_ms": DEADLINE_MS,
        "profile_walltime": {"scale": WALLTIME_SCALE, "cap_s": WALLTIME_CAP},
        "predictions_identical_to_engine": identical,
        "workers": {str(w): per_workers[w] for w in worker_counts},
        # only dimensionless ratios gate CI: absolute rps depends on the
        # runner's hardware, the speedup is occupancy overlap
        "gate_metrics": {
            f"serving_speedup_{top}w": per_workers[top]["speedup"],
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small request count, workers 1-2, no speedup "
                             "assert (CI smoke mode)")
    args = parser.parse_args()

    if args.quick:
        payload = run(num_requests=32, clients=8, worker_counts=(1, 2))
    else:
        payload = run()
    path = write_bench_json("serving_scaling", payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")

    assert payload["predictions_identical_to_engine"], (
        "daemon responses diverged from the in-process InferenceEngine")
    if not args.quick:
        speedup4 = payload["workers"]["4"]["speedup"]
        assert speedup4 >= 2.0, (
            f"expected >=2x throughput at 4 workers vs 1, got "
            f"{speedup4:.2f}x")
        print(f"4-worker speedup {speedup4:.2f}x (>= 2x required)")
    return 0


def test_serving_scaling(once, capsys):
    if os.environ.get("REPRO_BENCH_QUICK") == "1":
        payload = once(lambda: run(num_requests=24, clients=8,
                                   worker_counts=(1, 2)))
    else:
        payload = once(run)
        assert payload["workers"]["4"]["speedup"] >= 2.0
    with capsys.disabled():
        print()
        print("serving daemon scaling:")
        print(json.dumps(payload, indent=2))
    assert payload["predictions_identical_to_engine"]


if __name__ == "__main__":
    raise SystemExit(main())
