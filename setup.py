"""Setuptools shim.

Kept so that ``pip install -e . --no-build-isolation --no-use-pep517`` works
on offline machines that lack the ``wheel`` package (PEP 660 editable builds
need it); all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
