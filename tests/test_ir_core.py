"""Unit tests for the miniature IR: types, values, builder, blocks, module."""

import pytest

from repro.ir import (
    Argument,
    Constant,
    DataType,
    Function,
    IRBuilder,
    Instruction,
    Module,
    Opcode,
    is_float,
    is_int,
    is_pointer,
)
from repro.ir.types import pointee, pointer_to, sizeof
from repro.ir.values import GlobalVariable


class TestTypes:
    def test_int_float_pointer_classification(self):
        assert is_int(DataType.I64) and is_int(DataType.I1)
        assert is_float(DataType.F64) and is_float(DataType.F32)
        assert is_pointer(DataType.PTR_F64)
        assert not is_pointer(DataType.F64)
        assert not is_int(DataType.F32)

    def test_pointee_roundtrip(self):
        for scalar in (DataType.I32, DataType.I64, DataType.F32, DataType.F64):
            assert pointee(pointer_to(scalar)) == scalar

    def test_pointee_of_non_pointer_raises(self):
        with pytest.raises(ValueError):
            pointee(DataType.F64)

    def test_sizeof(self):
        assert sizeof(DataType.F64) == 8
        assert sizeof(DataType.F32) == 4
        assert sizeof(DataType.I1) == 1
        assert sizeof(DataType.PTR_F64) == 8
        with pytest.raises(ValueError):
            sizeof(DataType.VOID)


class TestValues:
    def test_constant_types(self):
        c = Constant(3, DataType.I64)
        assert c.value == 3 and c.short() == "3"
        f = Constant(2.5, DataType.F64)
        assert isinstance(f.value, float)
        with pytest.raises(ValueError):
            Constant(1, DataType.PTR_F64)

    def test_values_identity_semantics(self):
        a = Constant(1)
        b = Constant(1)
        assert a != b and a == a
        assert len({a, b}) == 2

    def test_global_variable_requires_pointer(self):
        g = GlobalVariable("arr", DataType.PTR_F64, 128)
        assert g.short() == "@arr"
        with pytest.raises(ValueError):
            GlobalVariable("bad", DataType.F64)


class TestBuilderAndBlocks:
    def _make_function(self):
        f = Function("f", [Argument("p", DataType.PTR_F64)], DataType.VOID)
        entry = f.add_block("entry")
        return f, entry, IRBuilder(entry)

    def test_arithmetic_dispatch(self):
        _, _, b = self._make_function()
        i = b.add(b.const_int(1), b.const_int(2))
        assert i.opcode == Opcode.ADD
        f = b.mul(b.const_float(1.0), b.const_float(2.0))
        assert f.opcode == Opcode.FMUL
        mixed = b.add(b.const_float(1.0), b.const_int(2))
        assert mixed.opcode == Opcode.FADD

    def test_memory_ops_require_pointers(self):
        f, _, b = self._make_function()
        ptr = b.gep(f.args[0], b.const_int(4))
        val = b.load(ptr)
        assert val.dtype == DataType.F64
        b.store(val, ptr)
        with pytest.raises(ValueError):
            b.load(b.const_int(1))
        with pytest.raises(ValueError):
            b.gep(b.const_int(1), b.const_int(0))

    def test_terminator_blocks_appends(self):
        f, entry, b = self._make_function()
        exit_block = f.add_block("exit")
        b.br(exit_block)
        with pytest.raises(ValueError):
            b.add(b.const_int(1), b.const_int(1))
        assert entry.is_terminated
        assert entry.successors() == [exit_block]
        assert exit_block.predecessors() == [entry]

    def test_phi_incoming(self):
        f, entry, b = self._make_function()
        loop = f.add_block("loop")
        b.br(loop)
        b.position_at_end(loop)
        phi = b.phi(DataType.I64)
        b.add_incoming(phi, b.const_int(0), entry)
        assert len(phi.operands) == 1
        assert phi.metadata["incoming"] == [entry]

    def test_unique_block_labels(self):
        f, _, _ = self._make_function()
        b1 = f.add_block("body")
        b2 = f.add_block("body")
        assert b1.label != b2.label


class TestModule:
    def test_duplicate_names_rejected(self):
        m = Module("m")
        m.add_function(Function("f"))
        with pytest.raises(ValueError):
            m.add_function(Function("f"))
        m.add_global("g", DataType.PTR_F64, 4)
        with pytest.raises(ValueError):
            m.add_global("g", DataType.PTR_F64, 4)

    def test_lookup(self):
        m = Module("m")
        f = m.add_function(Function("f"))
        assert m.get_function("f") is f
        with pytest.raises(KeyError):
            m.get_function("missing")

    def test_instruction_classification(self):
        inst = Instruction(Opcode.STORE, DataType.VOID, [])
        assert inst.is_memory and not inst.has_result
        call = Instruction(Opcode.CALL, DataType.F64, [], metadata={"callee": "x"})
        assert call.is_call and call.has_result
        br = Instruction(Opcode.BR, DataType.VOID, [])
        assert br.is_terminator
