"""Verifier, printer and CFG/loop analysis tests over real lowered kernels."""

import pytest

from repro.frontend import lower_to_ir
from repro.ir import (
    Argument,
    DataType,
    Function,
    IRBuilder,
    Module,
    VerificationError,
    compute_dominators,
    instruction_histogram,
    module_statistics,
    natural_loops,
    print_function,
    print_module,
    reachable_blocks,
    verify_function,
    verify_module,
)
from repro.ir.analysis import loop_nest_depth
from repro.kernels import registry


@pytest.fixture(scope="module")
def gemm_module():
    return lower_to_ir(registry.get_kernel("polybench/gemm"))


class TestVerifier:
    def test_lowered_kernels_verify(self, gemm_module):
        assert verify_module(gemm_module) == []

    def test_unterminated_block_detected(self):
        f = Function("f")
        f.add_block("entry")
        errors = verify_function(f)
        assert any("not terminated" in e for e in errors)

    def test_missing_operand_definition_detected(self):
        f = Function("f")
        other = Function("g", [Argument("x", DataType.I64)])
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        b.add(other.args[0], b.const_int(1))   # argument of another function
        b.ret()
        errors = verify_function(f)
        assert any("not defined" in e for e in errors)

    def test_verify_module_raises(self):
        m = Module("bad")
        f = Function("f")
        f.add_block("entry")
        m.add_function(f)
        with pytest.raises(VerificationError):
            verify_module(m)


class TestPrinter:
    def test_print_module_contains_structure(self, gemm_module):
        text = print_module(gemm_module)
        assert "define" in text and "phi" in text and "getelementptr" in text
        assert "@A" in text and "omp.fork" in text

    def test_print_declaration(self):
        f = Function("ext", [Argument("x", DataType.F64)], DataType.F64)
        assert print_function(f).startswith("declare")


class TestAnalysis:
    def test_loop_detection_matches_nest_depth(self, gemm_module):
        outlined = gemm_module.get_function("gemm.omp_outlined")
        loops = natural_loops(outlined)
        assert len(loops) == 3            # i, j, k loops
        assert loop_nest_depth(outlined) == 3

    def test_dominators_entry_dominates_all(self, gemm_module):
        outlined = gemm_module.get_function("gemm.omp_outlined")
        dom = compute_dominators(outlined)
        entry = outlined.entry_block
        for block in reachable_blocks(outlined):
            assert entry in dom[block]

    def test_statistics_consistency(self, gemm_module):
        stats = module_statistics(gemm_module)
        hist = instruction_histogram(gemm_module)
        assert stats["num_instructions"] == sum(hist.values())
        assert 0.0 <= stats["mem_ratio"] <= 1.0
        assert stats["max_loop_depth"] == 3
        assert stats["num_calls"] >= 1     # the omp.fork

    def test_reachability(self, gemm_module):
        for function in gemm_module.defined_functions():
            reachable = reachable_blocks(function)
            assert function.entry_block in reachable
            assert reachable <= set(function.blocks)
