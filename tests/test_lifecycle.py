"""Online model lifecycle: atomic publish, hot-swap, shadow deploys, drift."""

import os
import tempfile
import threading
import time
import types
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import MGATuner
from repro.kernels import registry as kernel_registry
from repro.serve import (
    DaemonClient,
    DaemonError,
    InferenceEngine,
    ModelRegistry,
    ServeDaemon,
    ServeRouter,
)
from repro.serve.drift import (
    DriftBaseline,
    DriftMonitor,
    baseline_from_devmap,
    baseline_from_openmp,
    merge_route_drift,
    tune_feature_vector,
)
from repro.simulator.microarch import COMET_LAKE_8C
import repro.serve.registry as registry_module

TRAIN_KW = dict(gnn_hidden=12, gnn_out=12, dae_hidden=24, dae_code=8,
                mlp_hidden=16)


def _socket_path() -> str:
    # AF_UNIX paths are length-limited (~107 bytes); stay in /tmp
    return os.path.join(tempfile.mkdtemp(prefix="repro-lc-"), "d.sock")


@pytest.fixture(scope="module")
def tuner_pair(small_openmp_dataset, extractor):
    """Two differently-seeded tuners over the same training set."""
    ds = small_openmp_dataset
    pair = []
    for seed in (0, 7):
        tuner = MGATuner(COMET_LAKE_8C, ds.configs, extractor=extractor,
                         seed=seed, **TRAIN_KW)
        tuner.fit(ds, epochs=2, dae_epochs=2)
        pair.append(tuner)
    return tuple(pair)


def _two_version_registry(root, tuner_pair, dataset):
    """v1 = first tuner, v2 = second, both with drift baselines."""
    registry = ModelRegistry(str(root))
    baseline = baseline_from_openmp(dataset)
    for tuner in tuner_pair:
        registry.publish("m", tuner, metadata={"task": "openmp"},
                         drift_baseline=baseline)
    return registry


def _tune(client, kernel="polybench/gemm", scale=1.0, version=None):
    document = {"op": "tune", "model": "m", "kernel": kernel, "scale": scale}
    if version is not None:
        document["version"] = version
    return client.request(document)


def _engine_reference(registry, version, requests):
    """config labels the version's engine produces for (kernel, scale)s."""
    tuner = registry.load("m", version)
    reference = {}
    with InferenceEngine(tuner, max_batch_size=4, max_wait_ms=1.0) as engine:
        for uid, scale in requests:
            config, counters = engine.tune(kernel_registry.get_kernel(uid),
                                           scale)
            reference[(uid, scale)] = (config.label(), config.num_threads,
                                       config.schedule.value,
                                       config.chunk_size, dict(counters))
    return reference


REQUEST_GRID = [(uid, scale)
                for uid in ("polybench/gemm", "polybench/atax",
                            "rodinia/kmeans")
                for scale in (0.5, 1.0, 2.0)]


# ----------------------------------------------------------------------
class TestRegistryAtomicity:
    def test_reader_racing_slow_publish_never_sees_partial_state(
            self, tmp_path, tuner_pair, small_openmp_dataset, monkeypatch):
        """A publish held open mid-staging is invisible until the rename."""
        registry = ModelRegistry(str(tmp_path))
        registry.publish("m", tuner_pair[0])
        reader = ModelRegistry(str(tmp_path))   # no shared in-process lock

        in_staging = threading.Event()
        real_save = registry_module.save_artifact

        def slow_save(path, obj, metadata=None):
            result = real_save(path, obj, metadata=metadata)
            in_staging.set()
            time.sleep(0.4)                     # hold the staging window open
            return result

        monkeypatch.setattr(registry_module, "save_artifact", slow_save)
        failures = []
        stop = threading.Event()

        def read_loop():
            while not stop.is_set():
                try:
                    generation = reader.generation()
                    versions = reader.versions("m")
                    latest = reader.latest("m")
                    if not set(versions) <= {1, 2}:
                        failures.append(f"partial versions {versions}")
                    if latest not in (1, 2):
                        failures.append(f"bad latest {latest}")
                    if generation >= 2 and reader.latest("m") < 2:
                        failures.append("generation moved before LATEST")
                    reader.load("m")            # must always deserialise
                except Exception as exc:        # any reader crash is a fail
                    failures.append(repr(exc))
                time.sleep(0.005)

        thread = threading.Thread(target=read_loop, daemon=True)
        thread.start()
        published = registry.publish("m", tuner_pair[1])
        stop.set()
        thread.join(5.0)
        assert not failures
        assert in_staging.is_set()
        assert published.version == 2
        assert reader.latest("m") == 2
        assert reader.generation() == 2
        leftovers = [entry for entry in os.listdir(tmp_path / "m")
                     if entry.startswith(".staging")]
        assert not leftovers

    def test_generation_bumps_and_drift_co_publishes(
            self, tmp_path, tuner_pair, small_openmp_dataset):
        registry = _two_version_registry(tmp_path, tuner_pair,
                                         small_openmp_dataset)
        assert registry.generation() == 2
        for version in (1, 2):
            baseline = registry.load_drift_baseline("m", version)
            assert isinstance(baseline, DriftBaseline)
            assert baseline.task == "tune"
            assert baseline.n_samples == len(small_openmp_dataset)
        assert registry.load_drift_baseline("m") is not None

    def test_version_without_baseline_loads_none(self, tmp_path, tuner_pair):
        registry = ModelRegistry(str(tmp_path))
        registry.publish("m", tuner_pair[0])
        assert registry.load_drift_baseline("m", 1) is None


# ----------------------------------------------------------------------
class TestDriftDetection:
    def test_in_distribution_replay_scores_exactly_zero(
            self, small_openmp_dataset):
        baseline = baseline_from_openmp(small_openmp_dataset)
        monitor = DriftMonitor(baseline)
        names = baseline.counter_names
        for sample in small_openmp_dataset.samples:
            row = tune_feature_vector(sample.vector, sample.counters, names)
            signals = monitor.observe(row, graph=sample.graph)
            assert signals["score"] == 0.0
            assert not signals["flagged"]
        summary = monitor.summary()
        assert summary["count"] == len(small_openmp_dataset)
        assert summary["flagged"] == 0
        assert summary["score_sum"] == 0.0

    def test_out_of_distribution_rows_flag(self, small_openmp_dataset):
        baseline = baseline_from_openmp(small_openmp_dataset)
        monitor = DriftMonitor(baseline)
        sample = small_openmp_dataset.samples[0]
        row = tune_feature_vector(sample.vector, sample.counters,
                                  baseline.counter_names)
        shifted = row + 10.0 * (np.abs(baseline.hi) + 1.0)
        signals = monitor.observe(shifted)
        assert signals["oob"] == 1.0
        assert signals["flagged"]

    def test_unseen_vocabulary_tokens_flag(self):
        features = np.zeros((8, 3))
        baseline = DriftBaseline.from_features(
            features, [np.array([0, 1])], task="tune", vocab_size=6)
        monitor = DriftMonitor(baseline)
        unseen = np.zeros((4, 6))
        unseen[:, 5] = 1.0                      # token id 5: never trained on
        graph = types.SimpleNamespace(node_features=unseen)
        signals = monitor.observe(np.zeros(3), graph=graph)
        assert signals["unseen_tokens"] == 1.0
        assert signals["score"] == 1.0
        assert signals["flagged"]

    def test_payload_round_trip(self, small_openmp_dataset):
        baseline = baseline_from_openmp(small_openmp_dataset)
        config, arrays = baseline.to_payload()
        restored = DriftBaseline.from_payload(config, arrays)
        assert restored.task == baseline.task
        assert restored.token_ids == baseline.token_ids
        assert restored.counter_names == baseline.counter_names
        assert restored.threshold == baseline.threshold
        np.testing.assert_array_equal(restored.quantiles, baseline.quantiles)

    def test_devmap_baseline_builds(self, extractor):
        from repro.datasets import DevMapDatasetBuilder
        from repro.simulator.microarch import TAHITI_7970

        specs = kernel_registry.opencl_kernels()[:3]
        dataset = DevMapDatasetBuilder(TAHITI_7970, extractor=extractor,
                                       seed=0).build(specs,
                                                     points_per_kernel=2)
        baseline = baseline_from_devmap(dataset)
        assert baseline.task == "map"
        assert baseline.feature_dim == 32 + 2   # vector + log extras

    def test_merge_route_drift_accumulates(self):
        merged = merge_route_drift([
            {"count": 10, "flagged": 1, "score_sum": 0.5, "oob_sum": 0.5,
             "token_sum": 0.0, "band_tvd": 0.2, "threshold": 0.05},
            {"count": 30, "flagged": 5, "score_sum": 2.5, "oob_sum": 1.5,
             "token_sum": 1.0, "band_tvd": 0.4, "threshold": 0.05},
        ])
        assert merged["count"] == 40
        assert merged["flagged"] == 6
        assert merged["flagged_rate"] == pytest.approx(0.15)
        assert merged["mean_score"] == pytest.approx(0.075)
        assert merged["drifting"]


# ----------------------------------------------------------------------
class TestHotSwap:
    def test_zero_drain_swap_under_load_with_homogeneous_batches(
            self, tmp_path, tuner_pair, small_openmp_dataset):
        registry = _two_version_registry(tmp_path, tuner_pair,
                                         small_openmp_dataset)
        requests = REQUEST_GRID * 8              # 72 requests
        reference = {version: _engine_reference(registry, version,
                                                REQUEST_GRID)
                     for version in (1, 2)}
        path = _socket_path()
        with ServeDaemon(path, registry_root=str(tmp_path), workers=2,
                         max_batch=4, deadline_ms=5.0, max_queue=256,
                         watch_interval_s=0.0) as daemon:
            with DaemonClient(path) as admin:
                admin.swap("m", version=1)

                def one(item):
                    uid, scale = item
                    with DaemonClient(path) as client:
                        return _tune(client, kernel=uid, scale=scale)

                with ThreadPoolExecutor(max_workers=8) as pool:
                    futures = [pool.submit(one, item) for item in requests]
                    time.sleep(0.05)            # load in flight: now flip
                    swap = admin.swap("m", version=2)
                    responses = [future.result() for future in futures]
                assert swap["swapped"] and swap["version"] == 2

                # zero dropped, zero duplicated: every offered request got
                # exactly one well-formed response
                assert len(responses) == len(requests)
                versions = {response["version"] for response in responses}
                assert versions <= {1, 2}

                # no mixed-version micro-batch, ever
                by_batch = {}
                for response in responses:
                    key = (response["worker"], response["batch"])
                    by_batch.setdefault(key, set()).add(response["version"])
                assert all(len(seen) == 1 for seen in by_batch.values())

                # every response is byte-identical to its own version's
                # engine — no cross-version contamination
                for item, response in zip(requests, responses):
                    expected = reference[response["version"]][item]
                    assert response["config_label"] == expected[0]
                    assert response["num_threads"] == expected[1]
                    assert response["schedule"] == expected[2]
                    assert response["chunk_size"] == expected[3]
                    assert response["counters"] == expected[4]

                # post-swap traffic is on v2, identical to a cold engine
                post = _tune(admin, kernel="polybench/gemm", scale=1.0)
                assert post["version"] == 2
                assert post["config_label"] == \
                    reference[2][("polybench/gemm", 1.0)][0]
                stats = daemon.stats()
                assert stats["lifecycle"]["routes"]["m"]["active_version"] == 2
                assert stats["lifecycle"]["swaps"] >= 2

    def test_engine_cache_is_version_keyed_across_swap(
            self, tmp_path, tuner_pair, small_openmp_dataset):
        """Satellite: a cached v1 prediction must never answer v2 traffic."""
        registry = _two_version_registry(tmp_path, tuner_pair,
                                         small_openmp_dataset)
        reference = {version: _engine_reference(registry, version,
                                                REQUEST_GRID)
                     for version in (1, 2)}
        path = _socket_path()
        with ServeDaemon(path, registry_root=str(tmp_path), workers=1,
                         max_batch=4, deadline_ms=2.0,
                         watch_interval_s=0.0):
            with DaemonClient(path) as client:
                client.swap("m", version=1)
                # prime the v1 engine's feature/prediction caches
                before = {item: _tune(client, kernel=item[0], scale=item[1])
                          for item in REQUEST_GRID}
                client.swap("m", version=2)
                after = {item: _tune(client, kernel=item[0], scale=item[1])
                         for item in REQUEST_GRID}
        differing = 0
        for item in REQUEST_GRID:
            assert before[item]["version"] == 1
            assert after[item]["version"] == 2
            assert before[item]["config_label"] == reference[1][item][0]
            # the key assertion: the answer comes from the v2 engine even
            # though the identical request was just cached under v1
            assert after[item]["config_label"] == reference[2][item][0]
            assert after[item]["counters"] == reference[2][item][4]
            differing += int(reference[1][item][0] != reference[2][item][0])
        # the two versions genuinely disagree somewhere, so a stale cache
        # would have been caught (if this ever fails, reseed tuner_pair)
        assert differing > 0

    def test_registry_watch_swaps_unpinned_route(
            self, tmp_path, tuner_pair, small_openmp_dataset):
        registry = _two_version_registry(tmp_path, tuner_pair,
                                         small_openmp_dataset)
        path = _socket_path()
        with ServeDaemon(path, registry_root=str(tmp_path), workers=1,
                         max_batch=4, deadline_ms=2.0,
                         watch_interval_s=0.05):
            with DaemonClient(path) as client:
                assert _tune(client)["version"] == 2    # latest, unpinned
                registry.publish("m", tuner_pair[0],
                                 drift_baseline=baseline_from_openmp(
                                     small_openmp_dataset))
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if _tune(client)["version"] == 3:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("watch thread never swapped to v3")
                route = client.stats()["lifecycle"]["routes"]["m"]
                assert route["active_version"] == 3
                assert not route["pinned"]
                assert route["last_swap"]["reason"] == "registry-watch"

    def test_pinned_route_ignores_publishes_until_rollback(
            self, tmp_path, tuner_pair, small_openmp_dataset):
        registry = _two_version_registry(tmp_path, tuner_pair,
                                         small_openmp_dataset)
        path = _socket_path()
        with ServeDaemon(path, registry_root=str(tmp_path), workers=1,
                         max_batch=4, deadline_ms=2.0,
                         watch_interval_s=0.05):
            with DaemonClient(path) as client:
                client.swap("m", version=1)              # explicit = pinned
                registry.publish("m", tuner_pair[1])
                time.sleep(0.4)                          # several watch ticks
                assert _tune(client)["version"] == 1
                rolled = client.swap("m", version=2)
                assert rolled["version"] == 2
                back = client.rollback("m")
                assert back["version"] == 1
                assert back["previous_version"] == 2
                assert _tune(client)["version"] == 1

    def test_swap_to_unknown_version_is_rejected(
            self, tmp_path, tuner_pair, small_openmp_dataset):
        _two_version_registry(tmp_path, tuner_pair, small_openmp_dataset)
        path = _socket_path()
        with ServeDaemon(path, registry_root=str(tmp_path), workers=1,
                         watch_interval_s=0.0):
            with DaemonClient(path) as client:
                with pytest.raises(DaemonError) as excinfo:
                    client.swap("m", version=99)
                assert excinfo.value.code == "bad_request"
                assert _tune(client)["version"] == 2     # route unharmed


# ----------------------------------------------------------------------
class TestShadowDeploys:
    def _drive(self, path, count, kernel="polybench/gemm", scale=1.0):
        with DaemonClient(path) as client:
            return [_tune(client, kernel=kernel, scale=scale + 0.01 * i)
                    for i in range(count)]

    def test_shadow_tee_compares_off_the_critical_path(
            self, tmp_path, tuner_pair, small_openmp_dataset):
        _two_version_registry(tmp_path, tuner_pair, small_openmp_dataset)
        path = _socket_path()
        with ServeDaemon(path, registry_root=str(tmp_path), workers=2,
                         max_batch=4, deadline_ms=2.0,
                         watch_interval_s=0.0) as daemon:
            with DaemonClient(path) as admin:
                admin.swap("m", version=1)
                started = admin.shadow_start("m", 2, fraction=1.0,
                                             tolerance=0.25)
                assert started["candidate_version"] == 2
                responses = self._drive(path, 16)
                assert all(r["version"] == 1 for r in responses)

                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    status = admin.shadow_status("m")
                    if status["compared"] >= 16:
                        break
                    time.sleep(0.05)
                assert status["teed"] >= 16
                assert status["compared"] >= 16
                assert status["errors"] == 0
                assert (status["agree"] + status["near"]
                        + status["disagree"]) == status["compared"]
                assert 0.0 <= status["disagreement_rate"] <= 1.0
                for entry in status["recent_disagreements"]:
                    assert entry["primary"]["version"] == 1
                    assert entry["shadow"]["version"] == 2

                stats = daemon.stats()
                assert stats["shadow"]["contention"] == 0
                assert stats["shadow"]["batches"] >= 1
                assert "m" in stats["shadow"]["routes"]

                stopped = admin.shadow_stop("m")
                assert stopped["outcome"] == "stopped"
                final = admin.stats()["shadow"]
                assert final["routes"] == {}
                assert final["finished"]["m"]["compared"] >= 16

    def test_shadow_auto_promote_on_agreement(
            self, tmp_path, tuner_pair, small_openmp_dataset):
        registry = _two_version_registry(tmp_path, tuner_pair,
                                         small_openmp_dataset)
        # v3 repeats the active tuner: predictions agree, rate stays 0
        registry.publish("m", tuner_pair[1])
        path = _socket_path()
        with ServeDaemon(path, registry_root=str(tmp_path), workers=2,
                         max_batch=4, deadline_ms=2.0, watch_interval_s=0.0):
            with DaemonClient(path) as admin:
                admin.swap("m", version=2)
                admin.shadow_start("m", 3, fraction=1.0, tolerance=0.0,
                                   min_compared=5, promote_below=0.01)
                self._drive(path, 12)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    route = admin.stats()["lifecycle"]["routes"]["m"]
                    if route["active_version"] == 3:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("shadow never auto-promoted")
                assert route["last_swap"]["reason"] == "auto-promote"
                assert _tune(admin)["version"] == 3

    def test_shadow_auto_abort_on_disagreement(
            self, tmp_path, tuner_pair, small_openmp_dataset):
        registry = _two_version_registry(tmp_path, tuner_pair,
                                         small_openmp_dataset)
        reference = {version: _engine_reference(registry, version,
                                                REQUEST_GRID)
                     for version in (1, 2)}
        disagreeing = [item for item in REQUEST_GRID
                       if reference[1][item][0] != reference[2][item][0]]
        if not disagreeing:
            pytest.skip("tuner pair agrees on the whole request grid")
        kernel, scale = disagreeing[0]
        path = _socket_path()
        with ServeDaemon(path, registry_root=str(tmp_path), workers=2,
                         max_batch=4, deadline_ms=2.0, watch_interval_s=0.0):
            with DaemonClient(path) as admin:
                admin.swap("m", version=1)
                admin.shadow_start("m", 2, fraction=1.0, tolerance=0.0,
                                   min_compared=4, abort_above=0.5)
                with DaemonClient(path) as client:
                    for _ in range(12):
                        _tune(client, kernel=kernel, scale=scale)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    stats = admin.stats()
                    if not stats["shadow"]["routes"]:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("shadow never auto-aborted")
                route = stats["lifecycle"]["routes"]["m"]
                assert route["active_version"] == 1      # abort kept v1


# ----------------------------------------------------------------------
class TestStatsSchema:
    """Satellite: the full online-operations stats payload shape."""

    def test_daemon_stats_schema(self, tmp_path, tuner_pair,
                                 small_openmp_dataset):
        _two_version_registry(tmp_path, tuner_pair, small_openmp_dataset)
        path = _socket_path()
        with ServeDaemon(path, registry_root=str(tmp_path), workers=1,
                         max_batch=4, deadline_ms=2.0, watch_interval_s=0.1):
            with DaemonClient(path) as client:
                client.swap("m", version=1)
                client.shadow_start("m", 2, fraction=1.0)
                for i in range(4):
                    # distinct scales: memoized repeats are not re-scored
                    _tune(client, scale=1.0 + 0.1 * i)
                time.sleep(0.5)
                stats = client.stats()

        lifecycle = stats["lifecycle"]
        assert lifecycle["enabled"] is True
        assert lifecycle["watch_interval_s"] == pytest.approx(0.1)
        assert isinstance(lifecycle["generation"], int)
        assert isinstance(lifecycle["checks"], int)
        assert isinstance(lifecycle["swaps"], int)
        assert isinstance(lifecycle["warm_failures"], int)
        route = lifecycle["routes"]["m"]
        for key in ("active_version", "previous_version", "pinned", "swaps",
                    "last_swap"):
            assert key in route
        assert set(route["last_swap"]) == {"from", "to", "reason", "at_unix"}

        shadow = stats["shadow"]
        assert set(shadow) == {"routes", "finished", "queue_depth",
                               "batches", "contention"}
        state = shadow["routes"]["m"]
        for key in ("candidate_version", "fraction", "tolerance", "policy",
                    "outcome", "teed", "dropped", "compared", "agree",
                    "near", "disagree", "errors", "disagreement_rate",
                    "recent_disagreements"):
            assert key in state
        assert set(state["policy"]) == {"min_compared", "promote_below",
                                        "abort_above"}

        drift = stats["drift"]["routes"]
        assert "m@1" in drift
        summary = drift["m@1"]
        for key in ("count", "flagged", "flagged_rate", "mean_score",
                    "mean_oob", "mean_unseen_tokens", "band_tvd",
                    "threshold", "drifting"):
            assert key in summary
        assert summary["count"] >= 4
        assert summary["mean_score"] == 0.0      # in-distribution traffic
        assert summary["drifting"] is False

    def test_registryless_daemon_reports_lifecycle_disabled(self):
        path = _socket_path()
        with ServeDaemon(path, workers=1, debug_ops=True):
            with DaemonClient(path) as client:
                stats = client.stats()
                assert stats["lifecycle"] is None
                assert stats["shadow"]["routes"] == {}
                assert stats["drift"]["routes"] == {}
                with pytest.raises(DaemonError) as excinfo:
                    client.swap("m", version=1)
                assert excinfo.value.code == "no_registry"


# ----------------------------------------------------------------------
class TestRouterLifecycle:
    def test_admin_ops_fan_out_to_every_replica_of_the_group(
            self, tmp_path, tuner_pair, small_openmp_dataset):
        _two_version_registry(tmp_path, tuner_pair, small_openmp_dataset)
        paths = [_socket_path(), _socket_path()]
        with ServeDaemon(paths[0], registry_root=str(tmp_path), workers=1,
                         max_batch=4, deadline_ms=2.0, watch_interval_s=0.0):
            with ServeDaemon(paths[1], registry_root=str(tmp_path),
                             workers=1, max_batch=4, deadline_ms=2.0,
                             watch_interval_s=0.0):
                router_path = _socket_path()
                with ServeRouter(router_path,
                                 [f"g={paths[0]}", f"g={paths[1]}"],
                                 probe_interval=0.1) as router:
                    with DaemonClient(router_path) as client:
                        result = client.swap("m", version=1)
                        assert result["succeeded"] == 2
                        assert result["attempted"] == 2
                        assert set(result["replicas"]) == set(paths)
                        for entry in result["replicas"].values():
                            assert entry["ok"]
                            assert entry["result"]["version"] == 1
                        # both replicas now actually serve v1
                        for path in paths:
                            with DaemonClient(path) as direct:
                                assert _tune(direct)["version"] == 1
                                route = direct.stats()["lifecycle"][
                                    "routes"]["m"]
                                assert route["active_version"] == 1
                        # drift flows through probes into router stats
                        with DaemonClient(router_path) as via:
                            for _ in range(4):
                                _tune(via)
                        deadline = time.monotonic() + 10.0
                        while time.monotonic() < deadline:
                            drift = router.stats()["drift"]["routes"]
                            if "m@1" in drift:
                                break
                            time.sleep(0.1)
                        else:
                            pytest.fail("router never surfaced drift stats")
                        assert drift["m@1"]["count"] >= 1
                        assert drift["m@1"]["drifting"] is False
