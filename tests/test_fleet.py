"""Fleet campaigns: coordinator/worker leasing over the serve transport.

The load-bearing property carries over from ``test_campaign.py``: a fleet
campaign's history must be byte-identical to ``workers=1`` no matter how
many workers lease configs, when they join or leave, whether leases expire
and are reissued, or whether the coordinator is stopped and resumed.  This
file covers the fault-free mechanics (plus the client retry satellite);
``test_fleet_chaos.py`` qualifies the same invariant under injected faults.
"""

import os
import tempfile
import threading
import time
import uuid

import numpy as np
import pytest

from repro.serve.client import DaemonClient, DaemonError
from repro.serve.faults import FaultInjector, FaultPlan
from repro.serve.protocol import (
    LineChannel,
    ProtocolError,
    create_listener,
    error_response,
    objective_from_wire,
    objective_to_wire,
    ok_response,
    validate_request,
)
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners import (
    CampaignCoordinator,
    CampaignWorker,
    SimObjectiveSpec,
    TuningCampaign,
    full_search_space,
    make_tuner,
)
from repro.tuners.campaign import LookupObjectiveSpec


def _socket_path():
    return os.path.join(tempfile.gettempdir(),
                        f"repro-fleet-{uuid.uuid4().hex[:10]}.sock")


def _spec(**overrides):
    defaults = dict(kernel_uid="polybench/atax", arch=COMET_LAKE_8C,
                    scale=0.2, noise=0.015, seed=42)
    defaults.update(overrides)
    return SimObjectiveSpec(**defaults)


def _await(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture(scope="module")
def space():
    """A 36-configuration Table-2-style space (4 threads x 3 x 3)."""
    return full_search_space(threads=(1, 2, 4, 8), chunks=(1, 32, 256))


@pytest.fixture(scope="module")
def serial_history(space):
    """The workers=1 reference history every fleet run must reproduce."""
    campaign = TuningCampaign(make_tuner("random", budget=24, seed=0),
                              space, _spec(), batch_size=8)
    return campaign.run().history


def _fresh_campaign(space, **kwargs):
    kwargs.setdefault("batch_size", 8)
    return TuningCampaign(make_tuner("random", budget=24, seed=0),
                          space, _spec(), **kwargs)


def _worker_thread(address, **kwargs):
    worker = CampaignWorker(address, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return thread


def _runner_thread(coordinator):
    """coordinator.run in a thread; a stop before any eval is not an error."""

    def target():
        try:
            coordinator.run()
        except RuntimeError:
            pass

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread


# ----------------------------------------------------------------------
# wire forms + fault plans
# ----------------------------------------------------------------------
class TestWire:
    def test_sim_objective_round_trip(self):
        spec = _spec(repeats=2, walltime_scale=3.0)
        restored = objective_from_wire(objective_to_wire(spec))
        assert restored == spec

    def test_lookup_objective_round_trip(self):
        spec = LookupObjectiveSpec(
            times=np.array([[1.0, 2.0], [3.0, 4.0]]), floor=1e-12)
        restored = objective_from_wire(objective_to_wire(spec))
        assert np.array_equal(restored.times, spec.times)
        assert restored.floor == spec.floor

    def test_validate_fleet_ops(self):
        assert validate_request({"op": "lease", "worker": "w0",
                                 "id": 1}) == (1, "lease")
        assert validate_request({"op": "heartbeat", "worker": "w0",
                                 "lease": "l0"})[1] == "heartbeat"
        assert validate_request({"op": "submit", "worker": "w0",
                                 "lease": "l0", "campaign": "c0",
                                 "eval": 3, "attempt": 0,
                                 "value": 0.5})[1] == "submit"
        with pytest.raises(ProtocolError):
            validate_request({"op": "lease"})           # no worker
        with pytest.raises(ProtocolError):
            validate_request({"op": "heartbeat", "worker": "w0"})
        with pytest.raises(ProtocolError):
            validate_request({"op": "submit", "worker": "w0", "lease": "l0",
                              "campaign": "c0", "eval": 3, "attempt": 0})

    def test_fault_plan_parse_round_trip(self):
        plan = FaultPlan(drop=0.1, dup=0.05, delay_ms=15.0, kill_after=9,
                         stall_after=2, stall_for=1.5, seed=3)
        assert FaultPlan.parse(plan.to_spec()) == plan
        assert FaultPlan.parse("drop=0.2", seed=7) == FaultPlan(drop=0.2,
                                                                seed=7)
        with pytest.raises(ValueError):
            FaultPlan.parse("bogus=1")
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)

    def test_fault_plan_from_env(self):
        environ = {"REPRO_FAULTS": "drop=0.1,kill_after=4",
                   "REPRO_FAULT_SEED": "99"}
        plan = FaultPlan.from_env(environ)
        assert plan == FaultPlan(drop=0.1, kill_after=4, seed=99)
        assert FaultPlan.from_env({}) is None
        assert FaultPlan().benign and not plan.benign

    def test_injector_is_seed_deterministic(self):
        def schedule(seed_offset):
            injector = FaultInjector(FaultPlan(drop=0.3, dup=0.3, seed=5),
                                     seed_offset)
            return [len(injector.frames(b"x\n")) for _ in range(64)]

        assert schedule(0) == schedule(0)
        assert schedule(0) != schedule(1)       # siblings decorrelated
        counts = schedule(0)
        assert 0 in counts and 2 in counts      # drops and dups both occur

    def test_injector_heartbeat_stall_window(self):
        injector = FaultInjector(FaultPlan(stall_after=2, stall_for=0.15))
        assert injector.heartbeat_allowed()
        assert injector.heartbeat_allowed()
        assert not injector.heartbeat_allowed()     # stall begins
        assert _await(injector.heartbeat_allowed, timeout=2.0)
        assert FaultInjector(FaultPlan()).heartbeat_allowed()


# ----------------------------------------------------------------------
# coordinator/worker mechanics
# ----------------------------------------------------------------------
class TestFleetCampaign:
    def test_zero_workers_degrades_to_local(self, space, serial_history):
        campaign = _fresh_campaign(space)
        with CampaignCoordinator(campaign, _socket_path(),
                                 local_fallback_s=0.05) as coordinator:
            result = coordinator.run()
        assert result.history == serial_history
        stats = coordinator.stats()
        assert stats["local_evaluations"] == len(serial_history)
        assert stats["progress"]["done"]

    def test_workers_history_identical_to_serial(self, space, serial_history):
        campaign = _fresh_campaign(space)
        with CampaignCoordinator(campaign, _socket_path(),
                                 local_fallback_s=None) as coordinator:
            threads = [_worker_thread(coordinator.address,
                                      worker_id=f"w{i}", max_configs=3)
                       for i in range(2)]
            result = coordinator.run()
            for thread in threads:
                thread.join(timeout=10)
        assert result.history == serial_history
        stats = coordinator.stats()
        assert stats["local_evaluations"] == 0
        assert stats["submissions"]["accepted"] == len(serial_history)
        assert stats["workers"]["seen"] == 2

    def test_elastic_join_and_leave_mid_campaign(self, space, serial_history):
        """Workers arriving after the run starts and leaving before it ends
        must not change the history."""
        campaign = _fresh_campaign(space)
        with CampaignCoordinator(campaign, _socket_path(),
                                 local_fallback_s=None) as coordinator:
            done = {}
            runner = threading.Thread(
                target=lambda: done.setdefault("r", coordinator.run()))
            runner.start()
            # nobody is connected yet: the run must be blocked on leases
            time.sleep(0.2)
            assert runner.is_alive()
            # one short-lived worker takes a single lease and leaves...
            early = CampaignWorker(coordinator.address, worker_id="early",
                                   max_configs=2)
            early.run(max_leases=1)
            assert runner.is_alive()
            # ...then two late joiners finish the campaign
            threads = [_worker_thread(coordinator.address,
                                      worker_id=f"late{i}", max_configs=3)
                       for i in range(2)]
            runner.join(timeout=30)
            assert not runner.is_alive()
            for thread in threads:
                thread.join(timeout=10)
        assert done["r"].history == serial_history
        assert coordinator.stats()["workers"]["seen"] == 3

    def test_lease_expiry_reissues_configs(self, space, serial_history):
        campaign = _fresh_campaign(space)
        with CampaignCoordinator(campaign, _socket_path(),
                                 local_fallback_s=None,
                                 lease_timeout=0.2) as coordinator:
            done = {}
            runner = threading.Thread(
                target=lambda: done.setdefault("r", coordinator.run()))
            runner.start()
            # a "worker" that leases two configs, never heartbeats, never
            # submits — its lease must expire and the configs reissue
            with DaemonClient(coordinator.address) as client:
                assert _await(lambda: not client.request(
                    {"op": "lease", "worker": "ghost",
                     "max_configs": 2}).get("empty"), timeout=5.0)
            thread = _worker_thread(coordinator.address, worker_id="real",
                                    max_configs=3)
            runner.join(timeout=30)
            assert not runner.is_alive()
            thread.join(timeout=10)
        assert done["r"].history == serial_history
        stats = coordinator.stats()
        assert stats["leases"]["expired"] >= 1
        assert stats["leases"]["reissued_configs"] >= 1

    def test_submissions_are_idempotent(self, space):
        campaign = _fresh_campaign(space)
        with CampaignCoordinator(campaign, _socket_path(),
                                 local_fallback_s=None,
                                 lease_timeout=30.0) as coordinator:
            runner = _runner_thread(coordinator)
            with DaemonClient(coordinator.address) as client:
                grant = None

                def leased():
                    nonlocal grant
                    grant = client.request({"op": "lease", "worker": "w0",
                                            "max_configs": 1})
                    return not grant.get("empty")

                assert _await(leased, timeout=5.0)
                item = grant["configs"][0]
                submit = {"op": "submit", "worker": "w0",
                          "campaign": grant["campaign"],
                          "lease": grant["lease"], "eval": item["eval"],
                          "attempt": item["attempt"], "value": 1.25}
                first = client.request(submit)
                assert first == {"accepted": True, "state": "recorded"}
                # byte-for-byte duplicate: acknowledged, not re-recorded
                assert client.request(submit)["state"] == "duplicate"
                # wrong attempt on a fresh slot: stale
                grant2 = client.request({"op": "lease", "worker": "w0",
                                         "max_configs": 1})
                item2 = grant2["configs"][0]
                stale = dict(submit, lease=grant2["lease"],
                             eval=item2["eval"],
                             attempt=item2["attempt"] + 5)
                assert client.request(stale)["state"] == "stale"
                # a submission from a previous coordinator incarnation
                foreign = dict(submit, campaign="c-previous-life")
                assert client.request(foreign)["state"] == "foreign"
                stats = coordinator.stats()
                assert stats["submissions"]["accepted"] == 1
                assert stats["submissions"]["duplicate"] == 1
                assert stats["submissions"]["stale"] == 1
                assert stats["submissions"]["foreign"] == 1
            coordinator.shutdown()
            runner.join(timeout=10)

    def test_heartbeat_keeps_lease_alive(self, space):
        campaign = _fresh_campaign(space)
        with CampaignCoordinator(campaign, _socket_path(),
                                 local_fallback_s=None,
                                 lease_timeout=0.3) as coordinator:
            runner = _runner_thread(coordinator)
            with DaemonClient(coordinator.address) as client:
                grant = None

                def leased():
                    nonlocal grant
                    grant = client.request({"op": "lease", "worker": "w0",
                                            "max_configs": 1})
                    return not grant.get("empty")

                assert _await(leased, timeout=5.0)
                beat = {"op": "heartbeat", "worker": "w0",
                        "lease": grant["lease"]}
                for _ in range(6):                 # 0.6 s > lease_timeout
                    time.sleep(0.1)
                    assert client.request(beat)["valid"]
                # stop beating past the window: the lease must expire
                # (polling with heartbeats would itself renew the lease)
                time.sleep(1.0)
                assert not client.request(beat)["valid"]
            coordinator.shutdown()
            runner.join(timeout=10)

    def test_stop_and_resume_reproduces_serial(self, space, serial_history,
                                               tmp_path):
        ck = str(tmp_path / "fleet-ck")
        campaign = _fresh_campaign(space, checkpoint_path=ck)
        with CampaignCoordinator(campaign, _socket_path(),
                                 local_fallback_s=0.05) as coordinator:
            partial = coordinator.run(max_evals=8)
        assert 0 < partial.evaluations < len(serial_history)
        resumed = CampaignCoordinator.resume(ck, _socket_path(),
                                             local_fallback_s=0.05)
        # a new incarnation gets a new campaign id (stale submits are void)
        assert resumed.campaign_id != coordinator.campaign_id
        with resumed:
            result = resumed.run()
        assert result.history == serial_history
        # checkpoint hygiene: no swap leftovers after resume
        assert not os.path.exists(TuningCampaign._previous_path(ck))
        assert not os.path.exists(TuningCampaign._staging_path(ck))

    def test_midbatch_stop_discards_inflight_batch(self, space,
                                                   serial_history, tmp_path):
        """Stopping while a batch is outstanding must roll back to the last
        batch boundary (proposal RNG included) so resume stays exact."""
        ck = str(tmp_path / "fleet-ck")
        campaign = _fresh_campaign(space, checkpoint_path=ck)
        with CampaignCoordinator(campaign, _socket_path(),
                                 local_fallback_s=0.05) as coordinator:
            coordinator.run(max_evals=8)       # two clean batches
        campaign2 = TuningCampaign.resume(ck)
        with CampaignCoordinator(campaign2, _socket_path(),
                                 local_fallback_s=None) as coordinator2:
            done = {}
            runner = threading.Thread(
                target=lambda: done.setdefault("r", coordinator2.run()))
            runner.start()
            # wait until batch 3's slots are posted (leases would be
            # grantable), then stop with the batch still in flight
            assert _await(lambda: coordinator2.stats()["batch"]["pending"]
                          > 0, timeout=10.0)
            coordinator2.shutdown()
            runner.join(timeout=10)
            assert not runner.is_alive()
        assert done["r"].evaluations == 8      # in-flight batch discarded
        final = TuningCampaign.resume(ck)
        assert final.run().history == serial_history


# ----------------------------------------------------------------------
# DaemonClient bounded retry (satellite)
# ----------------------------------------------------------------------
def _fake_server(listener, script):
    """Serve one connection; per request, run script[i] -> response dict."""
    seen = []

    def serve():
        conn, _ = listener.accept()
        channel = LineChannel(conn)
        while True:
            try:
                request = channel.recv(timeout=10.0)
            except (ProtocolError, OSError):
                break
            if request is None:
                break
            seen.append(request)
            index = min(len(seen) - 1, len(script) - 1)
            response = script[index](request)
            if response is None:
                break                      # hang up mid-request
            channel.send(response)
        channel.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return seen, thread


class TestClientRetry:
    def test_default_is_single_attempt(self):
        missing = _socket_path()
        with pytest.raises(OSError):
            DaemonClient(missing).request({"op": "ping"})

    def test_connect_retry_waits_for_listener(self):
        path = _socket_path()

        def bind_late():
            time.sleep(0.4)
            listener, _ = create_listener(path)
            _fake_server(listener, [
                lambda req: ok_response(req["id"], {"pong": True})])

        threading.Thread(target=bind_late, daemon=True).start()
        client = DaemonClient(path, retries=12, backoff_base=0.05)
        assert client.ping(timeout=5.0)
        client.close()

    def test_overloaded_shed_is_retried(self):
        path = _socket_path()
        listener, _ = create_listener(path)
        seen, _ = _fake_server(listener, [
            lambda req: error_response(req["id"], "overloaded", "shed"),
            lambda req: ok_response(req["id"], {"pong": True}),
        ])
        client = DaemonClient(path, retries=3, backoff_base=0.01)
        assert client.ping(timeout=5.0)
        assert len(seen) == 2
        client.close()

    def test_overloaded_without_retries_raises(self):
        path = _socket_path()
        listener, _ = create_listener(path)
        _fake_server(listener, [
            lambda req: error_response(req["id"], "overloaded", "shed")])
        client = DaemonClient(path)
        with pytest.raises(DaemonError) as excinfo:
            client.ping(timeout=5.0)
        assert excinfo.value.overloaded
        client.close()

    def test_midrequest_break_is_never_retried(self):
        path = _socket_path()
        listener, _ = create_listener(path)
        seen, _ = _fake_server(listener, [lambda req: None])  # read, hang up
        client = DaemonClient(path, retries=5, backoff_base=0.01)
        with pytest.raises((ConnectionError, OSError)):
            client.request({"op": "ping"}, timeout=5.0)
        assert len(seen) == 1       # the request was not resent
        client.close()

    def test_non_overloaded_errors_are_not_retried(self):
        path = _socket_path()
        listener, _ = create_listener(path)
        seen, _ = _fake_server(listener, [
            lambda req: error_response(req["id"], "bad_request", "nope")])
        client = DaemonClient(path, retries=5, backoff_base=0.01)
        with pytest.raises(DaemonError):
            client.request({"op": "ping"}, timeout=5.0)
        assert len(seen) == 1
        client.close()
