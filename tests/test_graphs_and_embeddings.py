"""ProGraML-style graph construction and IR2Vec-style embedding tests."""

import numpy as np
import pytest

from repro.embeddings import (
    IR2VecEncoder,
    SeedEmbeddingVocabulary,
    encode_modules,
    harvest_triplets,
)
from repro.embeddings.triplets import entities_and_relations
from repro.frontend import lower_to_ir
from repro.graphs import (
    EdgeFlow,
    GraphVocabulary,
    NodeType,
    batch_graphs,
    build_programl_graph,
    to_hetero_graph,
)
from repro.kernels import registry


@pytest.fixture(scope="module")
def gemm_module():
    return lower_to_ir(registry.get_kernel("polybench/gemm"))


@pytest.fixture(scope="module")
def gemm_graph(gemm_module):
    return build_programl_graph(gemm_module)


class TestProGraMLGraph:
    def test_node_counts(self, gemm_module, gemm_graph):
        num_insts = gemm_module.num_instructions()
        inst_nodes = gemm_graph.nodes_of_type(NodeType.INSTRUCTION)
        assert len(inst_nodes) == num_insts
        assert len(gemm_graph.nodes_of_type(NodeType.VARIABLE)) > 0
        assert len(gemm_graph.nodes_of_type(NodeType.CONSTANT)) > 0

    def test_all_three_flows_present(self, gemm_graph):
        for flow in EdgeFlow:
            assert len(gemm_graph.edges_of_flow(flow)) > 0

    def test_call_edges_link_fork_to_outlined(self, gemm_graph):
        call_edges = gemm_graph.edges_of_flow(EdgeFlow.CALL)
        srcs = {gemm_graph.nodes[e.src].text for e in call_edges}
        assert "omp.fork" in srcs or "ret" in srcs

    def test_edges_reference_valid_nodes(self, gemm_graph):
        n = gemm_graph.num_nodes
        for e in gemm_graph.edges:
            assert 0 <= e.src < n and 0 <= e.dst < n

    def test_to_networkx(self, gemm_graph):
        pytest.importorskip("networkx")
        g = gemm_graph.to_networkx()
        assert g.number_of_nodes() == gemm_graph.num_nodes
        assert g.number_of_edges() == gemm_graph.num_edges

    def test_invalid_edge_rejected(self, gemm_graph):
        with pytest.raises(IndexError):
            gemm_graph.add_edge(0, 10 ** 9, EdgeFlow.DATA)


class TestHeteroGraph:
    def test_tensorisation(self, gemm_graph):
        vocab = GraphVocabulary()
        data = to_hetero_graph(gemm_graph, vocab)
        assert data.node_features.shape == (gemm_graph.num_nodes,
                                            vocab.feature_dim)
        assert data.num_edges() == gemm_graph.num_edges
        # one-hot features: exactly 2 ones per node (token + node type)
        assert np.allclose(data.node_features.sum(axis=1), 2.0)

    def test_batching_offsets(self):
        vocab = GraphVocabulary()
        specs = [registry.get_kernel("polybench/gemm"),
                 registry.get_kernel("stream/triad")]
        graphs = [to_hetero_graph(build_programl_graph(lower_to_ir(s)), vocab)
                  for s in specs]
        batch = batch_graphs(graphs)
        assert batch.num_graphs == 2
        assert batch.num_nodes == sum(g.num_nodes for g in graphs)
        assert batch.graph_index.max() == 1
        for rel, edges in batch.edge_index.items():
            if edges.size:
                assert edges.max() < batch.num_nodes

    def test_batching_empty_raises(self):
        with pytest.raises(ValueError):
            batch_graphs([])


class TestVocabulary:
    def test_unknown_token_maps_to_unk(self):
        vocab = GraphVocabulary()
        assert vocab.token_id("never-seen-token") == vocab.token_id(vocab.UNK)

    def test_distinct_opcode_ids(self):
        vocab = GraphVocabulary()
        assert vocab.token_id("fadd") != vocab.token_id("load")


class TestTriplets:
    def test_harvest_covers_relations(self, gemm_module):
        triplets = harvest_triplets([gemm_module])
        entities, relations = entities_and_relations(triplets)
        assert set(relations) == {"type_of", "next_inst", "arg"}
        assert "fmul" in entities and "double" in entities
        assert len(triplets) > gemm_module.num_instructions()


class TestSeedEmbeddings:
    def test_deterministic_initialisation(self):
        a = SeedEmbeddingVocabulary(dim=16)
        b = SeedEmbeddingVocabulary(dim=16)
        np.testing.assert_allclose(a.vector("fadd"), b.vector("fadd"))
        assert not np.allclose(a.vector("fadd"), a.vector("load"))

    def test_transe_training_reduces_loss(self, gemm_module):
        triplets = harvest_triplets([gemm_module])
        vocab = SeedEmbeddingVocabulary(dim=16)
        losses = vocab.train(triplets, epochs=6, seed=0)
        assert len(losses) == 6
        assert losses[-1] < losses[0]

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            SeedEmbeddingVocabulary(dim=1)


class TestIR2VecEncoder:
    def test_program_vectors_distinguish_kernels(self):
        encoder = IR2VecEncoder(SeedEmbeddingVocabulary(dim=32))
        mods = [lower_to_ir(registry.get_kernel(uid))
                for uid in ("polybench/gemm", "rodinia/bfs", "stream/triad")]
        vecs = encode_modules(mods, encoder)
        assert vecs.shape == (3, 32)
        # pairwise distinct
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.linalg.norm(vecs[i] - vecs[j]) > 1e-3

    def test_flow_aware_differs_from_symbolic(self, gemm_module):
        vocab = SeedEmbeddingVocabulary(dim=16)
        flow = IR2VecEncoder(vocab, flow_aware=True).encode_module(gemm_module)
        sym = IR2VecEncoder(vocab, flow_aware=False).encode_module(gemm_module)
        assert not np.allclose(flow, sym)

    def test_encoding_finite(self, gemm_module):
        vec = IR2VecEncoder(SeedEmbeddingVocabulary(dim=24)).encode_module(gemm_module)
        assert np.all(np.isfinite(vec))
