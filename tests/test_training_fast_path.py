"""Vectorised training fast path: equivalence, dtype and caching tests.

The contract under test: the fast path (float32, sorted-segment kernels,
fused GRU, cached batches, precomputed frozen modalities) is a *performance*
change only — float64 mode with the seed training schedule reproduces the
seed implementation's logits (golden file, atol 1e-8), and every vectorised
kernel matches its naive ``np.add.at`` reference.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.mga import MGAModel
from repro.gnn.conv import (
    FusedGRUCell,
    GATConv,
    GCNConv,
    GGNNConv,
    GRUCell,
    SAGEConv,
)
from repro.graphs.hetero import EdgeLayout, GraphBatchCache
from repro.nn import Tensor, use_fast_segment_ops

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_mga_float64.npz"


def _random_edges(rng: np.random.Generator, num_nodes: int,
                  num_edges: int) -> np.ndarray:
    return np.stack([rng.integers(0, num_nodes, num_edges),
                     rng.integers(0, num_nodes, num_edges)]).astype(np.int64)


class TestConvOldVsNew:
    """The sorted-segment (reduceat) path matches the np.add.at reference."""

    @pytest.mark.parametrize("conv_cls", [GGNNConv, GATConv, GCNConv, SAGEConv])
    def test_forward_and_backward_match(self, conv_cls):
        rng = np.random.default_rng(42)
        num_nodes, num_edges, dim = 30, 140, 6
        edges = _random_edges(rng, num_nodes, num_edges)
        conv = conv_cls(dim, dim, rng=np.random.default_rng(7))
        x_data = rng.standard_normal((num_nodes, dim))

        with use_fast_segment_ops(False):
            x_naive = Tensor(x_data.copy(), requires_grad=True)
            out_naive = conv(x_naive, edges)
            out_naive.sum().backward()
            grads_naive = [p.grad.copy() for p in conv.parameters()]
        conv.zero_grad()
        with use_fast_segment_ops(True):
            x_fast = Tensor(x_data.copy(), requires_grad=True)
            out_fast = conv(x_fast, EdgeLayout(edges, num_nodes))
            out_fast.sum().backward()

        np.testing.assert_allclose(out_fast.data, out_naive.data, atol=1e-10)
        np.testing.assert_allclose(x_fast.grad, x_naive.grad, atol=1e-10)
        for p, g_naive in zip(conv.parameters(), grads_naive):
            np.testing.assert_allclose(p.grad, g_naive, atol=1e-10)

    def test_empty_relation_falls_through(self):
        conv = GGNNConv(4, 4, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((5, 4)))
        out = conv(x, np.zeros((2, 0), dtype=np.int64))
        assert out.shape == (5, 4)


class TestFusedGRU:
    def test_matches_reference_cell(self):
        ref = GRUCell(5, 7, rng=np.random.default_rng(5))
        fused = FusedGRUCell(5, 7, rng=np.random.default_rng(5))
        rng = np.random.default_rng(1)
        x_data = rng.standard_normal((9, 5))
        h_data = rng.standard_normal((9, 7))
        x1, h1 = Tensor(x_data, requires_grad=True), Tensor(h_data, requires_grad=True)
        x2 = Tensor(x_data.copy(), requires_grad=True)
        h2 = Tensor(h_data.copy(), requires_grad=True)
        out_ref, out_fused = ref(x1, h1), fused(x2, h2)
        np.testing.assert_allclose(out_fused.data, out_ref.data, atol=1e-12)
        out_ref.sum().backward()
        out_fused.sum().backward()
        np.testing.assert_allclose(x2.grad, x1.grad, atol=1e-12)
        np.testing.assert_allclose(h2.grad, h1.grad, atol=1e-12)
        in_dim = 5
        w_x_ref = np.concatenate([ref.w_z.weight.grad[:in_dim],
                                  ref.w_r.weight.grad[:in_dim],
                                  ref.w_h.weight.grad[:in_dim]], axis=1)
        np.testing.assert_allclose(fused.w_x.grad, w_x_ref, atol=1e-12)
        bias_ref = np.concatenate([ref.w_z.bias.grad, ref.w_r.bias.grad,
                                   ref.w_h.bias.grad])
        np.testing.assert_allclose(fused.bias.grad, bias_ref, atol=1e-12)

    def test_reference_cell_converts_to_fused(self):
        ref = GRUCell(3, 4, rng=np.random.default_rng(2))
        fused = ref.fused()
        rng = np.random.default_rng(3)
        x, h = Tensor(rng.standard_normal((6, 3))), Tensor(rng.standard_normal((6, 4)))
        np.testing.assert_allclose(fused(x, h).data, ref(x, h).data, atol=1e-12)


class TestSeedEquivalence:
    """float64 mode + seed schedule reproduces the seed implementation."""

    @pytest.mark.parametrize("fast_ops", [False, True])
    def test_golden_logits(self, small_openmp_dataset, fast_ops):
        ds = small_openmp_dataset
        graphs = [s.graph for s in ds.samples]
        vectors = np.stack([s.vector for s in ds.samples])
        extra = ds.counter_matrix()
        labels = ds.labels()
        golden = np.load(GOLDEN_PATH)
        assert int(golden["num_samples"]) == len(labels), \
            "golden fixture no longer matches the dataset fixture"
        model = MGAModel(graphs[0].feature_dim, vectors.shape[1],
                         extra.shape[1], ds.num_configs, gnn_hidden=12,
                         gnn_out=12, dae_hidden=24, dae_code=8, mlp_hidden=16,
                         seed=0, dtype="float64")
        with use_fast_segment_ops(fast_ops):
            history = model.fit(graphs, vectors, extra, labels, epochs=6,
                                dae_epochs=4, cache_batches=False,
                                precompute_frozen=False)
            logits = model.predict_logits(graphs, vectors, extra)
        np.testing.assert_allclose(np.array(history["loss"]), golden["loss"],
                                   atol=1e-8)
        np.testing.assert_allclose(logits, golden["logits"], atol=1e-8)


class TestDtype:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_round_trip_through_save_load(self, small_openmp_dataset, dtype):
        ds = small_openmp_dataset
        graphs = [s.graph for s in ds.samples]
        vectors = np.stack([s.vector for s in ds.samples])
        extra = ds.counter_matrix()
        model = MGAModel(graphs[0].feature_dim, vectors.shape[1],
                         extra.shape[1], ds.num_configs, gnn_hidden=12,
                         gnn_out=12, dae_hidden=24, dae_code=8, mlp_hidden=16,
                         seed=0, dtype=dtype)
        assert all(p.data.dtype == np.dtype(dtype) for p in model.parameters())
        model.fit(graphs, vectors, extra, ds.labels(), epochs=2, dae_epochs=2)

        clone = MGAModel.from_config(model.get_config())
        assert clone.dtype == np.dtype(dtype)
        clone.load_state_dict(model.state_dict())
        assert all(p.data.dtype == np.dtype(dtype) for p in clone.parameters())
        np.testing.assert_array_equal(
            model.predict_proba(graphs[:5], vectors[:5], extra[:5]),
            clone.predict_proba(graphs[:5], vectors[:5], extra[:5]))

    def test_float32_training_predicts_normalised_probabilities(
            self, small_openmp_dataset):
        ds = small_openmp_dataset
        graphs = [s.graph for s in ds.samples]
        vectors = np.stack([s.vector for s in ds.samples])
        extra = ds.counter_matrix()
        model = MGAModel(graphs[0].feature_dim, vectors.shape[1],
                         extra.shape[1], ds.num_configs, gnn_hidden=12,
                         gnn_out=12, dae_hidden=24, dae_code=8, mlp_hidden=16,
                         seed=0, dtype="float32")
        model.fit(graphs, vectors, extra, ds.labels(), epochs=2, dae_epochs=2)
        proba = model.predict_proba(graphs, vectors, extra)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


class TestEarlyStopping:
    def test_patience_stops_plateaued_training(self, small_openmp_dataset):
        ds = small_openmp_dataset
        graphs = [s.graph for s in ds.samples]
        vectors = np.stack([s.vector for s in ds.samples])
        extra = ds.counter_matrix()
        model = MGAModel(graphs[0].feature_dim, vectors.shape[1],
                         extra.shape[1], ds.num_configs, gnn_hidden=12,
                         gnn_out=12, dae_hidden=24, dae_code=8, mlp_hidden=16,
                         dropout=0.0, seed=0)
        # a vanishing learning rate makes every epoch identical, so training
        # must stop after 1 + patience epochs instead of running all 30
        history = model.fit(graphs, vectors, extra, ds.labels(), epochs=30,
                            dae_epochs=1, lr=1e-12, patience=2)
        assert len(history["loss"]) == 3


class TestBatchCaching:
    def test_graph_batch_cache_hits(self, small_openmp_dataset):
        graphs = [s.graph for s in small_openmp_dataset.samples]
        cache = GraphBatchCache(graphs)
        first = cache.get([0, 1, 2])
        second = cache.get(np.array([0, 1, 2]))
        other = cache.get([2, 1, 0])
        assert first is second
        assert other is not first
        assert (cache.hits, cache.misses) == (1, 2)
        # layouts hang off the batch and are themselves memoised
        assert first.relation_layouts() is first.relation_layouts()
        assert first.pool_layout() is first.pool_layout()

    def test_edge_layout_degrees(self):
        edges = np.array([[0, 0, 1, 3], [1, 2, 2, 3]], dtype=np.int64)
        layout = EdgeLayout(edges, 4)
        assert layout.num_edges == 4
        np.testing.assert_array_equal(layout.dst_layout.counts, [0, 1, 2, 1])
        np.testing.assert_allclose(layout.inv_in_deg.ravel(),
                                   [1.0, 1.0, 0.5, 1.0])
        src_sorted, dst_sorted, _ = layout.by_dst
        assert np.all(np.diff(dst_sorted) >= 0)
        assert set(zip(src_sorted, dst_sorted)) == {(0, 1), (0, 2), (1, 2),
                                                    (3, 3)}
