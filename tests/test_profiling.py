"""PAPI-like profiling, counter selection and portability rescaling tests."""

import numpy as np
import pytest

from repro.frontend.openmp import OMPConfig
from repro.profiling import (
    PAPI_PRESET_COUNTERS,
    PAPIProfiler,
    SELECTED_COUNTERS,
    pearson_correlation,
    rescale_counters,
    select_counters,
)
from repro.simulator.microarch import BROADWELL_8C, COMET_LAKE_8C, SANDY_BRIDGE_8C


class TestPAPIProfiler:
    def test_profile_returns_requested_events(self, gemm_spec):
        profiler = PAPIProfiler(COMET_LAKE_8C, noise=0.0)
        record = profiler.profile(gemm_spec, scale=1.0,
                                  events=SELECTED_COUNTERS)
        assert set(record.counters) == set(SELECTED_COUNTERS)
        assert record.time_seconds > 0
        assert record.runs_needed == 2          # five counters, four per run

    def test_unknown_event_rejected(self, gemm_spec):
        profiler = PAPIProfiler(COMET_LAKE_8C)
        with pytest.raises(KeyError):
            profiler.profile(gemm_spec, events=["PAPI_NOT_A_COUNTER"])

    def test_profile_many_grid(self, gemm_spec):
        profiler = PAPIProfiler(COMET_LAKE_8C, noise=0.0)
        records = profiler.profile_many(gemm_spec, scales=[0.5, 1.0],
                                        configs=[OMPConfig(1), OMPConfig(8)])
        assert len(records) == 4

    def test_counters_grow_with_input_size(self, gemm_spec):
        profiler = PAPIProfiler(COMET_LAKE_8C, noise=0.0)
        small = profiler.profile(gemm_spec, scale=0.5)
        large = profiler.profile(gemm_spec, scale=1.5)
        assert large.counters["PAPI_L1_DCM"] > small.counters["PAPI_L1_DCM"]
        assert large.counters["PAPI_BR_INS"] > small.counters["PAPI_BR_INS"]


class TestCounterSelection:
    def test_pearson_basics(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)
        assert pearson_correlation(x, np.ones(10)) == 0.0
        with pytest.raises(ValueError):
            pearson_correlation(x, np.ones(3))

    def test_select_counters_returns_k_most_correlated(self, small_specs):
        profiler = PAPIProfiler(COMET_LAKE_8C, noise=0.0)
        records = []
        for spec in small_specs[:4]:
            for scale_target in (1e5, 1e7, 1e8):
                scale = spec.scale_for_bytes(scale_target)
                records.append(profiler.profile(spec, scale=scale))
        selected = select_counters(records, k=5)
        assert len(selected) == 5
        assert len(set(selected)) == 5
        assert set(selected) <= set(PAPI_PRESET_COUNTERS)

    def test_select_counters_empty_raises(self):
        with pytest.raises(ValueError):
            select_counters([], k=5)


class TestPortabilityRescaling:
    def test_cache_ratio_scaling(self):
        counters = {"PAPI_L1_DCM": 100.0, "PAPI_L2_DCM": 50.0,
                    "PAPI_L3_LDM": 10.0, "PAPI_BR_MSP": 5.0,
                    "PAPI_TOT_CYC": 1e6}
        out = rescale_counters(counters, source=COMET_LAKE_8C,
                               target=SANDY_BRIDGE_8C)
        # L1/L2 same size -> unchanged; L3 is 20MB vs 16MB -> scaled up
        assert out["PAPI_L1_DCM"] == pytest.approx(100.0)
        assert out["PAPI_L3_LDM"] == pytest.approx(10.0 * 20.0 / 16.0)
        # branch mispredictions are normalised per reference cycle
        assert out["PAPI_BR_MSP"] == pytest.approx(5.0 / 1e6 * 1e6)

    def test_rescaling_does_not_mutate_input(self):
        counters = {"PAPI_L1_DCM": 1.0}
        rescale_counters(counters, COMET_LAKE_8C, BROADWELL_8C)
        assert counters["PAPI_L1_DCM"] == 1.0

    def test_identity_when_same_arch(self):
        counters = {"PAPI_L1_DCM": 3.0, "PAPI_L3_LDM": 2.0}
        out = rescale_counters(counters, COMET_LAKE_8C, COMET_LAKE_8C)
        assert out == pytest.approx(counters)
