"""Chaos suite: fleet campaigns under injected faults.

Every test here drives a real coordinator with real subprocess (or thread)
workers while ``repro.serve.faults`` drops, delays, and duplicates frames,
stalls heartbeats, and SIGKILLs workers — and asserts the one property the
fleet layer exists to protect: **the tuning history is byte-identical to a
serial ``workers=1`` run**.  The standard fault plan's seed is pinned via
``REPRO_FAULT_SEED`` in CI so failures replay deterministically.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import tempfile
import time
import uuid

import pytest

from repro.serve.faults import FaultPlan
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners import (
    CampaignCoordinator,
    CampaignWorker,
    SimObjectiveSpec,
    TuningCampaign,
    full_search_space,
    make_tuner,
    run_worker,
)

# The chaos suite's standard fault plan (ISSUE: "a standard fault plan").
# CI pins REPRO_FAULT_SEED so a red run reproduces bit-for-bit.
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "1234"))
STANDARD_PLAN = FaultPlan(drop=0.15, dup=0.15, delay_ms=10.0,
                          kill_after=5, stall_after=2, stall_for=0.6,
                          seed=FAULT_SEED)

_FORK = multiprocessing.get_context("fork")


def _socket_path():
    return os.path.join(tempfile.gettempdir(),
                        f"repro-chaos-{uuid.uuid4().hex[:10]}.sock")


def _spec(**overrides):
    defaults = dict(kernel_uid="polybench/atax", arch=COMET_LAKE_8C,
                    scale=0.2, noise=0.015, seed=42)
    defaults.update(overrides)
    return SimObjectiveSpec(**defaults)


def _campaign(space, **kwargs):
    kwargs.setdefault("batch_size", 8)
    return TuningCampaign(make_tuner("random", budget=24, seed=0),
                          space, _spec(**kwargs.pop("spec_overrides", {})),
                          **kwargs)


@pytest.fixture(scope="module")
def space():
    return full_search_space(threads=(1, 2, 4, 8), chunks=(1, 32, 256))


@pytest.fixture(scope="module")
def serial_history(space):
    return _campaign(space).run().history


def _spawn_workers(address, count, plan, **kwargs):
    """Fork real worker processes so SIGKILL faults kill a whole process."""
    procs = []
    for index in range(count):
        proc = _FORK.Process(
            target=run_worker, args=(address,),
            kwargs=dict(worker_id=f"chaos{index}", fault_plan=plan,
                        fault_seed_offset=index + 1, **kwargs),
            daemon=True)
        proc.start()
        procs.append(proc)
    return procs


def _reap(procs, timeout=30.0):
    deadline = time.monotonic() + timeout
    for proc in procs:
        proc.join(timeout=max(0.1, deadline - time.monotonic()))
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
    return [proc.exitcode for proc in procs]


class TestChaos:
    def test_worker_sigkill_history_identical(self, space, serial_history):
        """kill_after=5 SIGKILLs every worker mid-lease (after the value is
        computed, before it is submitted) — the nastiest window."""
        campaign = _campaign(space)
        with CampaignCoordinator(campaign, _socket_path(),
                                 lease_timeout=0.5,
                                 local_fallback_s=1.0,
                                 max_lease_configs=4) as coordinator:
            procs = _spawn_workers(coordinator.address, 3, STANDARD_PLAN,
                                   max_configs=2, request_timeout=1.0,
                                   retries=6, backoff_base=0.02)
            result = coordinator.run()
            exitcodes = _reap(procs)
        assert result.history == serial_history
        # workers die by SIGKILL on their 5th evaluation; a worker that the
        # scheduler starved below 5 evals exits 0, so require a majority of
        # violent deaths rather than all three
        assert sum(code == -signal.SIGKILL for code in exitcodes) >= 2
        stats = coordinator.stats()
        assert stats["leases"]["expired"] >= 1
        assert stats["leases"]["reissued_configs"] >= 1

    def test_frame_faults_only_no_local_fallback(self, space, serial_history):
        """Drops/dups/delays alone (no kills): workers must still deliver
        every result themselves, exactly once each."""
        plan = FaultPlan(drop=0.2, dup=0.2, delay_ms=5.0, seed=FAULT_SEED)
        campaign = _campaign(space)
        with CampaignCoordinator(campaign, _socket_path(),
                                 lease_timeout=0.5,
                                 local_fallback_s=None,
                                 max_lease_configs=4) as coordinator:
            procs = _spawn_workers(coordinator.address, 2, plan,
                                   max_configs=3, request_timeout=1.0,
                                   retries=10, backoff_base=0.02)
            result = coordinator.run()
            exitcodes = _reap(procs)
        assert result.history == serial_history
        assert all(code == 0 for code in exitcodes)
        stats = coordinator.stats()
        assert stats["local_evaluations"] == 0
        assert stats["submissions"]["accepted"] == len(serial_history)

    def test_stalled_heartbeats_trigger_reissue(self, space):
        """A worker whose heartbeats all vanish keeps losing leases; the
        campaign still terminates with the serial history because each
        re-lease completes at least one config inside the lease window."""
        plan = FaultPlan(stall_after=0, stall_for=3600.0, seed=FAULT_SEED)
        walltime = dict(walltime_scale=2000.0, walltime_cap=0.08)
        serial = _campaign(space, spec_overrides=walltime).run().history
        # the lease window (0.25 s) fits ~3 of the 4 leased ~0.08 s evals:
        # every lease expires mid-flight (forcing reissue) yet each re-lease
        # still lands >= 2 configs, so the campaign terminates
        campaign = _campaign(space, spec_overrides=walltime)
        with CampaignCoordinator(campaign, _socket_path(),
                                 lease_timeout=0.25,
                                 local_fallback_s=None,
                                 max_lease_configs=4) as coordinator:
            worker = CampaignWorker(coordinator.address, worker_id="stalled",
                                    max_configs=4, request_timeout=2.0,
                                    fault_plan=plan)
            import threading
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            result = coordinator.run()
            thread.join(timeout=15)
        assert result.history == serial
        stats = coordinator.stats()
        assert stats["leases"]["expired"] >= 1
        assert stats["submissions"]["stale"] + \
            stats["leases"]["reissued_configs"] >= 1


class TestCoordinatorKillResume:
    def test_cli_coordinator_sigkill_then_resume(self, space, tmp_path):
        """SIGKILL the coordinator *process* mid-campaign, resume from its
        checkpoint with fresh workers, and match the serial history."""
        ck = str(tmp_path / "fleet-ck")
        listen = f"unix://{_socket_path()}"
        base = [sys.executable, "-m", "repro.serve", "fleet-coordinator",
                "--kernel", "polybench/atax", "--arch", "comet_lake",
                "--tuner", "random", "--budget", "24", "--batch-size", "4",
                "--scale", "0.2", "--noise", "0.015", "--sim-seed", "42",
                "--seed", "0", "--walltime-scale", "2000",
                "--walltime-cap", "0.05", "--checkpoint", ck,
                "--local-fallback", "0.25", "--linger", "5",
                "--listen", listen]
        env = dict(os.environ, PYTHONPATH="src",
                   REPRO_FAULTS="drop=0.1,delay_ms=5",
                   REPRO_FAULT_SEED=str(FAULT_SEED))
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

        def start_workers(address, count=2):
            return [subprocess.Popen(
                [sys.executable, "-m", "repro.serve", "fleet-worker",
                 "--coordinator", address, "--max-configs", "2",
                 "--request-timeout", "2", "--retries", "20",
                 "--fault-seed-offset", str(i + 1)],
                env=env, cwd=repo, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL) for i in range(count)]

        first = subprocess.Popen(base, env=env, cwd=repo,
                                 stdout=subprocess.PIPE,
                                 stderr=subprocess.PIPE, text=True)
        workers = []
        try:
            ready = json.loads(first.stdout.readline())
            assert ready["ready"]
            workers = start_workers(ready["listen"])
            # wait for real progress (>= 2 settled batches), then murder it
            from repro.serve.client import DaemonClient
            deadline = time.monotonic() + 60
            with DaemonClient(ready["listen"], retries=10,
                              backoff_base=0.05) as client:
                while time.monotonic() < deadline:
                    stats = client.request({"op": "stats"}, timeout=5.0)
                    if stats["progress"]["batches"] >= 2:
                        break
                    if stats["progress"]["done"]:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("coordinator made no progress")
                assert not stats["progress"]["done"], \
                    "campaign finished before it could be killed"
            os.kill(first.pid, signal.SIGKILL)
            first.wait(timeout=10)
        finally:
            for proc in workers:
                proc.kill()
            if first.poll() is None:
                first.kill()
            first.wait(timeout=10)

        # resume: same checkpoint, a fresh socket, fresh workers
        listen2 = f"unix://{_socket_path()}"
        resume_cmd = [sys.executable, "-m", "repro.serve",
                      "fleet-coordinator", "--resume", ck,
                      "--local-fallback", "0.25", "--linger", "0.2",
                      "--listen", listen2]
        second = subprocess.Popen(resume_cmd, env=env, cwd=repo,
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE, text=True)
        workers2 = []
        try:
            ready2 = json.loads(second.stdout.readline())
            workers2 = start_workers(ready2["listen"])
            out, err = second.communicate(timeout=120)
        finally:
            for proc in workers2:
                proc.kill()
            if second.poll() is None:
                second.kill()
                second.communicate(timeout=10)
        assert second.returncode == 0, err
        result = json.loads(out)    # the ready line was already consumed
        assert result["finished"]
        assert result["evaluations"] == 24

        # the recovered history must be byte-identical to a serial run
        final = TuningCampaign.resume(ck)
        serial = TuningCampaign(
            make_tuner("random", budget=24, seed=0),
            # the CLI builds --space full over the arch's thread range
            full_search_space(max_threads=COMET_LAKE_8C.max_threads),
            _spec(walltime_scale=2000.0, walltime_cap=0.05),
            batch_size=4).run()
        assert final.history == serial.history
        # checkpoint hygiene survives the crash + resume
        assert not os.path.exists(TuningCampaign._previous_path(ck))
        assert not os.path.exists(TuningCampaign._staging_path(ck))
