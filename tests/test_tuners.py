"""Search-space and black-box tuner tests (oracle, random, OpenTuner-like,
ytopt-like, BLISS-like) plus the GP surrogate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.analysis import analyze_spec
from repro.frontend.openmp import OMPConfig, OMPSchedule
from repro.simulator.microarch import COMET_LAKE_8C
from repro.simulator.openmp import OpenMPSimulator
from repro.tuners import (
    BLISSTuner,
    ExhaustiveTuner,
    GaussianProcess,
    OpenTunerLike,
    RandomSearchTuner,
    SearchSpace,
    YtoptTuner,
    full_search_space,
    make_objective,
    thread_search_space,
)


class TestSearchSpace:
    def test_thread_space(self):
        space = thread_search_space(COMET_LAKE_8C)
        assert len(space) == 8
        assert all(c.schedule == OMPSchedule.STATIC for c in space)

    def test_full_space_matches_table2(self):
        space = full_search_space()
        assert len(space) == 7 * 3 * 7
        threads = {c.num_threads for c in space}
        assert threads == {1, 2, 4, 8, 12, 16, 20}

    def test_full_space_respects_max_threads(self):
        space = full_search_space(max_threads=8)
        assert max(c.num_threads for c in space) == 8

    def test_vector_encoding_in_unit_range(self):
        space = full_search_space()
        mat = space.design_matrix()
        assert mat.shape == (len(space), 5)
        assert mat.min() >= 0.0 and mat.max() <= 1.0 + 1e-9

    def test_index_roundtrip(self):
        space = full_search_space()
        for i in (0, 10, len(space) - 1):
            assert space.index_of(space[i]) == i

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([])


def _random_configs(rng, n, allow_duplicates=False):
    threads = [int(t) for t in rng.integers(1, 33, size=n)]
    schedules = [list(OMPSchedule)[int(i)] for i in rng.integers(0, 3, size=n)]
    chunks = [None if rng.random() < 0.3 else int(c)
              for c in rng.integers(1, 513, size=n)]
    configs = [OMPConfig(t, s, c) for t, s, c in zip(threads, schedules, chunks)]
    if not allow_duplicates:
        configs = list(dict.fromkeys(configs))
    return configs


class TestSearchSpaceRoundTrips:
    """index_of / to_vector / design_matrix consistency on arbitrary spaces."""

    @given(st.integers(0, 1000), st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_index_roundtrip_randomized(self, seed, n):
        rng = np.random.default_rng(seed)
        space = SearchSpace(_random_configs(rng, n))
        for i, config in enumerate(space):
            assert space.index_of(config) == i
            assert space[i] == config

    @given(st.integers(0, 1000), st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_design_matrix_matches_to_vector(self, seed, n):
        rng = np.random.default_rng(seed)
        space = SearchSpace(_random_configs(rng, n))
        mat = space.design_matrix()
        assert mat.shape == (len(space), 5)
        for i, config in enumerate(space):
            np.testing.assert_array_equal(mat[i], space.to_vector(config))

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_serialization_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        space = SearchSpace(_random_configs(rng, 20))
        clone = SearchSpace.from_config(space.to_config())
        assert clone.configs == space.configs
        np.testing.assert_array_equal(clone.design_matrix(),
                                      space.design_matrix())

    def test_duplicate_configs_resolve_to_first_occurrence(self):
        config = OMPConfig(4, OMPSchedule.DYNAMIC, 32)
        other = OMPConfig(8, OMPSchedule.STATIC, None)
        space = SearchSpace([config, other, config, config])
        assert len(space) == 4                      # duplicates are kept
        assert space.index_of(config) == 0          # lookup is stable
        assert space.index_of(other) == 1
        assert space[space.index_of(config)] == config
        assert space.design_matrix().shape == (4, 5)

    def test_single_config_space(self):
        config = OMPConfig(1, OMPSchedule.GUIDED, None)
        space = SearchSpace([config])
        assert len(space) == 1
        assert space.index_of(config) == 0
        vec = space.to_vector(config)
        assert vec.shape == (5,)
        assert np.all(np.isfinite(vec))
        clone = SearchSpace.from_config(space.to_config())
        assert clone.configs == [config]


def _lookup_objective(space, times):
    def objective(config):
        return float(times[space.index_of(config)])
    return objective


@pytest.fixture(scope="module")
def small_space_times():
    """A deterministic synthetic objective over the Table-2 space."""
    space = full_search_space(threads=(1, 2, 4, 8), chunks=(1, 32, 256))
    rng = np.random.default_rng(42)
    times = rng.uniform(1.0, 10.0, len(space))
    times[17] = 0.5      # a unique global optimum
    return space, times


class TestTuners:
    def test_exhaustive_finds_global_optimum(self, small_space_times):
        space, times = small_space_times
        result = ExhaustiveTuner().tune(_lookup_objective(space, times), space)
        assert result.best_time == pytest.approx(times.min())
        assert result.evaluations == len(space)

    @pytest.mark.parametrize("tuner_cls", [RandomSearchTuner, OpenTunerLike,
                                           YtoptTuner, BLISSTuner])
    def test_budget_respected_and_improves_over_first_guess(self, tuner_cls,
                                                            small_space_times):
        space, times = small_space_times
        tuner = tuner_cls(budget=12, seed=3)
        result = tuner.tune(_lookup_objective(space, times), space)
        assert result.evaluations <= 12
        assert result.best_time <= result.history[0][1] + 1e-12
        assert result.best_time <= np.median(times)

    def test_bayesian_beats_random_on_structured_objective(self):
        """On a smooth objective the GP surrogate should need fewer evals."""
        space = full_search_space(threads=(1, 2, 4, 8, 12, 16, 20))
        vectors = space.design_matrix()
        optimum = vectors[97]
        times = 1.0 + 5.0 * np.linalg.norm(vectors - optimum, axis=1) ** 2
        budget = 15
        random_best = RandomSearchTuner(budget=budget, seed=0).tune(
            _lookup_objective(space, times), space).best_time
        ytopt_best = YtoptTuner(budget=budget, seed=0).tune(
            _lookup_objective(space, times), space).best_time
        assert ytopt_best <= random_best + 1e-9

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            RandomSearchTuner(budget=0)

    def test_make_objective_counts_evaluations(self, gemm_spec):
        sim = OpenMPSimulator(COMET_LAKE_8C, noise=0.0)
        summary = analyze_spec(gemm_spec, 1.0)
        counter = {}
        objective = make_objective(sim, summary, counter)
        space = thread_search_space(COMET_LAKE_8C)
        RandomSearchTuner(budget=5, seed=0).tune(objective, space)
        assert counter["evals"] == 5

    def test_tuning_result_speedup(self, small_space_times):
        space, times = small_space_times
        result = ExhaustiveTuner().tune(_lookup_objective(space, times), space)
        assert result.speedup_over(reference_time=times[0]) == pytest.approx(
            times[0] / times.min())


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(size=(20, 3))
        y = np.sin(x[:, 0] * 3) + x[:, 1]
        gp = GaussianProcess(length_scale=0.4).fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=0.1)
        assert np.all(std >= 0)

    def test_uncertainty_grows_away_from_data(self):
        x = np.zeros((5, 2))
        y = np.zeros(5)
        gp = GaussianProcess(length_scale=0.3).fit(x, y)
        _, near = gp.predict(np.zeros((1, 2)))
        _, far = gp.predict(np.ones((1, 2)) * 5.0)
        assert far[0] > near[0]

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.ones((1, 2)))

    @given(st.integers(5, 30))
    @settings(max_examples=10, deadline=None)
    def test_loglikelihood_finite(self, n):
        rng = np.random.default_rng(n)
        x = rng.uniform(size=(n, 2))
        y = rng.uniform(size=n)
        gp = GaussianProcess().fit(x, y)
        assert np.isfinite(gp.log_likelihood(x, y))
