"""Kernel library / registry tests (Table 1 coverage)."""

import pytest

from repro.frontend.spec import ParallelModel
from repro.kernels import registry
from repro.kernels.registry import TABLE1, as_opencl, get_kernel, kernels_for_suite


class TestTable1Coverage:
    def test_all_suites_present(self):
        expected = {"polybench", "rodinia", "npb", "stream", "dataracebench",
                    "amdsdk", "nvidiasdk", "parboil", "shoc", "lulesh"}
        assert expected == set(TABLE1)

    def test_application_counts_match_paper(self):
        assert len(TABLE1["polybench"]) == 28
        assert len(TABLE1["rodinia"]) == 17
        assert len(TABLE1["npb"]) == 7
        assert len(TABLE1["dataracebench"]) == 7
        assert len(TABLE1["amdsdk"]) == 12
        assert len(TABLE1["nvidiasdk"]) == 6
        assert len(TABLE1["parboil"]) == 6
        assert len(TABLE1["shoc"]) == 12

    def test_named_applications_exist(self):
        for name in ("2mm", "trisolv", "gemm", "jacobi-2d"):
            assert name in TABLE1["polybench"]
        for name in ("kmeans", "bfs", "lavaMD", "b+tree"):
            assert name in TABLE1["rodinia"]
        assert "BlackScholes" in TABLE1["amdsdk"]
        assert "MersenneTwister" in TABLE1["nvidiasdk"]


class TestRegistryAccessors:
    def test_openmp_kernel_count(self):
        specs = registry.openmp_kernels()
        assert len(specs) >= 45          # the paper uses 45 OpenMP loops
        assert all(s.model == ParallelModel.OPENMP for s in specs)

    def test_opencl_kernel_count(self):
        specs = registry.opencl_kernels()
        assert len(specs) >= 80
        assert all(s.model == ParallelModel.OPENCL for s in specs)
        suites = {s.suite for s in specs}
        assert {"amdsdk", "nvidiasdk", "parboil", "shoc", "polybench",
                "rodinia", "npb"} <= suites

    def test_unique_uids_per_model(self):
        uids = [s.uid for s in registry.openmp_kernels()]
        assert len(uids) == len(set(uids))

    def test_get_kernel_roundtrip(self):
        spec = get_kernel("polybench/gemm")
        assert spec.name == "gemm" and spec.suite == "polybench"
        with pytest.raises(KeyError):
            get_kernel("polybench/not-a-kernel")
        with pytest.raises(KeyError):
            get_kernel("nosuite/gemm")

    def test_as_opencl_conversion(self):
        spec = get_kernel("polybench/gemm")
        ocl = as_opencl(spec)
        assert ocl.model == ParallelModel.OPENCL
        assert ocl.name == spec.name
        assert as_opencl(ocl) is ocl

    def test_kernels_for_suite(self):
        poly = kernels_for_suite("polybench")
        assert len(poly) == 28
        ocl = kernels_for_suite("polybench", model=ParallelModel.OPENCL)
        assert all(s.model == ParallelModel.OPENCL for s in ocl)
        with pytest.raises(KeyError):
            kernels_for_suite("unknown")

    def test_every_kernel_has_diverse_metadata(self):
        specs = registry.all_kernels()
        domains = {s.domain for s in specs}
        assert len(domains) >= 8          # arithmetic, data mining, fluids, ...
        depths = {s.loop_depth for s in specs}
        assert max(depths) >= 3 and min(depths) >= 1
