"""Shared fixtures: small kernels, datasets and feature extractors."""

import numpy as np
import pytest

from repro.core.features import StaticFeatureExtractor
from repro.datasets.openmp import OpenMPDatasetBuilder
from repro.frontend.spec import KernelSpec
from repro.kernels import registry
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners.space import thread_search_space


@pytest.fixture(scope="session")
def gemm_spec() -> KernelSpec:
    return registry.get_kernel("polybench/gemm")


@pytest.fixture(scope="session")
def kmeans_spec() -> KernelSpec:
    return registry.get_kernel("rodinia/kmeans")


@pytest.fixture(scope="session")
def bfs_spec() -> KernelSpec:
    return registry.get_kernel("rodinia/bfs")


@pytest.fixture(scope="session")
def small_specs():
    """A small but structurally diverse kernel selection."""
    uids = ["polybench/gemm", "polybench/jacobi-2d", "polybench/trisolv",
            "rodinia/kmeans", "rodinia/bfs", "stream/triad",
            "dataracebench/DRB061", "npb/EP"]
    return [registry.get_kernel(uid) for uid in uids]


@pytest.fixture(scope="session")
def extractor() -> StaticFeatureExtractor:
    return StaticFeatureExtractor(vector_dim=32)


@pytest.fixture(scope="session")
def small_openmp_dataset(small_specs, extractor):
    """A small thread-tuning dataset shared across dataset/model/tuner tests."""
    space = thread_search_space(COMET_LAKE_8C)
    builder = OpenMPDatasetBuilder(COMET_LAKE_8C, list(space),
                                   extractor=extractor, seed=0)
    targets = np.geomspace(1e5, 2e8, 4)
    return builder.build(small_specs, targets)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
