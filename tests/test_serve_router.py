"""Multi-host serving: TCP transport, consistent-hash router, loadgen."""

import json
import os
import socket
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import MGATuner
from repro.kernels import registry as kernel_registry
from repro.serve import (
    DaemonClient,
    DaemonError,
    HashRing,
    InferenceEngine,
    ModelRegistry,
    ServeDaemon,
    ServeRouter,
    open_loop,
)
from repro.serve.loadgen import LatencyHistogram, poisson_arrivals
from repro.serve.protocol import (
    connect_address,
    create_listener,
    format_address,
    parse_address,
)
from repro.serve.router import parse_replica_spec, stable_hash
from repro.simulator.microarch import COMET_LAKE_8C

TRAIN_KW = dict(gnn_hidden=12, gnn_out=12, dae_hidden=24, dae_code=8,
                mlp_hidden=16)
LOOPBACK = "tcp://127.0.0.1:0"


def _socket_path() -> str:
    # AF_UNIX paths are length-limited (~107 bytes); stay in /tmp
    return os.path.join(tempfile.mkdtemp(prefix="repro-router-"), "d.sock")


def _await(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
class TestAddressScheme:
    def test_parse_forms(self):
        assert parse_address("/tmp/a.sock") == ("unix", "/tmp/a.sock")
        assert parse_address("unix:///tmp/a.sock") == ("unix", "/tmp/a.sock")
        assert parse_address("tcp://127.0.0.1:7000") == \
            ("tcp", ("127.0.0.1", 7000))
        assert parse_address("tcp://example.com:0") == \
            ("tcp", ("example.com", 0))

    def test_round_trip(self):
        for address in ("/tmp/a.sock", "tcp://127.0.0.1:7000"):
            assert format_address(*parse_address(address)) == address

    def test_rejected_forms(self):
        for bad in ("", "unix://", "tcp://", "tcp://nohost",
                    "tcp://h:notaport", "tcp://h:70000", "tcp://:7000"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_tcp_listener_resolves_ephemeral_port(self):
        listener, resolved = create_listener(LOOPBACK)
        try:
            scheme, (host, port) = parse_address(resolved)
            assert scheme == "tcp" and host == "127.0.0.1" and port > 0
            probe = connect_address(resolved, timeout=5.0)
            probe.close()
        finally:
            listener.close()

    def test_replica_spec_forms(self):
        assert parse_replica_spec("g0=tcp://h:1") == ("g0", "tcp://h:1")
        assert parse_replica_spec("g0=/tmp/a.sock") == ("g0", "/tmp/a.sock")
        assert parse_replica_spec(("g1", "/tmp/b.sock")) == \
            ("g1", "/tmp/b.sock")
        # a bare address is its own group of one
        assert parse_replica_spec("/tmp/a.sock") == \
            ("/tmp/a.sock", "/tmp/a.sock")
        assert parse_replica_spec("tcp://h:1") == ("tcp://h:1", "tcp://h:1")


# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = [f"model-{i}@latest" for i in range(64)]
        a = HashRing(["g0", "g1", "g2"])
        b = HashRing(["g2", "g1", "g0"])      # order must not matter
        assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]
        assert stable_hash("x") == stable_hash("x")

    def test_all_groups_reachable(self):
        ring = HashRing(["g0", "g1", "g2", "g3"])
        owners = {ring.lookup(f"m{i}@1") for i in range(256)}
        assert owners == {"g0", "g1", "g2", "g3"}

    def test_losing_a_group_only_remaps_its_keys(self):
        keys = [f"m{i}@latest" for i in range(256)]
        full = HashRing(["g0", "g1", "g2", "g3"])
        reduced = HashRing(["g0", "g1", "g2"])
        moved = 0
        for key in keys:
            before, after = full.lookup(key), reduced.lookup(key)
            if before == "g3":
                assert after in ("g0", "g1", "g2")
                moved += 1
            else:
                assert after == before       # survivors keep their shards
        assert moved > 0

    def test_empty_ring(self):
        assert HashRing([]).lookup("anything") is None


# ----------------------------------------------------------------------
class TestTCPTransport:
    def test_daemon_round_trip_over_tcp(self):
        with ServeDaemon(LOOPBACK, workers=1, max_batch=2, deadline_ms=2.0,
                         debug_ops=True) as daemon:
            assert daemon.scheme == "tcp"
            assert daemon.address.startswith("tcp://127.0.0.1:")
            with DaemonClient(daemon.address) as client:
                assert client.ping()
                assert client.request({"op": "_sleep",
                                       "seconds": 0.0})["slept"] == 0.0
                stats = client.stats()
            assert stats["transport"] == "tcp"
            assert stats["address"] == daemon.address

    def test_partial_frames_across_recv_boundaries(self):
        """One frame dribbled byte-group-wise, then two frames in one send."""
        with ServeDaemon(LOOPBACK, workers=1, max_batch=2,
                         deadline_ms=2.0) as daemon:
            raw = connect_address(daemon.address, timeout=10.0)
            raw.settimeout(10.0)
            try:
                frame = b'{"op": "ping", "id": "split"}\n'
                for start in range(0, len(frame), 7):
                    raw.sendall(frame[start:start + 7])
                    time.sleep(0.01)     # force separate recv() chunks
                reader = raw.makefile("rb")
                response = json.loads(reader.readline())
                assert response == {"id": "split", "ok": True,
                                    "result": {"pong": True}}
                # pipelining: two frames in one TCP segment, two responses
                raw.sendall(b'{"op": "ping", "id": "a"}\n'
                            b'{"op": "ping", "id": "b"}\n')
                ids = {json.loads(reader.readline())["id"] for _ in range(2)}
                assert ids == {"a", "b"}
            finally:
                raw.close()

    def test_oversized_payload_rejected(self, monkeypatch):
        from repro.serve import protocol
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 4096)
        with ServeDaemon(LOOPBACK, workers=1, max_batch=2,
                         deadline_ms=2.0) as daemon:
            raw = connect_address(daemon.address, timeout=10.0)
            raw.settimeout(10.0)
            try:
                raw.sendall(b"x" * (256 * 1024))     # no newline: one giant
                response = json.loads(raw.makefile("rb").readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "bad_request"
                assert "size limit" in response["error"]["message"]
                # the daemon closed the connection after the oversized
                # frame (EOF, or RST if our unread bytes were discarded)
                try:
                    assert raw.recv(65536) == b""
                except ConnectionResetError:
                    pass
            except BrokenPipeError:
                pass     # daemon may reset before the whole blob is written
            finally:
                raw.close()
            # and still serves new connections
            with DaemonClient(daemon.address) as client:
                assert client.ping()

    def test_client_reconnects_after_replica_restart(self):
        first = ServeDaemon(LOOPBACK, workers=1, max_batch=2,
                            deadline_ms=2.0, debug_ops=True).start()
        address = first.address
        client = DaemonClient(address)
        try:
            assert client.request({"op": "_sleep",
                                   "seconds": 0.0})["slept"] == 0.0
            first.shutdown()
            # the daemon restarts on the same host:port (the old accepted
            # connection may linger briefly, so retry the bind); the
            # client's old connection is dead — the first call surfaces
            # that, the next one re-dials transparently
            deadline = time.monotonic() + 30.0
            while True:
                try:
                    second = ServeDaemon(address, workers=1, max_batch=2,
                                         deadline_ms=2.0,
                                         debug_ops=True).start()
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.1)
            try:
                with pytest.raises((OSError, ConnectionError, DaemonError)):
                    client.request({"op": "ping"})
                assert client.ping()
                assert client.request({"op": "_sleep",
                                       "seconds": 0.0})["slept"] == 0.0
            finally:
                second.shutdown()
        finally:
            client.close()
            first.shutdown()

    def test_stats_gained_p999_and_per_route_depth(self):
        with ServeDaemon(LOOPBACK, workers=1, max_batch=1, deadline_ms=1.0,
                         max_queue=32, debug_ops=True) as daemon:
            with ThreadPoolExecutor(max_workers=4) as pool:
                blockers = [pool.submit(
                    lambda: DaemonClient(daemon.address).request(
                        {"op": "_sleep", "seconds": 0.3}))
                    for _ in range(3)]
                assert _await(lambda: daemon.stats()["queue"]
                              .get("per_route", {}).get("debug", 0) >= 1,
                              timeout=10.0)
                for future in blockers:
                    future.result(timeout=60)
            stats = daemon.stats()
            latency = stats["latency_ms"]
            assert latency["p999"] >= latency["p99"] >= latency["p50"] > 0
            assert stats["requests"]["shed"] == 0
            assert stats["queue"]["per_route"] == {}     # drained


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def registry_root(tmp_path_factory, small_openmp_dataset, extractor):
    """A registry serving one artifact under two shard-distinct names."""
    ds = small_openmp_dataset
    tuner = MGATuner(COMET_LAKE_8C, ds.configs, extractor=extractor, seed=0,
                     **TRAIN_KW)
    tuner.fit(ds, epochs=2, dae_epochs=2)
    root = str(tmp_path_factory.mktemp("router-registry"))
    registry = ModelRegistry(root)
    for name in _model_names():
        registry.publish(name, tuner)
    return root


def _model_names():
    """Two names of the same artifact, one hashing onto each fleet group.

    Model names are the shard keys: a deployment picks names (or group
    counts) so the ring spreads them.  Selecting them deterministically
    here keeps the test independent of hash luck.
    """
    ring = HashRing(["g0", "g1"])
    by_group = {}
    index = 0
    while len(by_group) < 2:
        name = f"openmp-{index}"
        index += 1
        by_group.setdefault(ring.lookup(f"{name}@latest"), name)
    return [by_group["g0"], by_group["g1"]]


@pytest.fixture(scope="module")
def fleet(registry_root):
    """Two single-replica groups (one AF_UNIX, one TCP) behind a router."""
    replica_unix = ServeDaemon(
        _socket_path(), registry_root=registry_root, workers=1, max_batch=4,
        deadline_ms=5.0, preload=_model_names(), debug_ops=True).start()
    replica_tcp = ServeDaemon(
        LOOPBACK, registry_root=registry_root, workers=1, max_batch=4,
        deadline_ms=5.0, preload=_model_names(), debug_ops=True).start()
    router = ServeRouter(
        LOOPBACK, replicas=[("g0", replica_unix.address),
                            ("g1", replica_tcp.address)],
        probe_interval=0.1, fail_after=2, max_inflight=64).start()
    try:
        yield router, {"g0": replica_unix, "g1": replica_tcp}
    finally:
        router.shutdown()
        replica_unix.shutdown()
        replica_tcp.shutdown()


class TestRouterServing:
    def test_predictions_byte_identical_to_engine(self, registry_root,
                                                  fleet):
        """The invariant: router → TCP/unix → daemon ≡ in-process engine."""
        router, _ = fleet
        specs = [kernel_registry.get_kernel(uid)
                 for uid in ("polybench/atax", "polybench/gemm",
                             "rodinia/kmeans")]
        requests = [(model, spec, scale)
                    for model in _model_names()
                    for spec in specs for scale in (0.5, 2.0)]

        tuner = ModelRegistry(registry_root).load(_model_names()[0])
        with InferenceEngine(tuner, max_batch_size=4,
                             max_wait_ms=1.0) as engine:
            reference = [engine.tune(spec, scale)
                         for _, spec, scale in requests]

        def one(item):
            model, spec, scale = item
            with DaemonClient(router.address) as client:
                return client.request({"op": "tune", "model": model,
                                       "kernel": spec.uid, "scale": scale})

        with ThreadPoolExecutor(max_workers=6) as pool:
            responses = list(pool.map(one, requests))

        for response, (config, counters) in zip(responses, reference):
            assert response["config_label"] == config.label()
            assert response["num_threads"] == config.num_threads
            assert response["schedule"] == config.schedule.value
            assert response["chunk_size"] == config.chunk_size
            assert response["counters"] == dict(counters)

    def test_requests_shard_to_their_hash_owner(self, fleet):
        router, replicas = fleet
        name_g0, name_g1 = _model_names()
        assert router.owner_of(f"{name_g0}@latest") == "g0"
        assert router.owner_of(f"{name_g1}@latest") == "g1"
        with DaemonClient(router.address) as client:
            for model in (name_g0, name_g1):
                client.request({"op": "tune", "model": model,
                                "kernel": "polybench/atax", "scale": 1.0})
        # each replica saw exactly its shard's model
        for group, model in (("g0", name_g0), ("g1", name_g1)):
            per_model = replicas[group].stats()["per_model"]
            assert per_model.get(model, 0) >= 1
            other = name_g1 if group == "g0" else name_g0
            assert other not in per_model

    def test_router_stats_surface_fleet_health(self, fleet):
        router, replicas = fleet
        assert _await(lambda: all(
            entry["last_probe"] is not None
            for entry in router.stats()["replicas"].values()), timeout=10.0)
        stats = router.stats()
        assert stats["router"] is True
        assert stats["ring"]["healthy_groups"] == ["g0", "g1"]
        for replica in replicas.values():
            entry = stats["replicas"][replica.address]
            assert entry["healthy"] is True
            probe = entry["last_probe"]
            assert probe["queue_depth"] is not None
            assert probe["shed"] is not None
            assert probe["p999_ms"] is not None
        with DaemonClient(router.address) as client:
            assert client.request({"op": "ping"})["router"] is True
            remote = client.stats()
        assert remote["ring"] == stats["ring"]

    def test_admission_control_sheds_with_structured_error(self,
                                                           registry_root):
        replica = ServeDaemon(_socket_path(), workers=1, max_batch=1,
                              deadline_ms=1.0, max_queue=64,
                              debug_ops=True).start()
        router = ServeRouter(LOOPBACK, replicas=[("g0", replica.address)],
                             probe_interval=0.2, max_inflight=2,
                             max_inflight_per_route=2).start()
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                def slow():
                    return DaemonClient(router.address).request(
                        {"op": "_sleep", "seconds": 0.6})
                busy = [pool.submit(slow) for _ in range(2)]
                assert _await(lambda: router.stats()["inflight"]["total"]
                              >= 2, timeout=10.0)

                with pytest.raises(DaemonError) as err:
                    DaemonClient(router.address).request(
                        {"op": "_sleep", "seconds": 0.0})
                assert err.value.overloaded
                assert err.value.detail.get("scope") == "router"
                assert err.value.detail.get("route") == "debug"
                for future in busy:
                    assert future.result(timeout=60)["slept"] == 0.6
            assert router.stats()["requests"]["shed"] >= 1
            # fleet serves again once the in-flight work drains
            with DaemonClient(router.address) as client:
                assert client.request({"op": "_sleep",
                                       "seconds": 0.0})["slept"] == 0.0
        finally:
            router.shutdown()
            replica.shutdown()

    def test_ejection_failover_and_readmission(self):
        path_a, path_b = _socket_path(), _socket_path()
        replica_a = ServeDaemon(path_a, workers=1, max_batch=2,
                                deadline_ms=2.0, debug_ops=True).start()
        replica_b = ServeDaemon(path_b, workers=1, max_batch=2,
                                deadline_ms=2.0, debug_ops=True).start()
        router = ServeRouter(LOOPBACK,
                             replicas=[("ga", path_a), ("gb", path_b)],
                             probe_interval=0.1, fail_after=2).start()
        try:
            owner = router.owner_of("debug")
            victim = replica_a if owner == "ga" else replica_b
            survivor_group = "gb" if owner == "ga" else "ga"
            with DaemonClient(router.address) as client:
                assert client.request({"op": "_sleep",
                                       "seconds": 0.0})["slept"] == 0.0
                victim.shutdown()
                # failover: the dead replica is ejected passively and the
                # request retries onto the surviving group immediately
                assert client.request({"op": "_sleep",
                                       "seconds": 0.0})["slept"] == 0.0
                assert router.owner_of("debug") == survivor_group
                stats = router.stats()
                assert stats["requests"]["retried"] >= 1
                assert stats["ring"]["healthy_groups"] == [survivor_group]
                assert stats["replicas"][victim.address]["healthy"] is False
                assert stats["replicas"][victim.address]["ejections"] >= 1

                # restart the replica at the same address: the next probe
                # re-admits it and its shard range comes home
                revived = ServeDaemon(victim.address, workers=1, max_batch=2,
                                      deadline_ms=2.0, debug_ops=True).start()
                try:
                    assert _await(
                        lambda: router.stats()["replicas"][victim.address]
                        ["healthy"], timeout=30.0)
                    assert router.owner_of("debug") == owner
                    assert client.request({"op": "_sleep",
                                           "seconds": 0.0})["slept"] == 0.0
                finally:
                    revived.shutdown()
        finally:
            router.shutdown()
            replica_a.shutdown()
            replica_b.shutdown()

    def test_sigkill_mid_request_retries_inflight_victim(self):
        """SIGKILL a replica while it holds an in-flight request: the
        router must retry that very request onto the group's surviving
        member and the caller sees a success, not a reset."""
        import signal
        import subprocess
        import sys

        src = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                           os.pardir, "src"))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def popen_daemon():
            return subprocess.Popen(
                [sys.executable, "-m", "repro.serve", "daemon",
                 "--tcp", "127.0.0.1:0", "--workers", "1",
                 "--max-batch", "2", "--deadline-ms", "5", "--debug-ops"],
                stdout=subprocess.PIPE, text=True, env=env)

        victim_proc, survivor_proc = popen_daemon(), popen_daemon()
        router = None
        try:
            victim_addr = json.loads(
                victim_proc.stdout.readline())["socket"]
            survivor_addr = json.loads(
                survivor_proc.stdout.readline())["socket"]
            # ONE group, two members; round-robin starts at members[0],
            # so the victim of the first request is deterministic
            router = ServeRouter(LOOPBACK,
                                 replicas=[("g0", victim_addr),
                                           ("g0", survivor_addr)],
                                 probe_interval=60.0).start()  # passive only
            with ThreadPoolExecutor(max_workers=1) as pool:
                with DaemonClient(router.address) as client:
                    inflight = pool.submit(
                        client.request, {"op": "_sleep", "seconds": 1.0},
                        30.0)
                    # let the request land on the victim, then murder it
                    assert _await(lambda: router.stats()["inflight"]
                                  ["total"] >= 1, timeout=10.0)
                    time.sleep(0.2)
                    os.kill(victim_proc.pid, signal.SIGKILL)
                    assert victim_proc.wait(timeout=10) == -signal.SIGKILL
                    # the caller still gets its answer (via the survivor)
                    assert inflight.result(timeout=30)["slept"] == 1.0
            stats = router.stats()
            assert stats["requests"]["retried"] >= 1
            assert stats["replicas"][victim_addr]["healthy"] is False
            assert stats["replicas"][victim_addr]["ejections"] >= 1
            assert stats["replicas"][survivor_addr]["healthy"] is True
        finally:
            if router is not None:
                router.shutdown()
            for proc in (victim_proc, survivor_proc):
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()

    def test_no_replica_left_is_a_structured_error(self):
        replica = ServeDaemon(_socket_path(), workers=1, max_batch=2,
                              deadline_ms=2.0, debug_ops=True).start()
        router = ServeRouter(LOOPBACK, replicas=[("g0", replica.address)],
                             probe_interval=60.0).start()   # passive only
        try:
            with DaemonClient(router.address) as client:
                assert client.ping()
                replica.shutdown()
                with pytest.raises(DaemonError) as err:
                    client.request({"op": "_sleep", "seconds": 0.0})
                assert err.value.code == "no_replica"
                assert err.value.detail.get("route") == "debug"
        finally:
            router.shutdown()
            replica.shutdown()

    def test_round_robin_within_a_group(self):
        path_a, path_b = _socket_path(), _socket_path()
        replica_a = ServeDaemon(path_a, workers=1, max_batch=2,
                                deadline_ms=2.0, debug_ops=True).start()
        replica_b = ServeDaemon(path_b, workers=1, max_batch=2,
                                deadline_ms=2.0, debug_ops=True).start()
        # one group, two members: both serve the same shard
        router = ServeRouter(LOOPBACK, replicas=[("g0", path_a),
                                                 ("g0", path_b)],
                             probe_interval=0.5).start()
        try:
            with DaemonClient(router.address) as client:
                for _ in range(8):
                    client.request({"op": "_sleep", "seconds": 0.0})
            counts = [entry["forwarded"] for entry
                      in router.stats()["replicas"].values()]
            assert sorted(counts) == [4, 4]
        finally:
            router.shutdown()
            replica_a.shutdown()
            replica_b.shutdown()


# ----------------------------------------------------------------------
class TestLoadgen:
    def test_poisson_arrivals_deterministic_and_calibrated(self):
        a = poisson_arrivals(100.0, 4000, seed=7)
        b = poisson_arrivals(100.0, 4000, seed=7)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, poisson_arrivals(100.0, 4000, seed=8))
        assert np.all(np.diff(a) >= 0)
        # 4000 arrivals at 100/s span ~40s
        assert a[-1] == pytest.approx(40.0, rel=0.15)

    def test_histogram_buckets(self):
        histogram = LatencyHistogram()
        assert histogram.edges_ms == sorted(histogram.edges_ms)
        for value in (0.01, 1.0, 3.0, 3.0, 50_000.0, 10_000_000.0):
            histogram.record(value)
        rows = histogram.to_config()
        assert sum(row["count"] for row in rows) == 6
        assert rows[-1]["le_ms"] == float("inf")     # overflow bucket

    def test_open_loop_against_a_daemon(self):
        with ServeDaemon(LOOPBACK, workers=2, max_batch=4, deadline_ms=1.0,
                         max_queue=64, debug_ops=True) as daemon:
            report = open_loop(
                daemon.address, [{"op": "_sleep", "seconds": 0.005}] * 60,
                rate_rps=300.0, concurrency=16, slo_ms=250.0,
                collect_responses=True)
        assert report["completed"] == 60
        assert report["errors"] == {}
        assert report["achieved_rps"] > 0
        latency = report["latency_ms"]
        assert latency["p999"] >= latency["p99"] >= latency["p50"] >= 5.0
        assert sum(row["count"] for row in report["histogram"]) == 60
        assert report["slo"]["target_ms"] == 250.0
        assert 0.0 <= report["slo"]["attainment"] <= 1.0
        assert all(response["slept"] == 0.005
                   for response in report["responses"])

    def test_open_loop_counts_sheds_past_saturation(self):
        # 1 worker x 50ms per request ≈ 20 rps capacity; offer 400 rps
        # with a 2-deep queue: the overload MUST be shed, not queued
        with ServeDaemon(LOOPBACK, workers=1, max_batch=1, deadline_ms=1.0,
                         max_queue=2, debug_ops=True) as daemon:
            report = open_loop(
                daemon.address, [{"op": "_sleep", "seconds": 0.05}] * 80,
                rate_rps=400.0, concurrency=32)
            stats = daemon.stats()
        assert report["shed"] > 0
        assert report["completed"] + sum(report["errors"].values()) == 80
        assert report["completed"] >= 3          # survivors were served
        assert stats["queue"]["depth"] <= 2      # the queue stayed bounded


# ----------------------------------------------------------------------
class TestRouterCLI:
    def test_router_and_loadgen_subcommands(self):
        """daemon --tcp → router --tcp → request/loadgen, fresh processes."""
        import subprocess
        import sys

        src = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                           os.pardir, "src"))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def popen(*argv):
            return subprocess.Popen(
                [sys.executable, "-m", "repro.serve", *argv],
                stdout=subprocess.PIPE, text=True, env=env)

        daemon = popen("daemon", "--tcp", "127.0.0.1:0", "--workers", "1",
                       "--max-batch", "2", "--deadline-ms", "5",
                       "--debug-ops")
        router = None
        try:
            ready = json.loads(daemon.stdout.readline())
            assert ready["transport"] == "tcp"
            replica_address = ready["socket"]

            router = popen("router", "--tcp", "127.0.0.1:0",
                           "--replica", f"g0={replica_address}")
            routed = json.loads(router.stdout.readline())
            assert routed["ready"] is True
            assert routed["groups"] == ["g0"]
            listen = routed["listen"]

            probe = subprocess.run(
                [sys.executable, "-m", "repro.serve", "request",
                 "--socket", listen, "--op", "stats"],
                capture_output=True, text=True, env=env, timeout=60)
            assert probe.returncode == 0, probe.stderr
            stats = json.loads(probe.stdout)["result"]
            assert stats["router"] is True
            assert stats["ring"]["healthy_groups"] == ["g0"]

            load = subprocess.run(
                [sys.executable, "-m", "repro.serve", "loadgen",
                 "--address", listen,
                 "--json", '{"op": "_sleep", "seconds": 0.002}',
                 "--rate", "200", "--requests", "20", "--slo-ms", "500"],
                capture_output=True, text=True, env=env, timeout=120)
            assert load.returncode == 0, load.stderr
            report = json.loads(load.stdout)
            assert report["completed"] == 20
            assert report["slo"]["target_ms"] == 500.0

            stop = subprocess.run(
                [sys.executable, "-m", "repro.serve", "request",
                 "--socket", listen, "--op", "shutdown"],
                capture_output=True, text=True, env=env, timeout=60)
            assert json.loads(stop.stdout)["result"]["router"] is True
            assert router.wait(timeout=60) == 0

            stop = subprocess.run(
                [sys.executable, "-m", "repro.serve", "request",
                 "--socket", replica_address, "--op", "shutdown"],
                capture_output=True, text=True, env=env, timeout=60)
            assert json.loads(stop.stdout)["result"] == {"stopped": True}
            assert daemon.wait(timeout=60) == 0
        finally:
            for process in (daemon, router):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait()
