"""Metrics, devmap baselines and experiment-runner smoke tests."""

import numpy as np
import pytest

from repro.datasets import DevMapDatasetBuilder
from repro.evaluation import geometric_mean, geomean_speedup, normalized_speedup, speedups_from_times
from repro.evaluation.experiments import fig1, fig8, tuning_time
from repro.evaluation.experiments.common import (
    evaluate_fold,
    normalized_table,
    search_tuner_speedups,
)
from repro.kernels import registry
from repro.simulator.microarch import TAHITI_7970
from repro.tuners import OpenTunerLike
from repro.tuners.devmap_baselines import (
    DeepTuneBaseline,
    GreweBaseline,
    Inst2VecBaseline,
    StaticMappingBaseline,
    XGBoostLikeBaseline,
)


class TestMetrics:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 0.0, 8.0]) == pytest.approx(4.0)  # ignores 0
        assert geometric_mean([]) == 0.0

    def test_speedups_from_times(self):
        sp = speedups_from_times([2.0, 3.0], [1.0, 6.0])
        np.testing.assert_allclose(sp, [2.0, 0.5])
        with pytest.raises(ValueError):
            speedups_from_times([1.0], [1.0, 2.0])

    def test_geomean_speedup_and_normalisation(self):
        assert geomean_speedup([4.0, 4.0], [2.0, 1.0]) == pytest.approx(
            np.sqrt(2.0 * 4.0))
        assert normalized_speedup(3.0, 4.0) == pytest.approx(0.75)
        assert normalized_speedup(3.0, 0.0) == 0.0


class TestDevmapBaselines:
    @pytest.fixture(scope="class")
    def devmap(self, extractor):
        specs = registry.opencl_kernels()[:18]
        return DevMapDatasetBuilder(TAHITI_7970, extractor=extractor,
                                    seed=2).build(specs, points_per_kernel=3)

    @pytest.mark.parametrize("baseline_cls", [StaticMappingBaseline,
                                              GreweBaseline, DeepTuneBaseline,
                                              Inst2VecBaseline,
                                              XGBoostLikeBaseline])
    def test_baseline_fit_predict_interface(self, devmap, baseline_cls):
        idx = list(range(len(devmap)))
        train, val = idx[: int(0.8 * len(idx))], idx[int(0.8 * len(idx)):]
        baseline = baseline_cls()
        if isinstance(baseline, (DeepTuneBaseline, Inst2VecBaseline)):
            baseline.epochs = 5
        baseline.fit(devmap, train)
        preds = baseline.predict(devmap, val)
        assert preds.shape == (len(val),)
        assert set(np.unique(preds)) <= {0, 1}

    def test_static_mapping_predicts_majority(self, devmap):
        baseline = StaticMappingBaseline().fit(devmap)
        labels = devmap.labels()
        majority = int(np.bincount(labels).argmax())
        preds = baseline.predict(devmap, list(range(len(devmap))))
        assert np.all(preds == majority)


class TestExperimentRunners:
    def test_fig1a_has_interior_structure(self):
        times = fig1.run_fig1a(scale=2.0)
        assert len(times) == 8
        assert all(t > 0 for t in times.values())
        # more threads is not monotonically better at this working set
        assert min(times, key=times.get) != 1

    def test_fig1b_small(self):
        result = fig1.run_fig1b(max_kernels=6, num_inputs=4)
        assert 0.0 <= result["percent_non_default"] <= 100.0
        assert sum(result["histogram"].values()) == result["num_combinations"]
        text = fig1.format_result(fig1.run_fig1a(), result)
        assert "Figure 1a" in text and "Figure 1b" in text

    def test_fig8_predicted_config_improves_time_and_counters(self):
        result = fig8.run()
        assert result["predicted_time"] <= result["default_time"]
        norm = result["normalized_counters"]
        # cache behaviour should stay in the same ballpark under the tuned
        # config (the paper reports reductions; our analytic cache model only
        # partially reproduces that, see EXPERIMENTS.md)
        assert norm["PAPI_L1_DCM"][0] <= norm["PAPI_L1_DCM"][1] * 1.2
        assert norm["PAPI_L3_LDM"][0] <= norm["PAPI_L3_LDM"][1] * 1.2
        assert "Figure 8" in fig8.format_result(result)

    def test_search_tuner_speedups_shape(self, small_openmp_dataset):
        ds = small_openmp_dataset
        val_idx = list(range(0, len(ds), 3))
        sp = search_tuner_speedups(ds, val_idx, OpenTunerLike, budget=4, seed=0)
        assert sp.shape == (len(val_idx),)
        assert np.all(sp > 0)

    def test_evaluate_fold_and_normalized_table(self, small_openmp_dataset):
        ds = small_openmp_dataset
        train_idx, val_idx = ds.kfold_by_kernel(k=4, seed=1)[0]
        fold = evaluate_fold(ds, train_idx, val_idx, include_search=False,
                             include_dl=("MGA",), epochs=6, seed=0)
        assert {"Default", "MGA", "Oracle"} <= set(fold)
        table = normalized_table([fold])
        assert table["Oracle"][0] == pytest.approx(1.0)
        assert 0.0 < table["MGA"][0] <= 1.05

    def test_tuning_time_comparison_shape(self):
        result = tuning_time.run(budget=4, train_kernels=4, train_inputs=2,
                                 epochs=3)
        assert {"MGA", "ytopt", "OpenTuner", "BLISS"} <= set(result)
        # MGA needs only the profiling executions; search tuners need `budget`
        assert result["MGA"]["kernel_executions"] == 2.0
        for name in ("ytopt", "OpenTuner", "BLISS"):
            assert result[name]["kernel_executions"] >= 4
            assert (result[name]["simulated_tuning_seconds"]
                    > result["MGA"]["simulated_tuning_seconds"])
        assert "Tuning-cost" in tuning_time.format_result(result)
