"""Chaos: SIGKILL daemon workers mid-hot-swap, assert the route heals.

Workers install the ``REPRO_FAULTS`` plan at startup and tick it once per
answered tune/map request, so ``kill_after=N`` SIGKILLs each worker after N
evaluations — with a swap issued while load is in flight, kills land around
the warm/flip window.  The daemon's monitor must heal the pool and the route
must converge onto exactly one version whose predictions are byte-identical
to a fresh, fault-free daemon serving that version.
"""

import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import MGATuner
from repro.serve import (
    DaemonClient,
    DaemonError,
    ModelRegistry,
    ServeDaemon,
)
from repro.simulator.microarch import COMET_LAKE_8C

TRAIN_KW = dict(gnn_hidden=12, gnn_out=12, dae_hidden=24, dae_code=8,
                mlp_hidden=16)
KERNEL = "polybench/gemm"


def _socket_path() -> str:
    return os.path.join(tempfile.mkdtemp(prefix="repro-chaos-"), "d.sock")


@pytest.fixture(scope="module")
def chaos_registry(tmp_path_factory, small_openmp_dataset, extractor):
    """v1 and v2 of one model (differently-seeded small tuners)."""
    root = str(tmp_path_factory.mktemp("chaos-registry"))
    registry = ModelRegistry(root)
    for seed in (0, 7):
        tuner = MGATuner(COMET_LAKE_8C, small_openmp_dataset.configs,
                         extractor=extractor, seed=seed, **TRAIN_KW)
        tuner.fit(small_openmp_dataset, epochs=2, dae_epochs=2)
        registry.publish("m", tuner)
    return root


def _request(client, scale):
    return client.request({"op": "tune", "model": "m", "kernel": KERNEL,
                           "scale": scale})


def _collect_reference(root, scales):
    """What a fresh, fault-free daemon pinned to v2 answers."""
    path = _socket_path()
    with ServeDaemon(path, registry_root=root, workers=1, max_batch=4,
                     deadline_ms=2.0, watch_interval_s=0.0):
        with DaemonClient(path) as client:
            client.swap("m", version=2)
            return {scale: _request(client, scale) for scale in scales}


class TestHotSwapChaos:
    def test_worker_sigkill_mid_swap_heals_onto_one_version(
            self, chaos_registry, monkeypatch):
        scales = [round(0.5 + 0.05 * i, 4) for i in range(24)]
        reference = _collect_reference(chaos_registry, scales)

        # every worker SIGKILLs itself after 12 answered evaluations: with
        # 2 workers and ~72 offered requests, kills land before, during
        # and after the swap below
        monkeypatch.setenv("REPRO_FAULTS", "kill_after=12")
        monkeypatch.setenv("REPRO_FAULT_SEED", "3")
        path = _socket_path()
        with ServeDaemon(path, registry_root=chaos_registry, workers=2,
                         max_batch=4, deadline_ms=5.0, max_queue=256,
                         watch_interval_s=0.0) as daemon:
            with DaemonClient(path) as admin:
                admin.swap("m", version=1)

                outcomes = []

                def one(scale):
                    try:
                        with DaemonClient(path, retries=3) as client:
                            return ("ok", _request(client, scale))
                    except DaemonError as exc:
                        return (exc.code, None)
                    except (OSError, ConnectionError) as exc:
                        return (type(exc).__name__, None)

                with ThreadPoolExecutor(max_workers=8) as pool:
                    futures = [pool.submit(one, scale)
                               for scale in scales * 3]
                    time.sleep(0.1)      # load flowing and workers dying
                    swapped = False
                    for _ in range(50):  # warm can race a SIGKILL: retry
                        try:
                            admin.swap("m", version=2)
                            swapped = True
                            break
                        except (DaemonError, OSError, ConnectionError):
                            time.sleep(0.1)
                    outcomes = [future.result() for future in futures]
                assert swapped

                # every offered request was answered exactly once: a real
                # result or a structured worker_crashed error, never silence
                assert len(outcomes) == len(scales) * 3
                codes = {code for code, _ in outcomes}
                assert codes <= {"ok", "worker_crashed"}
                answered = [result for code, result in outcomes
                            if code == "ok"]
                assert answered
                assert {result["version"] for result in answered} <= {1, 2}

                # stop the chaos plan for workers healed from here on, then
                # wait for the pool to converge (planned workers die off)
                monkeypatch.delenv("REPRO_FAULTS")
                monkeypatch.delenv("REPRO_FAULT_SEED")
                deadline = time.monotonic() + 30.0
                stable = {}
                while time.monotonic() < deadline:
                    try:
                        with DaemonClient(path, retries=5) as client:
                            stable = {scale: _request(client, scale)
                                      for scale in scales}
                        break
                    except (DaemonError, OSError, ConnectionError):
                        time.sleep(0.2)
                else:
                    pytest.fail("daemon never converged after chaos")

                # healed route serves exactly one version — the swap target —
                # byte-identical to the fresh fault-free daemon on v2
                assert {r["version"] for r in stable.values()} == {2}
                for scale in scales:
                    for field in ("config_label", "num_threads", "schedule",
                                  "chunk_size", "counters", "version"):
                        assert stable[scale][field] == \
                            reference[scale][field]

                stats = daemon.stats()
                assert stats["workers"]["restarts"] >= 1   # kills happened
                assert stats["workers"]["alive"] == 2      # and healed
                assert stats["lifecycle"]["routes"]["m"][
                    "active_version"] == 2
