"""Parallel tuning campaigns: worker-count invariance, batch ask/tell
semantics and checkpoint/resume exactness.

The load-bearing property: a campaign's history is a pure function of
(tuner, seed, space, objective spec, batch size) — evaluating with one
worker or a pool of four, or killing the campaign and resuming it from a
checkpoint, must reproduce byte-identical ``TuningResult.history``.
"""

import os

import numpy as np
import pytest

from repro.simulator.microarch import COMET_LAKE_8C, SKYLAKE_4114
from repro.tuners import (
    TUNER_CLASSES,
    SimObjectiveSpec,
    TuningCampaign,
    full_search_space,
    make_tuner,
    thread_search_space,
)

STRATEGIES = sorted(TUNER_CLASSES)


def _make(name, budget=12, seed=0):
    if name == "oracle":
        return make_tuner(name)
    return make_tuner(name, budget=budget, seed=seed)


def _spec(**overrides):
    defaults = dict(kernel_uid="polybench/atax", arch=COMET_LAKE_8C,
                    scale=0.2, noise=0.015, seed=42)
    defaults.update(overrides)
    return SimObjectiveSpec(**defaults)


@pytest.fixture(scope="module")
def space():
    """A 36-configuration Table-2-style space (4 threads x 3 x 3)."""
    return full_search_space(threads=(1, 2, 4, 8), chunks=(1, 32, 256))


class TestWorkerInvariance:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_parallel_history_identical_to_serial(self, strategy, seed, space):
        histories = {}
        for workers in (1, 4):
            campaign = TuningCampaign(_make(strategy, seed=seed), space,
                                      _spec(), workers=workers, batch_size=4)
            histories[workers] = campaign.run().history
        assert histories[1] == histories[4]
        assert len(histories[1]) == (len(space) if strategy == "oracle"
                                     else 12)

    def test_batch_size_fixed_by_default(self, space):
        """The default batch size must not depend on the worker count."""
        h = {}
        for workers in (1, 3):
            campaign = TuningCampaign(_make("random"), space, _spec(),
                                      workers=workers)
            h[workers] = campaign.run().history
        assert h[1] == h[3]

    def test_history_independent_of_hash_randomization(self):
        """Proposals must not depend on set iteration order: two processes
        with different PYTHONHASHSEEDs must produce the same history (this
        is what cross-process checkpoint/resume exactness rests on)."""
        import subprocess
        import sys
        script = (
            "from repro.simulator.microarch import COMET_LAKE_8C\n"
            "from repro.tuners import (SimObjectiveSpec, TuningCampaign,\n"
            "                          full_search_space, make_tuner)\n"
            "space = full_search_space(threads=(1, 2, 4, 8),\n"
            "                          chunks=(1, 32, 256))\n"
            "spec = SimObjectiveSpec(kernel_uid='polybench/atax',\n"
            "                        arch=COMET_LAKE_8C, scale=0.2, seed=42)\n"
            "c = TuningCampaign(make_tuner('opentuner', budget=16, seed=0),\n"
            "                   space, spec, batch_size=4)\n"
            "print(repr([(cfg.as_tuple(), t) for cfg, t in c.run().history]))\n"
        )
        import repro
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        outputs = []
        for hashseed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=src)
            proc = subprocess.run([sys.executable, "-c", script], env=env,
                                  capture_output=True, text=True, check=True)
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]

    def test_evaluations_order_independent(self):
        """One configuration's measurement never depends on the others."""
        spec = _spec(noise=0.05)
        objective = spec.build()
        space = thread_search_space(COMET_LAKE_8C)
        forward = [objective(c, i) for i, c in enumerate(space)]
        backward = [objective(space[i], i)
                    for i in reversed(range(len(space)))][::-1]
        assert forward == backward


class TestAskTell:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_ask_returns_distinct_unseen(self, strategy, space):
        tuner = _make(strategy)
        rng = np.random.default_rng(0)
        history = [(space[0], 1.0), (space[1], 0.5)]
        batch = tuner.ask(space, history, rng, k=4)
        assert len(batch) == len(set(batch)) == 4
        assert not {space[0], space[1]} & set(batch)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_ask_exhausts_space_gracefully(self, strategy):
        small = thread_search_space(COMET_LAKE_8C, threads=(1, 2, 4))
        tuner = _make(strategy)
        rng = np.random.default_rng(0)
        history = [(c, float(i + 1)) for i, c in enumerate(small)]
        assert tuner.ask(small, history, rng, k=4) == []

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_campaign_batch1_matches_serial_tune(self, strategy, space):
        """ask/tell with k=1 and the classic tune() walk the same path."""
        spec = _spec()
        objective = spec.build()
        serial = _make(strategy).tune(
            lambda c: objective(c, space.index_of(c)), space)
        campaign = TuningCampaign(_make(strategy), space, spec, batch_size=1)
        assert campaign.run().history == serial.history


class TestCheckpointResume:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_kill_then_resume_reproduces_uninterrupted(self, strategy,
                                                       tmp_path, space):
        ck = os.path.join(tmp_path, "ck")
        spec = _spec()
        full = TuningCampaign(_make(strategy), space, spec,
                              batch_size=4).run()
        partial = TuningCampaign(_make(strategy), space, spec, batch_size=4,
                                 checkpoint_path=ck, checkpoint_every=1)
        partial.run(max_evals=5)     # rounds up to two whole batches
        assert 0 < len(partial.history) < len(full.history)

        resumed = TuningCampaign.resume(ck, workers=2)
        assert resumed.history == partial.history
        result = resumed.run()
        assert result.history == full.history

    def test_resume_restores_tuner_and_rng_state(self, tmp_path, space):
        ck = os.path.join(tmp_path, "ck")
        campaign = TuningCampaign(_make("opentuner"), space, _spec(),
                                  batch_size=4, checkpoint_path=ck)
        campaign.run(max_evals=8)
        resumed = TuningCampaign.resume(ck)
        assert resumed.tuner.get_state() == campaign.tuner.get_state()
        assert (resumed._rng.bit_generator.state
                == campaign._rng.bit_generator.state)
        assert resumed.batch_size == campaign.batch_size

    def test_resume_falls_back_after_interrupted_swap(self, tmp_path, space):
        """A kill between the two checkpoint renames leaves only the
        ``.previous-*`` copy; resume must pick it up."""
        ck = os.path.join(tmp_path, "ck")
        campaign = TuningCampaign(_make("random"), space, _spec(),
                                  batch_size=4, checkpoint_path=ck)
        campaign.run(max_evals=4)
        os.rename(ck, TuningCampaign._previous_path(ck))
        resumed = TuningCampaign.resume(ck)
        assert resumed.history == campaign.history

    def test_resume_promotes_fallback_and_cleans_up(self, tmp_path, space):
        """Resuming from a ``.previous-*`` fallback must promote it back to
        the canonical path and leave no swap leftovers behind."""
        ck = os.path.join(tmp_path, "ck")
        campaign = TuningCampaign(_make("random"), space, _spec(),
                                  batch_size=4, checkpoint_path=ck)
        campaign.run(max_evals=4)
        os.rename(ck, TuningCampaign._previous_path(ck))
        resumed = TuningCampaign.resume(ck)
        assert resumed.history == campaign.history
        assert os.path.isdir(ck)     # fallback promoted back
        assert not os.path.exists(TuningCampaign._previous_path(ck))
        # the next checkpoint must land at the canonical path
        resumed.run(max_evals=4)
        assert TuningCampaign.resume(ck).history == resumed.history

    def test_resume_removes_stale_swap_leftovers(self, tmp_path, space):
        """A crash *after* the final rename can strand ``.previous-*`` and
        ``.staging-*`` next to a valid checkpoint; resume must remove both
        rather than let them shadow a later interrupted swap."""
        import shutil
        ck = os.path.join(tmp_path, "ck")
        campaign = TuningCampaign(_make("random"), space, _spec(),
                                  batch_size=4, checkpoint_path=ck)
        campaign.run(max_evals=8)
        stale_previous = TuningCampaign._previous_path(ck)
        stale_staging = TuningCampaign._staging_path(ck)
        shutil.copytree(ck, stale_previous)
        shutil.copytree(ck, stale_staging)
        resumed = TuningCampaign.resume(ck)
        assert resumed.history == campaign.history
        assert not os.path.exists(stale_previous)
        assert not os.path.exists(stale_staging)

    def test_resume_rejects_non_campaign_artifact(self, tmp_path):
        from repro.serve.artifacts import ArtifactError
        with pytest.raises((ArtifactError, OSError)):
            TuningCampaign.resume(os.path.join(tmp_path, "missing"))

    def test_resume_rejects_unknown_override(self, tmp_path, space):
        ck = os.path.join(tmp_path, "ck")
        campaign = TuningCampaign(_make("random"), space, _spec(),
                                  batch_size=4, checkpoint_path=ck)
        campaign.run(max_evals=4)
        with pytest.raises(TypeError):
            TuningCampaign.resume(ck, batch_size=2)


class TestObjectiveSpec:
    def test_config_round_trip(self):
        spec = _spec(arch=SKYLAKE_4114, repeats=3, walltime_scale=1.0)
        clone = SimObjectiveSpec.from_config(spec.to_config())
        assert clone == spec

    def test_custom_arch_round_trip(self):
        import dataclasses
        custom = dataclasses.replace(COMET_LAKE_8C, name="bespoke", cores=6)
        clone = SimObjectiveSpec.from_config(_spec(arch=custom).to_config())
        assert clone.arch == custom

    def test_repeats_take_median(self):
        space = thread_search_space(COMET_LAKE_8C)
        noisy = _spec(noise=0.2, repeats=5).build()
        single = _spec(noise=0.2, repeats=1).build()
        assert noisy(space[3], 3) != single(space[3], 3)
        assert noisy(space[3], 3) == noisy(space[3], 3)


class TestValidation:
    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            make_tuner("annealing")

    def test_workers_validated(self, space):
        with pytest.raises(ValueError):
            TuningCampaign(_make("random"), space, _spec(), workers=0)

    def test_batch_size_validated(self, space):
        with pytest.raises(ValueError):
            TuningCampaign(_make("random"), space, _spec(), batch_size=0)

    def test_oracle_budget_covers_space(self, space):
        assert _make("oracle").effective_budget(space) == len(space)
