"""Unified experiment pipeline: specs, registry, stage cache, CLI, parity."""

import json
import os

import numpy as np
import pytest

from repro.pipeline import (
    EXPERIMENT_MODULES,
    ExperimentSpec,
    Report,
    experiment_names,
    get_experiment,
    get_stage_impl,
    load_all,
    run_experiment,
)
from repro.pipeline.cli import main as cli_main

ALL_EXPERIMENTS = ["fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                   "table3", "tuning_time"]

#: tiny-but-real fig4 configuration reused by several tests
FIG4_SMALL = dict(max_kernels=4, num_inputs=2, folds=2, epochs=2, budget=3)


def _deep_equal(a, b, path="result"):
    """Strict structural + bitwise equality of two experiment results."""
    assert type(a) is type(b), (path, type(a), type(b))
    if isinstance(a, dict):
        assert list(a) == list(b), path
        for k in a:
            _deep_equal(a[k], b[k], f"{path}.{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _deep_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and np.array_equal(a, b), path
    elif hasattr(a, "speedups") and hasattr(a, "name"):    # ApproachResult
        assert a.name == b.name, path
        assert np.array_equal(a.speedups, b.speedups), path
    elif a.__class__.__name__.endswith("Dataset"):
        assert len(a.samples) == len(b.samples), path
    else:
        assert a == b, (path, a, b)


# ----------------------------------------------------------------------
# registry + spec round-trips
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_figure_and_table_is_registered(self):
        assert experiment_names() == ALL_EXPERIMENTS
        entries = load_all()
        assert sorted(entries) == sorted(ALL_EXPERIMENTS)

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_spec_validates_and_impls_resolve(self, name):
        spec = get_experiment(name).spec
        spec.validate()
        assert spec.stages[-1].kind == Report.kind
        for stage in spec.stages:
            assert callable(get_stage_impl(stage.impl))

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_spec_config_round_trip(self, name):
        spec = get_experiment(name).spec
        # through real JSON, as the CLI `describe --json` output would be
        config = json.loads(json.dumps(spec.to_config()))
        restored = ExperimentSpec.from_config(config)
        assert restored == spec
        restored.validate()

    def test_unknown_experiment_and_parameter_errors(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig42")
        with pytest.raises(TypeError, match="unknown parameter"):
            run_experiment("fig8", overrides={"bogus": 1}, cache_dir=None)

    def test_registry_module_table_is_importable(self):
        for name, module in EXPERIMENT_MODULES.items():
            assert module.startswith("repro.evaluation.experiments.")


# ----------------------------------------------------------------------
# stage cache behaviour
# ----------------------------------------------------------------------
class TestStageCache:
    def test_hit_miss_heal_and_identical_results(self, tmp_path):
        cache = str(tmp_path / "stages")
        r1 = run_experiment("fig4", overrides=FIG4_SMALL, cache_dir=cache)
        assert [s.cache for s in r1.stages] == ["miss", "miss", "miss",
                                                "uncached"]
        r2 = run_experiment("fig4", overrides=FIG4_SMALL, cache_dir=cache)
        assert [s.cache for s in r2.stages] == ["hit", "hit", "hit",
                                                "uncached"]
        _deep_equal(r1.result, r2.result)

        # training-only change: dataset + search stages are reused
        r3 = run_experiment("fig4", overrides=dict(FIG4_SMALL, epochs=3),
                            cache_dir=cache)
        assert [s.cache for s in r3.stages] == ["hit", "hit", "miss",
                                                "uncached"]

        # identical recipe across experiments: fig1 reuses fig4's dataset
        r4 = run_experiment("fig1",
                            overrides=dict(max_kernels=4, num_inputs=2),
                            cache_dir=cache)
        assert r4.stages[0].cache == "hit"
        assert r4.stages[0].key == r1.stages[0].key

        # corrupted payload -> integrity check fails -> miss + heal
        key = r1.stages[0].key
        payload = os.path.join(cache, key[:2], key, "arrays.npz")
        with open(payload, "r+b") as fh:
            fh.seek(64)
            fh.write(b"\xde\xad\xbe\xef")
        r5 = run_experiment("fig4", overrides=FIG4_SMALL, cache_dir=cache)
        assert [s.cache for s in r5.stages] == ["miss", "hit", "hit",
                                                "uncached"]
        _deep_equal(r1.result, r5.result)
        r6 = run_experiment("fig4", overrides=FIG4_SMALL, cache_dir=cache)
        assert r6.stages[0].cache == "hit"

    def test_cached_model_artifact_round_trips(self, tmp_path):
        cache = str(tmp_path / "stages")
        kw = dict(budget=3, train_kernels=3, train_inputs=2, epochs=2)
        r1 = run_experiment("tuning_time", overrides=kw, cache_dir=cache)
        r2 = run_experiment("tuning_time", overrides=kw, cache_dir=cache)
        assert [s.cache for s in r2.stages] == ["hit", "hit", "hit",
                                                "uncached"]
        for name in ("OpenTuner", "ytopt", "BLISS"):
            assert r1.result[name] == r2.result[name]
        # the cached tuner must predict identically (wall time may differ)
        m1, m2 = dict(r1.result["MGA"]), dict(r2.result["MGA"])
        m1.pop("inference_wall_seconds")
        m2.pop("inference_wall_seconds")
        assert m1 == m2

    def test_codec_preserves_numpy_scalar_types(self):
        """np.float64 subclasses float; it must still round-trip typed."""
        from repro.pipeline.codec import decode_value, encode_value

        payload = {"f64": np.float64(1.5), "f32": np.float32(0.25),
                   "i64": np.int64(7), "b": np.bool_(True),
                   "plain": 1.5, "n": None}
        tree, arrays = encode_value(payload)
        decoded = decode_value(json.loads(json.dumps(tree)), arrays)
        for key in payload:
            assert type(decoded[key]) is type(payload[key]), key
            assert decoded[key] == payload[key] or (
                decoded[key] is None and payload[key] is None), key

    def test_cache_disabled_runs_everything(self):
        r = run_experiment("fig8", cache_dir=None)
        assert [s.cache for s in r.stages] == ["disabled", "uncached"]
        assert r.result["predicted_time"] <= r.result["default_time"]


# ----------------------------------------------------------------------
# byte-identity with the pre-pipeline experiment code
# ----------------------------------------------------------------------
class TestLegacyParity:
    def test_search_stage_matches_serial_tune_loop(self, small_openmp_dataset):
        """The campaign-backed search equals the old hand-rolled loop."""
        from repro.evaluation.experiments.common import search_tuner_speedups
        from repro.tuners import SearchSpace, YtoptTuner

        ds = small_openmp_dataset
        val_idx = list(range(len(ds)))
        new = search_tuner_speedups(ds, val_idx, YtoptTuner, budget=4, seed=3)

        # the pre-pipeline implementation, verbatim
        space = SearchSpace(ds.configs)
        per_kernel = {}
        for i in val_idx:
            per_kernel.setdefault(ds.samples[i].kernel_uid, []).append(i)
        old = np.zeros(len(val_idx))
        position = {i: pos for pos, i in enumerate(val_idx)}
        for j, (kernel, indices) in enumerate(sorted(per_kernel.items())):
            by_scale = sorted(indices, key=lambda i: ds.samples[i].scale)
            ref_ids = sorted({by_scale[0], by_scale[len(by_scale) // 2],
                              by_scale[-1]})
            ref_times = np.stack([ds.samples[i].times for i in ref_ids])

            def objective(config, _times=ref_times, _space=space):
                column = _times[:, _space.index_of(config)]
                return float(np.exp(np.mean(np.log(np.maximum(column,
                                                              1e-15)))))

            result = YtoptTuner(budget=4, seed=3 + j).tune(objective, space)
            chosen = space.index_of(result.best_config)
            for i in indices:
                old[position[i]] = ds.samples[i].speedup_of(chosen)
        np.testing.assert_array_equal(new, old)

    def test_fig4_pipeline_matches_hand_rolled_flow(self):
        """run() == the old build/evaluate_fold/normalize flow, bit for bit."""
        from repro.evaluation.experiments import fig4
        from repro.evaluation.experiments.common import (
            build_openmp_dataset,
            evaluate_fold,
            normalized_table,
            select_openmp_kernels,
        )
        from repro.simulator.microarch import COMET_LAKE_8C
        from repro.tuners.space import thread_search_space

        space = thread_search_space(COMET_LAKE_8C)
        specs = select_openmp_kernels(FIG4_SMALL["max_kernels"])
        dataset = build_openmp_dataset(COMET_LAKE_8C, space, specs,
                                       num_inputs=FIG4_SMALL["num_inputs"],
                                       seed=0)
        fold_results = []
        for train_idx, val_idx in dataset.kfold_by_kernel(
                k=FIG4_SMALL["folds"], seed=0):
            fold_results.append(evaluate_fold(
                dataset, train_idx, val_idx, include_search=True,
                epochs=FIG4_SMALL["epochs"], budget=FIG4_SMALL["budget"],
                seed=0))
        old_table = normalized_table(fold_results)

        new = fig4.run(**FIG4_SMALL)
        assert list(new["normalized"]) == list(old_table)
        for name in old_table:
            assert old_table[name] == new["normalized"][name], name
        for old_fold, new_fold in zip(fold_results, new["fold_results"]):
            assert list(old_fold) == list(new_fold)
            for name in old_fold:
                np.testing.assert_array_equal(old_fold[name].speedups,
                                              new_fold[name].speedups)

    def test_workers_do_not_change_results(self):
        kw = dict(budget=3, train_kernels=3, train_inputs=2, epochs=2)
        serial = run_experiment("tuning_time", overrides=kw, workers=1,
                                cache_dir=None).result
        fanned = run_experiment("tuning_time", overrides=kw, workers=3,
                                cache_dir=None).result
        for name in ("OpenTuner", "ytopt", "BLISS"):
            assert serial[name] == fanned[name], name

    def test_legacy_shims_accept_spec_parameters(self):
        from repro.evaluation.experiments import fig1
        result = fig1.run_fig1b(max_kernels=4, num_inputs=2)
        assert set(result) == {"histogram", "percent_non_default",
                               "num_combinations"}
        with pytest.raises(TypeError, match="unknown parameter"):
            fig1.run_fig1b(max_loops=4)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_list_shows_every_experiment(self, capsys):
        assert cli_main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in rows] == ALL_EXPERIMENTS
        for row in rows:
            assert row["stages"], row["name"]
            assert all(stage["registered"] for stage in row["stages"])

    def test_describe(self, capsys):
        assert cli_main(["describe", "fig4", "--json"]) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["name"] == "fig4"
        assert {"arch", "epochs", "budget", "seed"} <= set(row["params"])
        assert cli_main(["describe", "nope"]) == 1

    def test_run_twice_hits_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "stages")
        args = ["run", "fig8", "--json", "--cache", cache,
                "--set", "target_bytes=8e6"]
        assert cli_main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert cli_main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert [s["cache"] for s in first["stages"]] == ["miss", "uncached"]
        assert [s["cache"] for s in second["stages"]] == ["hit", "uncached"]
        assert first["result"] == second["result"]
        assert first["result"]["predicted_time"] <= first["result"]["default_time"]

    def test_run_text_output(self, capsys, tmp_path):
        assert cli_main(["run", "fig8", "--no-cache",
                         "--set", "target_bytes=8e6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_bad_override_reports_error(self, capsys):
        assert cli_main(["run", "fig8", "--no-cache", "--set", "bogus=1"]) == 1

    def test_set_accepts_python_style_literals(self):
        from repro.pipeline.cli import _parse_overrides

        parsed = _parse_overrides(["a=False", "b=True", "c=None",
                                   "d=false", "e=3", "f=comet_lake",
                                   "g=[1, 2]"])
        assert parsed == {"a": False, "b": True, "c": None, "d": False,
                          "e": 3, "f": "comet_lake", "g": [1, 2]}

    def test_set_rejects_shape_mismatches(self, capsys):
        # a bare string for a list/bool/numeric parameter is always a typo
        assert cli_main(["run", "table3", "--no-cache",
                         "--set", "include_baselines=Grewe et al."]) == 1
        assert "expects a list" in capsys.readouterr().err
        assert cli_main(["run", "fig4", "--no-cache",
                         "--set", "include_search=no"]) == 1
        assert "expects true/false" in capsys.readouterr().err
        assert cli_main(["run", "fig8", "--no-cache",
                         "--set", "target_bytes=big"]) == 1
        assert "expects a number" in capsys.readouterr().err
        # None-default count parameters reject bare strings too
        assert cli_main(["run", "fig7", "--no-cache",
                         "--set", "max_apps=foo"]) == 1
        assert "expects a number or null" in capsys.readouterr().err

    def test_stale_staging_dirs_are_swept(self, tmp_path):
        import time

        from repro.pipeline.cache import StageCache

        root = tmp_path / "stages"
        stale = root / "ab" / ".staging-123-abcdef"
        fresh = root / "ab" / ".staging-456-fedcba"
        for d in (stale, fresh):
            d.mkdir(parents=True)
        old = time.time() - 7200
        os.utime(stale, (old, old))
        StageCache(root)
        assert not stale.exists()       # orphan of a killed run: swept
        assert fresh.exists()           # recent (possibly active): kept
