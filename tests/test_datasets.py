"""Dataset builder tests (OpenMP tuning and device mapping)."""

import numpy as np
import pytest

from repro.datasets import (
    DevMapDatasetBuilder,
    OpenMPDatasetBuilder,
    default_input_targets,
)
from repro.datasets.devmap import CPU_LABEL, GPU_LABEL
from repro.kernels import registry
from repro.simulator.microarch import COMET_LAKE_8C, TAHITI_7970


class TestInputTargets:
    def test_default_targets_span_paper_range(self):
        targets = default_input_targets()
        assert len(targets) == 30
        assert targets[0] == pytest.approx(3.5e3)
        assert targets[-1] == pytest.approx(0.5e9)
        assert np.all(np.diff(targets) > 0)


class TestOpenMPDataset:
    def test_shape_and_labels(self, small_openmp_dataset):
        ds = small_openmp_dataset
        assert len(ds) == len(ds.kernel_uids) * len(ds.input_sizes)
        assert ds.num_configs == 8
        labels = ds.labels()
        assert labels.min() >= 0 and labels.max() < ds.num_configs
        for sample in ds.samples:
            assert sample.oracle_time == min(sample.times)
            assert sample.oracle_speedup >= 1.0 - 1e-9

    def test_counters_collected_at_default(self, small_openmp_dataset):
        for sample in small_openmp_dataset.samples:
            assert set(sample.counters) == set(small_openmp_dataset.counter_names)
            assert all(v >= 0 for v in sample.counters.values())

    def test_counter_matrix_shape(self, small_openmp_dataset):
        m = small_openmp_dataset.counter_matrix()
        assert m.shape == (len(small_openmp_dataset), 5)

    def test_kfold_by_kernel_disjoint(self, small_openmp_dataset):
        ds = small_openmp_dataset
        for train, val in ds.kfold_by_kernel(k=4):
            train_kernels = {ds.samples[i].kernel_uid for i in train}
            val_kernels = {ds.samples[i].kernel_uid for i in val}
            assert not (train_kernels & val_kernels)
            assert len(train) + len(val) == len(ds)

    def test_leave_one_application_out(self, small_openmp_dataset):
        ds = small_openmp_dataset
        splits = ds.leave_one_application_out()
        assert len(splits) == len(ds.kernel_uids)
        for kernel, train, val in splits:
            assert all(ds.samples[i].kernel_uid == kernel for i in val)
            assert all(ds.samples[i].kernel_uid != kernel for i in train)

    def test_split_unseen_inputs_holds_out_scales(self, small_openmp_dataset):
        ds = small_openmp_dataset
        for train, val in ds.split_unseen_inputs(k=3, holdout_fraction=0.25):
            train_pairs = {(ds.samples[i].kernel_uid, ds.samples[i].target_bytes)
                           for i in train}
            val_pairs = {(ds.samples[i].kernel_uid, ds.samples[i].target_bytes)
                         for i in val}
            assert not (train_pairs & val_pairs)

    def test_builder_requires_configs(self):
        with pytest.raises(ValueError):
            OpenMPDatasetBuilder(COMET_LAKE_8C, [])

    def test_speedup_of_default_is_one(self, small_openmp_dataset):
        ds = small_openmp_dataset
        default_index = next(i for i, c in enumerate(ds.configs)
                             if c.num_threads == COMET_LAKE_8C.cores)
        for sample in ds.samples:
            assert sample.speedup_of(default_index) == pytest.approx(1.0)


class TestDevMapDataset:
    @pytest.fixture(scope="class")
    def devmap(self, extractor):
        specs = registry.opencl_kernels()[:20]
        builder = DevMapDatasetBuilder(TAHITI_7970, extractor=extractor, seed=0)
        return builder.build(specs, points_per_kernel=3)

    def test_size_and_labels(self, devmap):
        assert len(devmap) == 60
        labels = devmap.labels()
        assert set(np.unique(labels)) <= {CPU_LABEL, GPU_LABEL}
        for s in devmap.samples:
            assert s.oracle_time == min(s.cpu_time, s.gpu_time)
            expected = CPU_LABEL if s.cpu_time <= s.gpu_time else GPU_LABEL
            assert s.label == expected

    def test_extra_features(self, devmap):
        extra = devmap.extra_features()
        assert extra.shape == (len(devmap), 2)
        assert np.all(np.isfinite(extra)) and np.all(extra >= 0)

    def test_stratified_kfold_balances_classes(self, devmap):
        labels = devmap.labels()
        if len(np.unique(labels)) < 2:
            pytest.skip("degenerate label distribution in tiny subset")
        for train, val in devmap.stratified_kfold(k=5):
            assert not (set(train) & set(val))
            # both classes present in training data whenever globally present
            assert len(np.unique(labels[train])) == len(np.unique(labels))

    def test_static_mapping_label(self, devmap):
        assert devmap.static_mapping_label() in (CPU_LABEL, GPU_LABEL)
