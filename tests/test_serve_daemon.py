"""The serving daemon: protocol, batching, failure paths, CLI, wiring."""

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import MGATuner
from repro.kernels import registry as kernel_registry
from repro.serve import (
    DaemonClient,
    DaemonError,
    InferenceEngine,
    ModelRegistry,
    ServeDaemon,
    TuneRequest,
    TuningService,
)
from repro.simulator.microarch import COMET_LAKE_8C, SKYLAKE_4114
from repro.tuners.campaign import (
    LookupObjectiveSpec,
    SearchSession,
    run_search_sessions,
)
from repro.tuners.space import full_search_space

TRAIN_KW = dict(gnn_hidden=12, gnn_out=12, dae_hidden=24, dae_code=8,
                mlp_hidden=16)


def _socket_path() -> str:
    # AF_UNIX paths are length-limited (~107 bytes); stay in /tmp
    return os.path.join(tempfile.mkdtemp(prefix="repro-daemon-"), "d.sock")


@pytest.fixture(scope="module")
def registry_root(tmp_path_factory, small_openmp_dataset, extractor):
    """A registry with one published (small, fast-trained) OpenMP tuner."""
    ds = small_openmp_dataset
    tuner = MGATuner(COMET_LAKE_8C, ds.configs, extractor=extractor, seed=0,
                     **TRAIN_KW)
    tuner.fit(ds, epochs=2, dae_epochs=2)
    root = str(tmp_path_factory.mktemp("daemon-registry"))
    ModelRegistry(root).publish("openmp", tuner)
    return root


@pytest.fixture(scope="module")
def serving_daemon(registry_root):
    """One warm daemon shared by the serving tests (module scoped)."""
    path = _socket_path()
    with ServeDaemon(path, registry_root=registry_root, workers=2,
                     max_batch=4, deadline_ms=5.0, max_queue=64,
                     preload=["openmp"]) as daemon:
        yield daemon


def _sessions(count: int):
    space = full_search_space(max_threads=SKYLAKE_4114.max_threads)
    rng = np.random.default_rng(3)
    sessions = []
    for i in range(count):
        times = rng.uniform(1e-3, 1e-1, size=(2, len(space)))
        sessions.append(SearchSession(
            tuner_name="random", tuner_config={"budget": 6, "seed": i},
            space=space.to_config(), objective=LookupObjectiveSpec(times)))
    return sessions


# ----------------------------------------------------------------------
class TestDaemonServing:
    def test_concurrent_tunes_byte_identical_to_engine(self, registry_root,
                                                       serving_daemon):
        specs = [kernel_registry.get_kernel(uid)
                 for uid in ("polybench/atax", "polybench/gemm",
                             "rodinia/kmeans")]
        requests = [(spec, scale) for spec in specs
                    for scale in (0.5, 1.0, 2.0)]

        tuner = ModelRegistry(registry_root).load("openmp")
        with InferenceEngine(tuner, max_batch_size=4,
                             max_wait_ms=1.0) as engine:
            reference = [engine.tune(spec, scale)
                         for spec, scale in requests]

        def one(item):
            spec, scale = item
            with DaemonClient(serving_daemon.socket_path) as client:
                return client.request({"op": "tune", "model": "openmp",
                                       "kernel": spec.uid, "scale": scale})

        with ThreadPoolExecutor(max_workers=6) as pool:
            responses = list(pool.map(one, requests))

        for response, (config, counters) in zip(responses, reference):
            assert response["config_label"] == config.label()
            assert response["num_threads"] == config.num_threads
            assert response["schedule"] == config.schedule.value
            assert response["chunk_size"] == config.chunk_size
            assert response["counters"] == dict(counters)
            assert response["version"] == 1
            assert response["latency_ms"] > 0

        stats = serving_daemon.stats()
        assert stats["per_model"]["openmp"] >= len(requests)
        assert stats["batches"]["count"] >= 1
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"] > 0

    def test_tuning_service_forwards_to_daemon(self, serving_daemon):
        with TuningService(daemon=serving_daemon.socket_path) as service:
            response = service.tune(TuneRequest(
                model="openmp", kernel="polybench/atax", target_bytes=32e6))
            assert response.model == "openmp" and response.version == 1
            assert response.config_label.startswith(
                f"t{response.num_threads}/")
            assert response.scale > 0
            stats = service.stats()
        assert stats["requests"] == 1 and stats["errors"] == 0
        assert "daemon" in stats

    def test_request_error_codes(self, serving_daemon):
        with DaemonClient(serving_daemon.socket_path) as client:
            with pytest.raises(DaemonError) as err:
                client.request({"op": "tune", "model": "ghost",
                                "kernel": "polybench/gemm"})
            assert err.value.code == "bad_request"
            with pytest.raises(DaemonError) as err:
                client.request({"op": "tune", "model": "openmp",
                                "kernel": "polybench/gemm",
                                "scale": 1.0, "target_bytes": 1e6})
            assert "target_bytes" in err.value.message
            with pytest.raises(DaemonError) as err:
                client.request({"op": "_sleep", "seconds": 0.01})
            assert "debug ops are disabled" in err.value.message
            # the connection survives every error response
            assert client.ping()


# ----------------------------------------------------------------------
class TestDaemonFailurePaths:
    def test_malformed_requests(self):
        path = _socket_path()
        with ServeDaemon(path, workers=1, max_batch=2, deadline_ms=2.0):
            raw = socket.socket(socket.AF_UNIX)
            raw.connect(path)
            raw.sendall(b"not json at all\n")
            response = json.loads(raw.recv(65536).split(b"\n")[0])
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            raw.close()

            with DaemonClient(path) as client:
                for document in ({"op": "nope"}, {"op": "tune"},
                                 {"op": "session"}, {"no_op": True}):
                    with pytest.raises(DaemonError) as err:
                        client.request(document)
                    assert err.value.code == "bad_request"
                assert client.ping()     # daemon is still healthy

    def test_queue_overflow_sheds_with_structured_response(self):
        path = _socket_path()
        with ServeDaemon(path, workers=1, max_batch=1, deadline_ms=1.0,
                         max_queue=2, debug_ops=True) as daemon:
            with ThreadPoolExecutor(max_workers=10) as pool:
                busy = pool.submit(
                    lambda: DaemonClient(path).request(
                        {"op": "_sleep", "seconds": 0.8}))
                time.sleep(0.2)          # the sleep is on the worker now

                def try_one():
                    try:
                        DaemonClient(path).request({"op": "_sleep",
                                                    "seconds": 0.01})
                        return "ok"
                    except DaemonError as exc:
                        assert exc.overloaded
                        assert exc.detail.get("queue_depth") >= 2
                        return exc.code
                outcomes = [pool.submit(try_one) for _ in range(6)]
                outcomes = sorted(f.result(timeout=60) for f in outcomes)
                busy.result(timeout=60)
            assert "overloaded" in outcomes          # load was shed...
            assert "ok" in outcomes                  # ...but not all of it
            stats = daemon.stats()
            assert stats["requests"]["shed"] >= 1
            # the daemon serves normally once the backlog clears
            with DaemonClient(path) as client:
                assert client.request({"op": "_sleep",
                                       "seconds": 0.0})["slept"] == 0.0

    def test_worker_crash_mid_batch_retries_and_heals(self):
        path = _socket_path()
        with ServeDaemon(path, workers=2, max_batch=4, deadline_ms=20.0,
                         max_queue=32, debug_ops=True) as daemon:
            with ThreadPoolExecutor(max_workers=8) as pool:
                def crash():
                    try:
                        DaemonClient(path).request({"op": "_crash"})
                        return "no-error"
                    except DaemonError as exc:
                        return exc.code

                def victim():
                    return DaemonClient(path).request(
                        {"op": "_sleep", "seconds": 0.01})

                crash_future = pool.submit(crash)
                victims = [pool.submit(victim) for _ in range(3)]
                # the crash op fails cleanly, never retried
                assert crash_future.result(timeout=60) == "worker_crashed"
                # co-batched innocents are retried on a healthy worker
                for future in victims:
                    assert future.result(timeout=60)["slept"] == 0.01
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = daemon.stats()
                if stats["workers"]["alive"] == 2:
                    break
                time.sleep(0.05)
            assert stats["workers"]["alive"] == 2    # pool healed
            assert stats["workers"]["restarts"] >= 1
            assert stats["requests"]["retried"] >= 1
            with DaemonClient(path) as client:       # and still serves
                assert client.request({"op": "_sleep",
                                       "seconds": 0.0})["slept"] == 0.0

    def test_drain_on_shutdown_completes_outstanding_work(self):
        path = _socket_path()
        daemon = ServeDaemon(path, workers=2, max_batch=1, deadline_ms=1.0,
                             max_queue=32, debug_ops=True).start()
        with ThreadPoolExecutor(max_workers=8) as pool:
            slow = [pool.submit(lambda: DaemonClient(path).request(
                {"op": "_sleep", "seconds": 0.3})) for _ in range(5)]
            time.sleep(0.1)
            ack = pool.submit(lambda: DaemonClient(path).shutdown())
            # every queued/in-flight request completes before the stop
            assert [f.result(timeout=60)["slept"] for f in slow] == [0.3] * 5
            assert ack.result(timeout=60) == {"stopped": True}
        assert not os.path.exists(path)              # socket removed
        with pytest.raises(OSError):
            DaemonClient(path).ping()
        # admissions during/after the drain are refused, not queued forever
        daemon.shutdown()                            # idempotent

    def test_new_requests_shed_while_draining(self):
        path = _socket_path()
        with ServeDaemon(path, workers=1, max_batch=1, deadline_ms=1.0,
                         max_queue=32, debug_ops=True):
            with ThreadPoolExecutor(max_workers=6) as pool:
                slow = pool.submit(lambda: DaemonClient(path).request(
                    {"op": "_sleep", "seconds": 0.5}))
                time.sleep(0.1)
                ack = pool.submit(lambda: DaemonClient(path).shutdown())
                time.sleep(0.1)
                with pytest.raises((DaemonError, OSError)) as err:
                    DaemonClient(path).request({"op": "_sleep",
                                                "seconds": 0.0})
                if err.type is DaemonError:
                    assert err.value.code == "shutting_down"
                assert slow.result(timeout=60)["slept"] == 0.5
                ack.result(timeout=60)


# ----------------------------------------------------------------------
class TestSessionServing:
    def test_daemon_sessions_identical_to_local(self):
        sessions = _sessions(6)
        local = run_search_sessions(sessions, workers=1)
        path = _socket_path()
        with ServeDaemon(path, workers=2, max_batch=4,
                         deadline_ms=5.0) as daemon:
            remote = run_search_sessions(sessions, workers=4, daemon=path)
            stats = daemon.stats()
        assert stats["per_model"]["session"] == len(sessions)
        for a, b in zip(local, remote):
            assert a.best_index == b.best_index
            assert a.best_time == b.best_time
            assert a.evaluations == b.evaluations
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.times, b.times)

    def test_tune_and_map_need_a_registry(self):
        path = _socket_path()
        with ServeDaemon(path, workers=1, max_batch=1, deadline_ms=1.0):
            with DaemonClient(path) as client:
                with pytest.raises(DaemonError) as err:
                    client.request({"op": "tune", "model": "any",
                                    "kernel": "polybench/gemm"})
                assert err.value.code == "no_registry"


# ----------------------------------------------------------------------
class TestDaemonCLI:
    def test_daemon_and_request_subcommands(self):
        """`python -m repro.serve daemon` end to end in a fresh process."""
        path = _socket_path()
        src = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                           os.pardir, "src"))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "daemon",
             "--socket", path, "--workers", "1", "--max-batch", "2",
             "--deadline-ms", "5"],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            ready = json.loads(daemon.stdout.readline())
            assert ready["ready"] is True and ready["workers"] == 1

            probe = subprocess.run(
                [sys.executable, "-m", "repro.serve", "request",
                 "--socket", path, "--op", "ping"],
                capture_output=True, text=True, env=env, timeout=60)
            assert probe.returncode == 0, probe.stderr
            assert json.loads(probe.stdout)["result"] == {"pong": True}

            stats = subprocess.run(
                [sys.executable, "-m", "repro.serve", "request",
                 "--socket", path, "--op", "stats"],
                capture_output=True, text=True, env=env, timeout=60)
            assert json.loads(stats.stdout)["result"]["workers"]["alive"] == 1

            stop = subprocess.run(
                [sys.executable, "-m", "repro.serve", "request",
                 "--socket", path, "--op", "shutdown"],
                capture_output=True, text=True, env=env, timeout=60)
            assert json.loads(stop.stdout)["result"] == {"stopped": True}
            assert daemon.wait(timeout=60) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


# ----------------------------------------------------------------------
class TestProtocol:
    def test_session_wire_round_trip(self):
        session = _sessions(1)[0]
        from repro.serve.protocol import session_from_wire, session_to_wire
        wire = json.loads(json.dumps(session_to_wire(session)))
        rebuilt = session_from_wire(wire)
        assert rebuilt.tuner_name == session.tuner_name
        assert rebuilt.tuner_config == session.tuner_config
        assert rebuilt.space == session.space
        np.testing.assert_array_equal(rebuilt.objective.times,
                                      session.objective.times)

    def test_validation_rejects_bad_shapes(self):
        from repro.serve.protocol import ProtocolError, validate_request
        for document in ({}, {"op": 3}, {"op": "tune", "model": "m"},
                         {"op": "map", "model": "m", "kernel": "k"},
                         {"op": "session"}):
            with pytest.raises(ProtocolError):
                validate_request(document)
        assert validate_request({"op": "ping", "id": 7}) == (7, "ping")
