"""Performance-simulator tests: machine models, cache model, OpenMP, OpenCL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import analyze_spec
from repro.frontend.openmp import OMPConfig, OMPSchedule
from repro.kernels import registry
from repro.simulator import (
    BROADWELL_8C,
    COMET_LAKE_8C,
    CORE_I7_3820,
    GTX_970,
    SANDY_BRIDGE_8C,
    SKYLAKE_4114,
    TAHITI_7970,
    OpenMPSimulator,
    estimate_cache_traffic,
    get_microarch,
    simulate_opencl,
    simulate_openmp,
)


class TestMicroArch:
    def test_presets_lookup(self):
        assert get_microarch("comet_lake") is COMET_LAKE_8C
        with pytest.raises(KeyError):
            get_microarch("zen4")

    def test_skylake_has_smt(self):
        assert SKYLAKE_4114.max_threads == 20
        assert COMET_LAKE_8C.max_threads == 8

    def test_peak_flops_monotone_in_threads(self):
        for arch in (COMET_LAKE_8C, SKYLAKE_4114):
            peaks = [arch.peak_gflops(t) for t in range(1, arch.max_threads + 1)]
            assert all(b >= a for a, b in zip(peaks, peaks[1:]))

    def test_memory_bandwidth_saturates(self):
        bw = [COMET_LAKE_8C.effective_mem_bw(t) for t in range(1, 9)]
        assert bw[-1] <= COMET_LAKE_8C.mem_bw_gbs + 1e-9
        assert bw[0] < bw[3]

    def test_cache_size_ordering(self):
        for arch in (COMET_LAKE_8C, BROADWELL_8C, SANDY_BRIDGE_8C, SKYLAKE_4114):
            assert arch.l1_bytes < arch.l2_bytes < arch.l3_bytes


class TestCacheModel:
    def test_miss_hierarchy_is_consistent(self, small_specs):
        for spec in small_specs:
            w = analyze_spec(spec, 1.0)
            t = estimate_cache_traffic(w, COMET_LAKE_8C, threads=4,
                                       chunk_iterations=64)
            assert t.accesses >= t.l1_misses >= t.l2_misses >= t.l3_misses >= 0

    def test_larger_working_set_more_misses(self, gemm_spec):
        small = estimate_cache_traffic(analyze_spec(gemm_spec, 0.3),
                                       COMET_LAKE_8C, 4, 64)
        large = estimate_cache_traffic(analyze_spec(gemm_spec, 2.0),
                                       COMET_LAKE_8C, 4, 64)
        assert large.l3_misses / max(large.accesses, 1) >= \
            small.l3_misses / max(small.accesses, 1)

    def test_random_access_misses_more(self, gemm_spec, bfs_spec):
        w_reg = analyze_spec(gemm_spec, 1.0)
        w_irr = analyze_spec(bfs_spec, 1.0)
        reg = estimate_cache_traffic(w_reg, COMET_LAKE_8C, 4, 64)
        irr = estimate_cache_traffic(w_irr, COMET_LAKE_8C, 4, 64)
        assert (irr.l1_misses / irr.accesses) > (reg.l1_misses / reg.accesses)

    def test_tiny_chunks_hurt_locality(self, gemm_spec):
        w = analyze_spec(gemm_spec, 1.0)
        tiny = estimate_cache_traffic(w, COMET_LAKE_8C, 4, chunk_iterations=1)
        big = estimate_cache_traffic(w, COMET_LAKE_8C, 4, chunk_iterations=256)
        assert tiny.l1_misses >= big.l1_misses


class TestOpenMPSimulator:
    def test_time_positive_and_reproducible(self, kmeans_spec):
        sim = OpenMPSimulator(COMET_LAKE_8C, noise=0.0)
        r1 = sim.run(kmeans_spec, OMPConfig(4), scale=1.0)
        r2 = sim.run(kmeans_spec, OMPConfig(4), scale=1.0)
        assert r1.time_seconds > 0
        assert r1.time_seconds == pytest.approx(r2.time_seconds)

    def test_parallelism_helps_large_compute_kernel(self):
        spec = registry.get_kernel("npb/EP")
        sim = OpenMPSimulator(COMET_LAKE_8C, noise=0.0)
        w = analyze_spec(spec, 1.0)
        t1 = sim.run(w, OMPConfig(1)).time_seconds
        t8 = sim.run(w, OMPConfig(8)).time_seconds
        assert t8 < t1 / 3.0

    def test_tiny_input_prefers_few_threads(self):
        spec = registry.get_kernel("stream/triad")
        scale = spec.scale_for_bytes(4e3)
        sim = OpenMPSimulator(COMET_LAKE_8C, noise=0.0)
        w = analyze_spec(spec, scale)
        t1 = sim.run(w, OMPConfig(1)).time_seconds
        t8 = sim.run(w, OMPConfig(8)).time_seconds
        assert t1 < t8

    def test_counters_present_and_positive(self, kmeans_spec):
        from repro.profiling import PAPI_PRESET_COUNTERS
        result = simulate_openmp(kmeans_spec, OMPConfig(8), COMET_LAKE_8C,
                                 noise=0.0)
        for name in PAPI_PRESET_COUNTERS:
            assert name in result.counters
            assert result.counters[name] >= 0.0

    def test_dynamic_schedule_helps_imbalanced_loops(self):
        spec = registry.get_kernel("polybench/lu")      # triangular, imbalanced
        sim = OpenMPSimulator(SKYLAKE_4114, noise=0.0)
        w = analyze_spec(spec, 1.5)
        static = sim.run(w, OMPConfig(10, OMPSchedule.STATIC, None)).time_seconds
        dynamic = sim.run(w, OMPConfig(10, OMPSchedule.DYNAMIC, 32)).time_seconds
        assert dynamic < static

    def test_atomic_updates_scale_sublinearly(self):
        spec = registry.get_kernel("dataracebench/DRB093")
        sim = OpenMPSimulator(COMET_LAKE_8C, noise=0.0)
        w = analyze_spec(spec, 0.5)
        r2 = sim.run(w, OMPConfig(2))
        r8 = sim.run(w, OMPConfig(8))
        # contention keeps the atomic cost from scaling 4x when going 2->8
        assert r8.breakdown["sync_overhead"] > r2.breakdown["sync_overhead"] / 4.0
        assert r8.breakdown["sync_overhead"] < r2.breakdown["sync_overhead"]

    def test_breakdown_sums_close_to_total(self, gemm_spec):
        sim = OpenMPSimulator(COMET_LAKE_8C, noise=0.0)
        result = sim.run(gemm_spec, OMPConfig(4), scale=1.0)
        parts = sum(result.breakdown.values())
        # serial_advantage and slack multipliers make this approximate
        assert parts == pytest.approx(result.time_seconds, rel=0.6)

    @given(st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_any_thread_count_valid(self, threads):
        spec = registry.get_kernel("stream/add")
        result = simulate_openmp(spec, OMPConfig(threads), COMET_LAKE_8C,
                                 noise=0.0)
        assert np.isfinite(result.time_seconds) and result.time_seconds > 0


class TestOpenCLSimulator:
    def test_small_input_prefers_cpu(self):
        spec = registry.get_kernel("nvidiasdk/MatrixMul")
        scale = spec.scale_for_bytes(64e3)
        w = analyze_spec(spec, scale)
        cpu = simulate_opencl(w, CORE_I7_3820, 0.7 * w.working_set_bytes, 64,
                              noise=0.0)
        gpu = simulate_opencl(w, TAHITI_7970, 0.7 * w.working_set_bytes, 256,
                              noise=0.0)
        assert cpu.time_seconds < gpu.time_seconds

    def test_large_compute_kernel_prefers_gpu(self):
        spec = registry.get_kernel("amdsdk/BinomialOption")
        scale = spec.scale_for_bytes(128e6)
        w = analyze_spec(spec, scale)
        cpu = simulate_opencl(w, CORE_I7_3820, 0.7 * w.working_set_bytes, 64,
                              noise=0.0)
        gpu = simulate_opencl(w, TAHITI_7970, 0.7 * w.working_set_bytes, 256,
                              noise=0.0)
        assert gpu.time_seconds < cpu.time_seconds

    def test_transfer_dominates_breakdown_for_streaming(self):
        spec = registry.get_kernel("stream/triad")
        from repro.kernels.registry import as_opencl
        w = analyze_spec(as_opencl(spec), 1.0)
        gpu = simulate_opencl(w, GTX_970, w.working_set_bytes, 256, noise=0.0)
        assert gpu.breakdown["transfer"] > gpu.breakdown["kernel"]

    def test_workgroup_size_occupancy(self):
        spec = registry.get_kernel("shoc/GEMM")
        w = analyze_spec(spec, 1.0)
        small_wg = simulate_opencl(w, TAHITI_7970, 1e6, 8, noise=0.0)
        big_wg = simulate_opencl(w, TAHITI_7970, 1e6, 256, noise=0.0)
        assert big_wg.time_seconds <= small_wg.time_seconds
