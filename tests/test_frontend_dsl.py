"""Frontend DSL tests: expressions, affine indices, statements, specs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.expr import (
    AccessPattern,
    Affine,
    Array,
    BinExpr,
    CallExpr,
    CompareExpr,
    ConstExpr,
    Dim,
    IndirectIndex,
    LoopVar,
    Scalar,
    resolve_extent,
)
from repro.frontend.spec import KernelSpec
from repro.frontend.stmt import Assign, For, Reduce, find_parallel_loop, loop_nest_depth
from repro.ir.types import DataType


class TestDims:
    def test_resolve_basic(self):
        n = Dim("N")
        assert n.resolve({"N": 100}) == 100
        assert (n - 2).resolve({"N": 100}) == 98
        assert (n // 4).resolve({"N": 100}) == 25
        assert resolve_extent(7, {}) == 7

    def test_resolve_minimum(self):
        n = Dim("N")
        assert (n - 10).resolve({"N": 5}) == 1

    def test_missing_dimension_raises(self):
        with pytest.raises(KeyError):
            Dim("M").resolve({"N": 4})

    @given(st.integers(4, 10_000), st.integers(1, 8), st.integers(-3, 3))
    @settings(max_examples=50, deadline=None)
    def test_resolution_monotone_in_size(self, size, div, off):
        d = Dim("N", factor=1.0 / div, offset=off)
        assert d.resolve({"N": size * 2}) >= d.resolve({"N": size})


class TestExpressions:
    def test_operator_overloading_builds_ast(self):
        i = LoopVar("i")
        a = Array("a", (Dim("N"),))
        expr = a[i] * 2.0 + 1.0
        assert isinstance(expr, BinExpr) and expr.op == "+"
        cmp = a[i] > 0.5
        assert isinstance(cmp, CompareExpr)

    def test_call_expr_validation(self):
        with pytest.raises(ValueError):
            CallExpr("not_a_function", 1.0)
        assert CallExpr("sqrt", 2.0).dtype == DataType.F64

    def test_affine_from_expressions(self):
        i, j = LoopVar("i"), LoopVar("j")
        aff = Affine.from_value(i * 3 + j + 5)
        assert aff.coefficient(i) == 3
        assert aff.coefficient(j) == 1
        assert aff.const == 5

    def test_affine_rejects_nonaffine(self):
        i = LoopVar("i")
        with pytest.raises(ValueError):
            Affine.from_value(i * i)

    @given(st.integers(-5, 5), st.integers(-5, 5), st.integers(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_affine_linearity(self, ci, cj, const):
        i, j = LoopVar("i"), LoopVar("j")
        aff = Affine.from_value(i * ci + j * cj + const)
        assert aff.coefficient(i) == ci
        assert aff.coefficient(j) == cj
        assert aff.const == const


class TestArrays:
    def test_rank_checking(self):
        a = Array("a", (Dim("N"), Dim("N")))
        i = LoopVar("i")
        with pytest.raises(ValueError):
            _ = a[i]
        ref = a[i, i + 1]
        assert ref.array is a

    def test_access_pattern_classification(self):
        i, j = LoopVar("i"), LoopVar("j")
        a = Array("a", (Dim("N"), Dim("N")))
        x = Array("x", (Dim("N"),))
        idx = Array("idx", (Dim("N"),), DataType.I64)
        assert a[i, j].access_pattern(j) == AccessPattern.UNIT_STRIDE
        assert a[j, i].access_pattern(j) == AccessPattern.STRIDED
        assert x[i].access_pattern(j) == AccessPattern.INVARIANT
        assert x[IndirectIndex(idx, i)].access_pattern(i) == AccessPattern.RANDOM

    def test_size_bytes(self):
        a = Array("a", (Dim("N"), Dim("M")), DataType.F64)
        assert a.size_bytes({"N": 10, "M": 20}) == 10 * 20 * 8


class TestStatements:
    def test_nest_depth_and_parallel_loop(self):
        i, j = LoopVar("i"), LoopVar("j")
        a = Array("a", (Dim("N"), Dim("N")))
        inner = For(j, Dim("N"), [Assign(a[i, j], 1.0)])
        outer = For(i, Dim("N"), [inner], parallel=True)
        assert loop_nest_depth([outer]) == 2
        assert find_parallel_loop([outer]) is outer

    def test_reduce_validation(self):
        acc = Scalar("acc")
        with pytest.raises(ValueError):
            Reduce(acc, 1.0, op="^")

    def test_assign_target_validation(self):
        with pytest.raises(TypeError):
            Assign(ConstExpr(1.0), 2.0)


class TestKernelSpec:
    def test_requires_parallel_loop(self):
        a = Array("a", (Dim("N"),))
        i = LoopVar("i")
        with pytest.raises(ValueError):
            KernelSpec("k", "suite", [a], [For(i, Dim("N"), [Assign(a[i], 1.0)])],
                       {"N": 10})

    def test_scaling_and_working_set(self, gemm_spec):
        small = gemm_spec.working_set_bytes(0.5)
        large = gemm_spec.working_set_bytes(2.0)
        assert large > small > 0

    def test_scale_for_bytes_bisection(self, gemm_spec):
        for target in (1e5, 1e7, 2e8):
            scale = gemm_spec.scale_for_bytes(target)
            achieved = gemm_spec.working_set_bytes(scale)
            assert 0.4 * target < achieved < 2.5 * target

    def test_uid_and_trip_count(self, gemm_spec):
        assert gemm_spec.uid == "polybench/gemm"
        assert gemm_spec.parallel_trip_count(1.0) == gemm_spec.base_sizes["N"]
