"""State-dict round trips: scalers, modules and the full MGA model —
plus on-disk artifact integrity for campaign checkpoints.

The satellite requirement: after ``state_dict`` → fresh model →
``load_state_dict``, predictions must be bit-identical, for every
:class:`ModalityConfig` ablation variant (the extra state plumbing carries
the fitted min-max and Gauss-rank scalers alongside the weights).
"""

import os

import numpy as np
import pytest

from repro.core import MGAModel, ModalityConfig
from repro.dae import DenoisingAutoencoder
from repro.nn import GaussRankScaler, MinMaxScaler, MLP, StandardScaler

ALL_VARIANTS = [
    ("mga", ModalityConfig.mga()),
    ("mga_static", ModalityConfig.mga_static()),
    ("programl", ModalityConfig.programl()),
    ("programl_static", ModalityConfig.programl_static()),
    ("ir2vec", ModalityConfig.ir2vec()),
    ("ir2vec_static", ModalityConfig.ir2vec_static()),
    ("dynamic_only", ModalityConfig.dynamic_only()),
]


class TestScalerState:
    def test_minmax_round_trip(self, rng):
        x = rng.normal(size=(20, 4)) * 50
        scaler = MinMaxScaler().fit(x)
        clone = MinMaxScaler()
        clone.set_state(scaler.get_state())
        np.testing.assert_array_equal(scaler.transform(x), clone.transform(x))

    def test_standard_round_trip(self, rng):
        x = rng.normal(size=(20, 4))
        scaler = StandardScaler().fit(x)
        clone = StandardScaler()
        clone.set_state(scaler.get_state())
        np.testing.assert_array_equal(scaler.transform(x), clone.transform(x))

    def test_gaussrank_round_trip(self, rng):
        x = rng.normal(size=(30, 3))
        scaler = GaussRankScaler().fit(x)
        clone = GaussRankScaler()
        clone.set_state(scaler.get_state())
        unseen = rng.normal(size=(7, 3))
        np.testing.assert_array_equal(scaler.transform(unseen),
                                      clone.transform(unseen))

    def test_unfitted_state_is_empty(self):
        assert MinMaxScaler().get_state() == {}
        assert GaussRankScaler().get_state() == {}


class TestModuleStateDict:
    def test_missing_parameter_raises(self):
        mlp = MLP(4, [3], 2)
        state = mlp.state_dict()
        state.pop(sorted(state)[0])
        with pytest.raises(KeyError):
            MLP(4, [3], 2).load_state_dict(state)

    def test_shape_mismatch_raises(self):
        state = MLP(4, [3], 2).state_dict()
        with pytest.raises(ValueError):
            MLP(4, [5], 2).load_state_dict(state)

    def test_dae_extra_state_restores_scaler_and_flag(self, rng):
        vectors = rng.normal(size=(24, 6))
        dae = DenoisingAutoencoder(6, hidden_dim=8, code_dim=3, seed=0)
        dae.fit(vectors, epochs=2)
        state = dae.state_dict()
        assert any(key.startswith("scaler.") for key in state)

        clone = DenoisingAutoencoder(6, hidden_dim=8, code_dim=3, seed=1)
        clone.load_state_dict(state)
        unseen = rng.normal(size=(5, 6))
        np.testing.assert_array_equal(dae.encode(unseen), clone.encode(unseen))


class TestMGAModelRoundTrip:
    @pytest.mark.parametrize("name,modalities", ALL_VARIANTS,
                             ids=[n for n, _ in ALL_VARIANTS])
    def test_bit_identical_predictions(self, small_openmp_dataset, name,
                                       modalities):
        ds = small_openmp_dataset
        graphs = [s.graph for s in ds.samples]
        vectors = np.stack([s.vector for s in ds.samples])
        extra = ds.counter_matrix()
        labels = ds.labels()
        model = MGAModel(graph_feature_dim=graphs[0].feature_dim,
                         vector_dim=vectors.shape[1], extra_dim=extra.shape[1],
                         num_classes=ds.num_configs, modalities=modalities,
                         gnn_hidden=8, gnn_out=8, dae_hidden=16, dae_code=6,
                         mlp_hidden=12, seed=0)
        model.fit(graphs, vectors, extra, labels, epochs=2, dae_epochs=2)

        state = model.state_dict()
        clone = MGAModel.from_config(model.get_config())
        assert clone.modalities == modalities
        clone.load_state_dict(state)

        reference = model.predict_proba(graphs, vectors, extra)
        restored = clone.predict_proba(graphs, vectors, extra)
        np.testing.assert_array_equal(reference, restored)

    def test_unfitted_clone_refuses_predict(self, small_openmp_dataset):
        ds = small_openmp_dataset
        model = MGAModel(ds.samples[0].graph.feature_dim, 32, 5,
                         ds.num_configs)
        clone = MGAModel.from_config(model.get_config())
        with pytest.raises(RuntimeError):
            clone.predict([ds.samples[0].graph],
                          ds.samples[0].vector[None, :], np.zeros((1, 5)))


class TestCampaignCheckpointArtifacts:
    """On-disk integrity of campaign checkpoints (repro.serve artifacts)."""

    @staticmethod
    def _campaign(checkpoint_path, max_evals=8):
        from repro.simulator.microarch import COMET_LAKE_8C
        from repro.tuners import (SimObjectiveSpec, TuningCampaign,
                                  full_search_space, make_tuner)
        space = full_search_space(threads=(1, 2, 4, 8), chunks=(1, 32, 256))
        spec = SimObjectiveSpec(kernel_uid="polybench/atax",
                                arch=COMET_LAKE_8C, scale=0.2, seed=5)
        campaign = TuningCampaign(make_tuner("random", budget=16, seed=1),
                                  space, spec, batch_size=4,
                                  checkpoint_path=os.fspath(checkpoint_path))
        if max_evals:
            campaign.run(max_evals=max_evals)
        return campaign

    def test_checkpoint_save_load_integrity(self, tmp_path):
        from repro.serve.artifacts import load_artifact, read_manifest
        from repro.tuners import TuningCampaign
        ck = tmp_path / "ck"
        campaign = self._campaign(ck)
        manifest = read_manifest(ck)
        assert manifest["kind"] == "tuning_campaign"
        restored = load_artifact(ck)
        assert isinstance(restored, TuningCampaign)
        assert restored.history == campaign.history
        assert restored.space.configs == campaign.space.configs
        assert restored.objective_spec == campaign.objective_spec
        assert restored.tuner.get_config() == campaign.tuner.get_config()

    def test_sha256_mismatch_raises(self, tmp_path):
        from repro.serve.artifacts import ArtifactError, load_artifact
        ck = tmp_path / "ck"
        self._campaign(ck)
        arrays = ck / "arrays.npz"
        payload = bytearray(arrays.read_bytes())
        payload[-1] ^= 0xFF
        arrays.write_bytes(bytes(payload))
        with pytest.raises(ArtifactError, match="integrity"):
            load_artifact(ck)

    def test_partial_write_keeps_previous_checkpoint(self, tmp_path,
                                                     monkeypatch):
        """A crash mid-save must neither corrupt the previous checkpoint nor
        leave staging litter behind."""
        import repro.serve.artifacts as artifacts
        from repro.serve.artifacts import load_artifact
        ck = tmp_path / "ck"
        campaign = self._campaign(ck)
        before = load_artifact(ck).history

        real_savez = np.savez

        def exploding_savez(path, **arrays):
            real_savez(path, **arrays)      # bytes hit the disk...
            raise OSError("disk full")      # ...but the save "crashes"

        monkeypatch.setattr(artifacts.np, "savez", exploding_savez)
        with pytest.raises(OSError):
            campaign.run(max_evals=4)
        monkeypatch.undo()

        assert load_artifact(ck).history == before     # old state intact
        staging = [p for p in os.listdir(tmp_path)
                   if p.startswith(".staging")]
        assert staging == []                           # temp dirs cleaned up

    def test_registry_publish_cleans_staging_on_failure(self, tmp_path,
                                                        monkeypatch):
        from repro.serve.registry import ModelRegistry
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(TypeError):
            registry.publish("broken", object())
        model_dir = tmp_path / "reg" / "broken"
        leftovers = ([p for p in os.listdir(model_dir)
                      if p.startswith(".staging")]
                     if model_dir.exists() else [])
        assert leftovers == []
