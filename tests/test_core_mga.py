"""MGA model, tuner API and device-mapper integration tests."""

import numpy as np
import pytest

from repro.core import DeviceMapper, MGAModel, MGATuner, ModalityConfig
from repro.datasets import DevMapDatasetBuilder
from repro.kernels import registry
from repro.nn import accuracy
from repro.simulator.microarch import COMET_LAKE_8C, TAHITI_7970


class TestModalityConfig:
    def test_presets(self):
        assert ModalityConfig.mga() == ModalityConfig(True, True, True)
        assert not ModalityConfig.programl().use_vector
        assert not ModalityConfig.ir2vec().use_graph
        assert not ModalityConfig.dynamic_only().use_graph
        with pytest.raises(ValueError):
            ModalityConfig(False, False, False)


class TestStaticFeatureExtractor:
    def test_extract_and_cache(self, extractor, gemm_spec):
        g1, v1 = extractor.extract(gemm_spec)
        g2, v2 = extractor.extract(gemm_spec)
        assert g1 is g2                      # cached
        np.testing.assert_allclose(v1, v2)
        assert g1.feature_dim == extractor.graph_feature_dim
        assert v1.shape == (extractor.vector_dim,)

    def test_extract_many(self, extractor, small_specs):
        graphs, vectors = extractor.extract_many(small_specs)
        assert len(graphs) == len(small_specs)
        assert vectors.shape == (len(small_specs), extractor.vector_dim)


class TestMGAModelTraining:
    def test_fit_reduces_loss_and_predicts(self, small_openmp_dataset):
        ds = small_openmp_dataset
        graphs = [s.graph for s in ds.samples]
        vectors = np.stack([s.vector for s in ds.samples])
        extra = ds.counter_matrix()
        labels = ds.labels()
        model = MGAModel(graph_feature_dim=graphs[0].feature_dim,
                         vector_dim=vectors.shape[1], extra_dim=extra.shape[1],
                         num_classes=ds.num_configs, gnn_hidden=12, gnn_out=12,
                         dae_hidden=24, dae_code=8, mlp_hidden=16, seed=0)
        history = model.fit(graphs, vectors, extra, labels, epochs=8,
                            dae_epochs=5)
        assert history["loss"][-1] < history["loss"][0]
        preds = model.predict(graphs, vectors, extra)
        assert preds.shape == labels.shape
        assert accuracy(preds, labels) > 1.0 / ds.num_configs   # beats chance
        proba = model.predict_proba(graphs[:3], vectors[:3], extra[:3])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_predict_before_fit_raises(self, small_openmp_dataset):
        ds = small_openmp_dataset
        model = MGAModel(ds.samples[0].graph.feature_dim, 32, 5, ds.num_configs)
        with pytest.raises(RuntimeError):
            model.predict([ds.samples[0].graph],
                          ds.samples[0].vector[None, :], np.zeros((1, 5)))

    def test_modality_mismatch_detected(self, small_openmp_dataset):
        ds = small_openmp_dataset
        graphs = [s.graph for s in ds.samples[:4]]
        vectors = np.stack([s.vector for s in ds.samples[:3]])
        with pytest.raises(ValueError):
            MGAModel(graphs[0].feature_dim, vectors.shape[1], 5,
                     ds.num_configs).fit(graphs, vectors, np.zeros((4, 5)),
                                         np.zeros(4, dtype=int), epochs=1)


class TestMGATuner:
    def test_fit_predict_and_tune(self, small_openmp_dataset, extractor):
        ds = small_openmp_dataset
        splits = ds.kfold_by_kernel(k=4, seed=0)
        train_idx, val_idx = splits[0]
        tuner = MGATuner(COMET_LAKE_8C, ds.configs, extractor=extractor,
                         gnn_hidden=12, gnn_out=12, dae_hidden=24, dae_code=8,
                         mlp_hidden=16, seed=0)
        tuner.fit(ds, train_indices=train_idx, epochs=10, dae_epochs=5)
        preds = tuner.predict_indices(ds, val_idx)
        assert len(preds) == len(val_idx)
        assert all(0 <= p < ds.num_configs for p in preds)
        speedups = [ds.samples[i].speedup_of(int(p))
                    for i, p in zip(val_idx, preds)]
        # predicted configurations should not be catastrophically bad
        assert np.exp(np.mean(np.log(speedups))) > 0.5

        # end-to-end tuning of an unseen kernel + input
        config, counters = tuner.tune(registry.get_kernel("polybench/atax"),
                                      scale=1.0)
        assert config in ds.configs
        assert set(counters) >= set(ds.counter_names)

    def test_predict_without_fit(self, small_openmp_dataset):
        tuner = MGATuner(COMET_LAKE_8C, small_openmp_dataset.configs)
        with pytest.raises(RuntimeError):
            tuner.predict_indices(small_openmp_dataset, [0])


class TestDeviceMapper:
    def test_training_beats_static_mapping(self, extractor):
        specs = registry.opencl_kernels()[:24]
        builder = DevMapDatasetBuilder(TAHITI_7970, extractor=extractor, seed=1)
        dataset = builder.build(specs, points_per_kernel=3)
        labels = dataset.labels()
        if len(np.unique(labels)) < 2:
            pytest.skip("tiny dataset collapsed to a single class")
        splits = dataset.stratified_kfold(k=4, seed=0)
        train_idx, val_idx = splits[0]
        mapper = DeviceMapper(extractor=extractor, gnn_hidden=12, gnn_out=12,
                              dae_hidden=24, dae_code=8, mlp_hidden=16, seed=0)
        mapper.fit(dataset, train_indices=train_idx, epochs=10, dae_epochs=5)
        preds = mapper.predict(dataset, val_idx)
        y_true = labels[val_idx]
        majority = max(np.mean(y_true == 0), np.mean(y_true == 1))
        assert accuracy(preds, y_true) >= majority - 0.25
