"""Array-backend seam: parity, accounting, and the runtime config API.

The contract under test, per backend:

* ``numpy`` — the reference.  Every ``xp`` entry is the numpy function
  itself, so routing through the seam is bitwise invisible.
* ``checked`` — numpy plus instrumentation.  Must be bitwise identical to
  ``numpy`` for every autograd primitive, segment op and fused kernel
  (eager *and* replayed), while counting constructions/temporaries and
  asserting the ``out=`` aliasing contract on every routed call.  Steady
  -state tape replay must be allocation-free under its accounting.
* ``cupy`` / ``torch`` — optional; skipped cleanly when not installed.

Plus ``repro.nn.runtime``: one config surface for dtype / segment-ops /
backend whose every actual change bumps the tape config epoch, with the
legacy setters as deprecation shims.
"""

import warnings

import numpy as np
import pytest

from repro.gnn.conv import FusedGRUCell, GATConv, GCNConv, GGNNConv, SAGEConv
from repro.graphs.hetero import EdgeLayout
from repro.nn import (
    MLP,
    TapeRunner,
    Tensor,
    binary_cross_entropy,
    concat,
    config_epoch,
    cross_entropy,
    dropout,
    mse_loss,
    segment_mean,
    segment_sum,
    softmax,
    stack_rows,
    use_fast_segment_ops,
)
from repro.nn import backend as B
from repro.nn import runtime
from repro.nn.functional import log_softmax


PARITY_BACKENDS = ["numpy", "checked"]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _eager_and_replay(make_loss, params):
    """Loss + grads eagerly, then replayed; asserts replay ≡ eager bitwise.

    Returns ``(loss, [grads])`` as plain floats/arrays for cross-backend
    comparison.
    """
    for p in params:
        p.grad = None
    loss = make_loss()
    loss.backward()
    eager_loss = float(loss.data)
    eager_grads = [p.grad.copy() for p in params]

    runner = TapeRunner(wrt=params)
    runner.step("k", make_loss)
    replay_loss = runner.step("k", make_loss)
    assert runner.records == 1 and runner.replays == 1
    assert replay_loss == eager_loss
    for p, eg in zip(params, eager_grads):
        np.testing.assert_array_equal(p.grad, eg)
    return eager_loss, eager_grads


def _assert_backend_parity(build):
    """``build() -> (make_loss, params)`` must give bitwise-identical
    losses and gradients (eager and replayed) on every parity backend."""
    results = {}
    for name in PARITY_BACKENDS:
        with runtime.use(backend=name):
            make_loss, params = build()
            results[name] = _eager_and_replay(make_loss, params)
    ref_loss, ref_grads = results["numpy"]
    for name in PARITY_BACKENDS[1:]:
        loss, grads = results[name]
        assert loss == ref_loss, f"{name}: loss diverged from numpy"
        for g, rg in zip(grads, ref_grads):
            np.testing.assert_array_equal(g, rg, err_msg=f"backend {name}")


def _numeric_grad(make_loss, p, eps=1e-6):
    grad = np.zeros_like(p.data)
    flat, gflat = p.data.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = float(make_loss().data)
        flat[i] = orig - eps
        down = float(make_loss().data)
        flat[i] = orig
        gflat[i] = (up - down) / (2.0 * eps)
    return grad


def _gradcheck_parity(build, atol=1e-4):
    """Backend parity plus a finite-difference check per backend."""
    _assert_backend_parity(build)
    for name in PARITY_BACKENDS:
        with runtime.use(backend=name):
            make_loss, params = build()
            _eager_and_replay(make_loss, params)
            for p in params:
                numeric = _numeric_grad(make_loss, p)
                np.testing.assert_allclose(
                    p.grad, numeric, atol=atol,
                    err_msg=f"backend {name}: analytic vs numeric")


def _random_edges(rng, num_nodes, num_edges):
    return np.stack([rng.integers(0, num_nodes, num_edges),
                     rng.integers(0, num_nodes, num_edges)]).astype(np.int64)


# ----------------------------------------------------------------------
# per-primitive parity (gradcheck + bitwise replay, both backends)
# ----------------------------------------------------------------------
class TestPrimitiveParity:
    def _xy(self, shape=(3, 4), seed=0):
        rng = np.random.default_rng(seed)
        return (Tensor(rng.standard_normal(shape), requires_grad=True),
                Tensor(rng.standard_normal(shape), requires_grad=True))

    def test_arithmetic(self):
        def build():
            x, y = self._xy()
            return (lambda: ((x * y + 2.0) / (y * y + 3.0) + (1.0 - x)
                             - x * 0.5 + (-y) / 2.0).sum(), [x, y])
        _gradcheck_parity(build)

    def test_pow_exp_log(self):
        def build():
            x, _ = self._xy(seed=1)
            return (lambda: ((x * x + 1.0).log() + (x * 0.1).exp()
                             + (x * x) ** 1.5).sum(), [x])
        _gradcheck_parity(build)

    def test_activations(self):
        def build():
            x, _ = self._xy(seed=2)
            return (lambda: (x.relu() + x.sigmoid() + x.tanh()
                             + x.leaky_relu(0.2)).sum(), [x])
        _gradcheck_parity(build)

    def test_matmul_linear(self):
        def build():
            rng = np.random.default_rng(3)
            x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
            w = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
            b = Tensor(rng.standard_normal(2), requires_grad=True)
            return (lambda: (x.linear(w, b).tanh() + (x @ w)).sum(),
                    [x, w, b])
        _gradcheck_parity(build)

    def test_reductions_and_shape_ops(self):
        def build():
            x, y = self._xy((4, 6), seed=4)
            return (lambda: (concat([x.slice_cols(0, 3), y.slice_cols(3, 6)],
                                    axis=1).reshape(6, 4).T.sum()
                             + x.mean() + x.sum(axis=1).sum()), [x, y])
        _gradcheck_parity(build)

    def test_stack_rows(self):
        def build():
            rng = np.random.default_rng(5)
            rows = [Tensor(rng.standard_normal(4), requires_grad=True)
                    for _ in range(3)]
            return (lambda: (stack_rows(rows) * 2.0).sum(), rows)
        _gradcheck_parity(build)

    def test_losses(self):
        def build():
            rng = np.random.default_rng(6)
            logits = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
            targets = np.array([0, 2, 1, 0, 2])
            probs_t = Tensor(rng.uniform(0.1, 0.9, (5, 1)),
                             requires_grad=True)
            target_p = np.asarray(rng.uniform(size=(5, 1)) > 0.5, dtype=float)
            preds = Tensor(rng.standard_normal((5, 2)), requires_grad=True)
            target_v = rng.standard_normal((5, 2))
            return (lambda: cross_entropy(logits, targets)
                    + softmax(logits).sum() * 0.0
                    + log_softmax(logits).sum() * 0.0
                    + binary_cross_entropy(probs_t.sigmoid(), target_p)
                    + mse_loss(preds, target_v),
                    [logits, probs_t, preds])
        _assert_backend_parity(build)

    @pytest.mark.parametrize("fast", [False, True])
    def test_segment_ops(self, fast):
        def build():
            rng = np.random.default_rng(7)
            x = Tensor(rng.standard_normal((8, 3)), requires_grad=True)
            ids = np.array([0, 0, 1, 2, 2, 3, 3, 0], dtype=np.int64)
            return (lambda: (segment_sum(x, ids, 4)
                             + segment_mean(x, ids, 4)).sum(), [x])
        with use_fast_segment_ops(fast):
            _gradcheck_parity(build)

    def test_index_select(self):
        def build():
            rng = np.random.default_rng(8)
            x = Tensor(rng.standard_normal((6, 3)), requires_grad=True)
            idx = np.array([0, 2, 2, 5, 1], dtype=np.int64)
            return (lambda: (x.index_select(idx) * 3.0).sum(), [x])
        _gradcheck_parity(build)

    def test_dropout_rng_alignment(self):
        def build():
            rng = np.random.default_rng(9)
            x = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
            mask_rng = np.random.default_rng(33)
            return (lambda: dropout(x, 0.4, mask_rng).sum(), [x])
        # identical seeds -> identical masks -> bitwise parity (replay is
        # covered separately: the captured rng advances per execution, so
        # replayed losses differ from eager by design here)
        results = {}
        for name in PARITY_BACKENDS:
            with runtime.use(backend=name):
                make_loss, params = build()
                loss = make_loss()
                loss.backward()
                results[name] = (float(loss.data), params[0].grad.copy())
        assert results["checked"][0] == results["numpy"][0]
        np.testing.assert_array_equal(results["checked"][1],
                                      results["numpy"][1])

    def test_fused_gru(self):
        def build():
            cell = FusedGRUCell(3, 4, rng=np.random.default_rng(5))
            rng = np.random.default_rng(10)
            x = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
            h = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
            return (lambda: cell(x, h).sum(), [x, h] + cell.parameters())
        _gradcheck_parity(build, atol=1e-4)

    @pytest.mark.parametrize("conv_cls",
                             [GCNConv, SAGEConv, GATConv, GGNNConv])
    def test_convolutions(self, conv_cls):
        def build():
            rng = np.random.default_rng(42)
            num_nodes, num_edges, dim = 8, 20, 3
            layout = EdgeLayout(_random_edges(rng, num_nodes, num_edges),
                                num_nodes)
            conv = conv_cls(dim, dim, rng=np.random.default_rng(7))
            x = Tensor(rng.standard_normal((num_nodes, dim)),
                       requires_grad=True)
            return (lambda: conv(x, layout).tanh().sum(),
                    [x] + conv.parameters())
        with use_fast_segment_ops(True):
            _assert_backend_parity(build)


# ----------------------------------------------------------------------
# checked-backend accounting
# ----------------------------------------------------------------------
class TestCheckedAccounting:
    def test_counters_classify_calls(self):
        chk = B.CheckedBackend()
        ns = chk.ns
        a = np.ones(4)
        out = np.empty(4)
        assert ns["add"](a, a, out=out) is out
        ns["add"](a, a)                      # temp
        ns["zeros"](3)                       # construction
        ns["copyto"](out, a)                 # neutral
        c = chk.counters()
        assert c == {"op_calls": 4, "constructions": 1,
                     "temp_results": 1, "out_calls": 1}
        chk.reset_counters()
        assert chk.counters()["op_calls"] == 0

    def test_out_aliasing_violation_raises(self):
        chk = B.CheckedBackend()

        def rogue(*args, out=None):
            return np.zeros(3)               # ignores its out= buffer
        wrapped = chk._wrap_out_op("rogue", rogue)
        with pytest.raises(AssertionError, match="aliasing"):
            wrapped(np.ones(3), out=np.empty(3))

    def test_tape_replay_is_allocation_free_in_steady_state(self):
        """After warmup, replaying a compiled plan constructs nothing.

        Covers the full MLP + mse path: pooled step buffers, leased
        matmuls and the persistent gradient arena mean no backend
        construction and no out-of-place temporary per step.
        """
        with runtime.use(backend="checked"):
            chk = B.active_backend()
            rng = np.random.default_rng(0)
            x = Tensor(rng.standard_normal((8, 5)))
            y = rng.standard_normal((8, 3))
            mlp = MLP(5, [6], 3, rng=np.random.default_rng(1))
            params = mlp.parameters()
            runner = TapeRunner(wrt=params)

            def make_loss():
                return mse_loss(mlp(x), y)

            runner.step("k", make_loss)      # record (eager, allocates)
            runner.step("k", make_loss)      # first replay warms the pool
            chk.reset_counters()
            for _ in range(5):
                runner.step("k", make_loss)
            assert runner.replays == 6
            counters = chk.counters()
            assert counters["constructions"] == 0, counters
            assert counters["temp_results"] == 0, counters
            # the plan does real routed work through the seam every step
            assert counters["out_calls"] > 0, counters


# ----------------------------------------------------------------------
# registry / adapters
# ----------------------------------------------------------------------
class TestRegistry:
    def test_available_backends_reports_all_registered(self):
        avail = B.available_backends()
        assert avail["numpy"] is True
        assert avail["checked"] is True
        assert set(avail) >= {"numpy", "checked", "cupy", "torch"}

    def test_unknown_backend_is_a_keyerror(self):
        with pytest.raises(KeyError, match="unknown array backend"):
            B.get_backend("tpu")
        with pytest.raises(KeyError):
            runtime.configure(backend="tpu")

    def test_numpy_namespace_is_numpy_itself(self):
        ns = B.get_backend("numpy").namespace()
        assert ns["add"] is np.add
        assert ns["matmul"] is np.matmul
        assert ns["ndarray"] is np.ndarray

    def test_namespace_covers_the_full_contract(self):
        for name in ("numpy", "checked"):
            ns = B.get_backend(name).namespace()
            missing = [op for op in B.ALL_NAMES if op not in ns]
            assert not missing, (name, missing)

    def test_cupy_adapter_feature_detection(self):
        if not B.backend_available("cupy"):
            with pytest.raises(B.BackendUnavailable):
                B.get_backend("cupy")
            pytest.skip("cupy not installed")
        ns = B.get_backend("cupy").namespace()
        data = np.arange(12, dtype=np.float64).reshape(6, 2)
        starts = np.array([0, 2, 5], dtype=np.int64)
        got = ns["to_host"](ns["add_reduceat"](ns["asarray"](data),
                                               ns["asarray"](starts)))
        np.testing.assert_allclose(got, np.add.reduceat(data, starts, axis=0))

    def test_torch_adapter_feature_detection(self):
        if not B.backend_available("torch"):
            with pytest.raises(B.BackendUnavailable):
                B.get_backend("torch")
            pytest.skip("torch not installed")
        be = B.get_backend("torch")
        ns = be.namespace()
        data = np.arange(12, dtype=np.float64).reshape(6, 2)
        starts = np.array([0, 2, 5], dtype=np.int64)
        got = ns["to_host"](ns["add_reduceat"](ns["asarray"](data),
                                               ns["asarray"](starts)))
        np.testing.assert_allclose(got, np.add.reduceat(data, starts, axis=0))
        # namespace-only adapter: must never become the Tensor-stack backend
        assert be.supports_tensor_stack is False
        with pytest.raises(ValueError, match="functional xp namespace"):
            B.set_active_backend("torch")

    def test_env_var_selects_initial_backend(self):
        # the module read REPRO_BACKEND at import; default is numpy unless
        # CI exported something else
        import os
        expected = os.environ.get("REPRO_BACKEND", "numpy")
        initial = B.active_backend_name()
        assert initial in B.available_backends()
        assert runtime.config().backend == initial == expected


# ----------------------------------------------------------------------
# runtime config API
# ----------------------------------------------------------------------
class TestRuntimeAPI:
    def test_configure_and_snapshot(self):
        before = runtime.config()
        snap = runtime.configure(default_dtype="float32")
        try:
            assert snap.default_dtype == np.dtype(np.float32)
            assert runtime.config() == snap
        finally:
            runtime.configure(default_dtype=before.default_dtype)

    def test_epoch_bumps_only_on_actual_change(self):
        before = runtime.config()
        try:
            e0 = config_epoch()
            runtime.configure(default_dtype=before.default_dtype)  # no-op
            assert config_epoch() == e0
            runtime.configure(fast_segment_ops=not before.fast_segment_ops)
            assert config_epoch() == e0 + 1
        finally:
            runtime.configure(fast_segment_ops=before.fast_segment_ops)

    def test_backend_switch_bumps_epoch_and_invalidates_plans(self):
        e0 = config_epoch()
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((4, 3)))
        w = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        runner = TapeRunner(wrt=[w])
        runner.step("k", lambda: (x @ w).sum())
        runner.step("k", lambda: (x @ w).sum())
        assert runner.replays == 1
        # switch to whichever parity backend is NOT currently active (the
        # suite itself may be running under REPRO_BACKEND=checked)
        other = ("checked" if B.active_backend_name() != "checked"
                 else "numpy")
        with runtime.use(backend=other):
            assert config_epoch() == e0 + 1
            # stale plan (recorded under numpy) must re-record, not replay
            runner.step("k", lambda: (x @ w).sum())
            assert runner.guard_failures == 1 and runner.records == 2
        assert config_epoch() == e0 + 2    # restore bumps again

    def test_use_scopes_and_restores(self):
        before = runtime.config()
        with runtime.use(default_dtype="float32",
                         fast_segment_ops=False) as cfg:
            assert cfg.default_dtype == np.dtype(np.float32)
            assert runtime.config().fast_segment_ops is False
        assert runtime.config() == before

    def test_describe_is_json_shaped(self):
        info = runtime.describe()
        assert set(info) == {"default_dtype", "fast_segment_ops", "backend",
                             "available_backends", "config_epoch"}
        assert info["backend"]["name"] == runtime.config().backend

    def test_invalid_dtype_still_raises_valueerror(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            runtime.configure(default_dtype="int32")


# ----------------------------------------------------------------------
# deprecation shims
# ----------------------------------------------------------------------
class TestDeprecationShims:
    def test_set_default_dtype_warns_and_forwards(self):
        from repro.nn import get_default_dtype, set_default_dtype
        before = get_default_dtype()
        try:
            with pytest.warns(DeprecationWarning, match="runtime.configure"):
                set_default_dtype("float32")
            assert get_default_dtype() == np.dtype(np.float32)
        finally:
            runtime.configure(default_dtype=before)

    def test_set_fast_segment_ops_warns_and_forwards(self):
        from repro.nn import fast_segment_ops_enabled, set_fast_segment_ops
        before = fast_segment_ops_enabled()
        try:
            with pytest.warns(DeprecationWarning, match="runtime.configure"):
                set_fast_segment_ops(not before)
            assert fast_segment_ops_enabled() is (not before)
        finally:
            runtime.configure(fast_segment_ops=before)

    def test_context_managers_do_not_warn(self):
        from repro.nn import default_dtype
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with default_dtype("float32"):
                pass
            with use_fast_segment_ops(False):
                pass
