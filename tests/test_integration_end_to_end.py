"""End-to-end integration tests across the whole pipeline.

These mirror the paper's experiments at miniature scale and assert the
qualitative *shape* of the results (who wins), not absolute numbers.
"""

import numpy as np
import pytest

from repro.core.mga import ModalityConfig
from repro.evaluation.experiments.common import (
    build_openmp_dataset,
    dl_tuner_speedups,
    oracle_speedups,
    search_tuner_speedups,
    select_openmp_kernels,
)
from repro.evaluation.metrics import geometric_mean
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners import OpenTunerLike
from repro.tuners.space import thread_search_space


@pytest.fixture(scope="module")
def mini_experiment():
    """One small fold of the Fig-4 style experiment."""
    space = thread_search_space(COMET_LAKE_8C)
    specs = select_openmp_kernels(10)
    dataset = build_openmp_dataset(COMET_LAKE_8C, space, specs, num_inputs=4,
                                   seed=0)
    train_idx, val_idx = dataset.kfold_by_kernel(k=3, seed=0)[0]
    mga = dl_tuner_speedups(dataset, train_idx, val_idx, ModalityConfig.mga(),
                            epochs=25, seed=0)
    oracle = oracle_speedups(dataset, val_idx)
    return dataset, train_idx, val_idx, mga, oracle


class TestThreadPredictionShape:
    def test_oracle_dominates_everything(self, mini_experiment):
        dataset, _, val_idx, mga, oracle = mini_experiment
        assert np.all(oracle >= mga - 1e-9)
        assert geometric_mean(oracle) >= 1.0

    def test_mga_beats_default_and_not_catastrophic(self, mini_experiment):
        _, _, _, mga, oracle = mini_experiment
        mga_geo = geometric_mean(mga)
        oracle_geo = geometric_mean(oracle)
        assert mga_geo >= 1.0              # at least as good as the default
        assert mga_geo / oracle_geo > 0.6  # a meaningful fraction of the oracle

    def test_mga_close_to_or_above_single_config_search(self, mini_experiment):
        dataset, _, val_idx, mga, _ = mini_experiment
        opentuner = search_tuner_speedups(dataset, val_idx, OpenTunerLike,
                                          budget=6, seed=0)
        # per-input DL predictions should not lose badly to a per-loop search
        assert geometric_mean(mga) >= 0.9 * geometric_mean(opentuner)


class TestStaticVsDynamicShape:
    def test_dynamic_features_help(self, mini_experiment):
        dataset, train_idx, val_idx, mga, _ = mini_experiment
        static_only = dl_tuner_speedups(dataset, train_idx, val_idx,
                                        ModalityConfig.mga_static(),
                                        epochs=25, seed=0)
        # the paper's Figure-5 claim: removing counters degrades (or at best
        # matches) the full model
        assert geometric_mean(mga) >= geometric_mean(static_only) - 0.05
