"""Workload analysis and IR lowering tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import analyze_spec, lower_to_ir
from repro.frontend.openmp import OMPConfig, OMPSchedule, default_omp_config
from repro.frontend.opencl import NDRange, OpenCLKernelInstance
from repro.frontend.spec import ParallelModel
from repro.ir import Opcode
from repro.kernels import registry


class TestWorkloadAnalysis:
    def test_gemm_counts_scale_cubically(self, gemm_spec):
        w1 = analyze_spec(gemm_spec, 0.5)
        w2 = analyze_spec(gemm_spec, 1.0)
        ratio = w2.flops / max(w1.flops, 1.0)
        assert 6.0 < ratio < 10.0      # ~2^3

    def test_access_pattern_fractions_sum_to_one(self, small_specs):
        for spec in small_specs:
            w = analyze_spec(spec, 1.0)
            total = (w.unit_stride_frac + w.strided_frac + w.random_frac
                     + w.invariant_frac)
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_irregular_kernel_has_random_accesses(self, bfs_spec, gemm_spec):
        assert analyze_spec(bfs_spec, 1.0).random_frac > 0.0
        assert analyze_spec(gemm_spec, 1.0).random_frac == pytest.approx(0.0)

    def test_reduction_and_atomic_flags(self):
        hist = registry.get_kernel("dataracebench/DRB093")
        red = registry.get_kernel("dataracebench/DRB061")
        w_hist = analyze_spec(hist, 1.0)
        w_red = analyze_spec(red, 1.0)
        assert w_hist.has_atomic and w_hist.has_reduction
        assert w_red.has_reduction and not w_red.has_atomic

    def test_serial_fraction_bounds(self, small_specs):
        for spec in small_specs:
            w = analyze_spec(spec, 1.0)
            assert 0.0 <= w.serial_fraction < 1.0

    def test_trisolv_keeps_serial_advantage(self):
        w = analyze_spec(registry.get_kernel("polybench/trisolv"), 1.0)
        assert w.serial_advantage > 1.0

    @given(st.floats(0.05, 4.0))
    @settings(max_examples=20, deadline=None)
    def test_working_set_monotone_in_scale(self, scale):
        spec = registry.get_kernel("stream/triad")
        w_small = analyze_spec(spec, scale)
        w_big = analyze_spec(spec, scale * 2)
        assert w_big.working_set_bytes >= w_small.working_set_bytes
        assert w_big.flops >= w_small.flops


class TestLowering:
    def test_all_registry_kernels_lower_and_verify(self):
        for spec in registry.all_kernels():
            module = lower_to_ir(spec)          # verify=True raises on errors
            assert module.num_instructions() > 5

    def test_openmp_structure(self, gemm_spec):
        module = lower_to_ir(gemm_spec)
        names = {f.name for f in module.functions}
        assert "gemm.omp_outlined" in names and "gemm_main" in names
        opcodes = {i.opcode for i in module.instructions()}
        assert Opcode.OMP_FORK in opcodes
        assert Opcode.PHI in opcodes and Opcode.GEP in opcodes

    def test_opencl_structure(self):
        spec = registry.get_kernel("polybench/gemm", model=ParallelModel.OPENCL)
        module = lower_to_ir(spec)
        opcodes = {i.opcode for i in module.instructions()}
        assert Opcode.GET_GLOBAL_ID in opcodes
        assert Opcode.OMP_FORK not in opcodes

    def test_atomic_lowering(self):
        spec = registry.get_kernel("dataracebench/DRB093")
        module = lower_to_ir(spec)
        opcodes = [i.opcode for i in module.instructions()]
        assert Opcode.ATOMIC_ADD in opcodes

    def test_branchy_kernel_has_conditionals(self):
        spec = registry.get_kernel("rodinia/particlefilter")
        module = lower_to_ir(spec)
        opcodes = [i.opcode for i in module.instructions()]
        assert Opcode.CONDBR in opcodes and Opcode.FCMP in opcodes


class TestRuntimeConfigs:
    def test_omp_config_validation(self):
        with pytest.raises(ValueError):
            OMPConfig(0)
        with pytest.raises(ValueError):
            OMPConfig(4, chunk_size=0)

    def test_effective_chunk(self):
        static = OMPConfig(4, OMPSchedule.STATIC, None)
        assert static.effective_chunk(100) == 25
        dynamic = OMPConfig(4, OMPSchedule.DYNAMIC, None)
        assert dynamic.effective_chunk(100) == 1
        explicit = OMPConfig(4, OMPSchedule.DYNAMIC, 512)
        assert explicit.effective_chunk(100) == 100

    def test_default_config(self):
        cfg = default_omp_config(8)
        assert cfg.num_threads == 8 and cfg.schedule == OMPSchedule.STATIC

    def test_ndrange(self):
        nd = NDRange(1000, 64)
        assert nd.num_workgroups == 16
        with pytest.raises(ValueError):
            NDRange(0, 1)

    def test_opencl_instance_features(self, gemm_spec):
        from repro.kernels.registry import as_opencl
        inst = OpenCLKernelInstance(as_opencl(gemm_spec), 1e6, 128)
        feats = inst.feature_dict()
        assert feats["transfer_bytes"] == 1e6 and feats["wgsize"] == 128.0
