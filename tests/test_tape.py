"""Tape record/replay: bit-exact equivalence with the eager engine.

The contract under test: recording a step's backward graph and replaying
the compiled plan is a *performance* change only.  Replayed losses and
gradients are bitwise identical to eager for every traced primitive
(including the fused GRU, the segment kernels and all four convolutions),
arena gradient buffers keep a stable ``id(p.grad)`` across steps, and the
guards (fingerprint, config epoch, unsupported ops) fall back to eager
without changing any numbers.
"""

import numpy as np
import pytest

from repro.core.mga import MGAModel
from repro.gnn.conv import (
    FusedGRUCell,
    GATConv,
    GCNConv,
    GGNNConv,
    SAGEConv,
)
from repro.graphs.hetero import EdgeLayout, GraphBatchCache
from repro.nn import (
    MLP,
    TapeRunner,
    Tensor,
    concat,
    config_epoch,
    cross_entropy,
    log_softmax,
    segment_mean,
    segment_sum,
    set_fast_segment_ops,
    softmax,
    stack_rows,
    use_fast_segment_ops,
)
from repro.nn.autograd import fast_segment_ops_enabled


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _run_tape_vs_eager(make_loss, params):
    """Eager backward vs record+replay of the same deterministic loss.

    Returns ``(eager_loss, eager_grads, replay_loss, replay_grads)``;
    ``make_loss`` must be deterministic (no rng consumption).
    """
    for p in params:
        p.grad = None
    loss = make_loss()
    loss.backward()
    eager_loss = float(loss.data)
    eager_grads = [None if p.grad is None else p.grad.copy() for p in params]

    runner = TapeRunner(wrt=params)
    runner.step("k", make_loss)          # record (itself an eager step)
    replay_loss = runner.step("k", make_loss)
    assert runner.records == 1 and runner.replays == 1
    replay_grads = [None if p.grad is None else p.grad.copy() for p in params]
    return eager_loss, eager_grads, replay_loss, replay_grads


def _assert_bitwise(make_loss, params):
    e_loss, e_grads, r_loss, r_grads = _run_tape_vs_eager(make_loss, params)
    assert r_loss == e_loss
    for eg, rg in zip(e_grads, r_grads):
        if eg is None:
            assert rg is None
        else:
            np.testing.assert_array_equal(rg, eg)
    return r_grads


def _numeric_grad(make_loss, p, eps=1e-6):
    """Central-difference gradient of ``float(make_loss().data)`` wrt ``p``."""
    grad = np.zeros_like(p.data)
    flat, gflat = p.data.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = float(make_loss().data)
        flat[i] = orig - eps
        down = float(make_loss().data)
        flat[i] = orig
        gflat[i] = (up - down) / (2.0 * eps)
    return grad


def _gradcheck_replayed(make_loss, params, atol=1e-4):
    """The *replayed* gradients pass a finite-difference check."""
    replay_grads = _assert_bitwise(make_loss, params)
    for p, rg in zip(params, replay_grads):
        numeric = _numeric_grad(make_loss, p)
        np.testing.assert_allclose(rg, numeric, atol=atol)


def _random_edges(rng, num_nodes, num_edges):
    return np.stack([rng.integers(0, num_nodes, num_edges),
                     rng.integers(0, num_nodes, num_edges)]).astype(np.int64)


# ----------------------------------------------------------------------
# primitive-by-primitive replay equivalence
# ----------------------------------------------------------------------
class TestPrimitiveReplay:
    """Every traced primitive replays bitwise-identical to eager."""

    def _xy(self, shape=(4, 5), seed=0):
        rng = np.random.default_rng(seed)
        return (Tensor(rng.standard_normal(shape), requires_grad=True),
                Tensor(rng.standard_normal(shape), requires_grad=True))

    def test_elementwise_arithmetic(self):
        x, y = self._xy()
        _assert_bitwise(
            lambda: ((x * y + 2.0) / (y * y + 3.0) - x * 0.5).sum(),
            [x, y])

    def test_pow_exp_log(self):
        x, _ = self._xy()
        _assert_bitwise(lambda: ((x * x + 1.0).log() + (x * 0.1).exp()
                                 + (x * x) ** 1.5).sum(), [x])

    def test_activations(self):
        x, _ = self._xy()
        _assert_bitwise(
            lambda: (x.relu() + x.sigmoid() + x.tanh()
                     + x.leaky_relu(0.2)).sum(), [x])

    def test_matmul_and_linear(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        _gradcheck_replayed(lambda: (x.linear(w, b).tanh()
                                     + (x @ w)).sum(), [x, w, b])

    def test_softmax_cross_entropy(self):
        rng = np.random.default_rng(4)
        logits = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        targets = np.array([0, 2, 1, 0, 2])
        weights = np.array([1.0, 0.5, 0.25])
        _assert_bitwise(
            lambda: cross_entropy(logits, targets, class_weights=weights)
            + softmax(logits).sum() * 0.0 + log_softmax(logits).sum() * 0.0,
            [logits])

    def test_shape_ops(self):
        x, y = self._xy((4, 6))
        _assert_bitwise(
            lambda: concat([x.slice_cols(0, 3), y.slice_cols(3, 6)],
                           axis=1).reshape(6, 4).T.sum(), [x, y])

    def test_stack_rows(self):
        rng = np.random.default_rng(6)
        rows = [Tensor(rng.standard_normal(5), requires_grad=True)
                for _ in range(3)]
        _assert_bitwise(lambda: (stack_rows(rows) * 2.0).sum(), rows)

    @pytest.mark.parametrize("fast", [False, True])
    def test_segment_ops(self, fast):
        rng = np.random.default_rng(7)
        x = Tensor(rng.standard_normal((10, 4)), requires_grad=True)
        ids = np.array([0, 0, 1, 2, 2, 2, 3, 3, 0, 1], dtype=np.int64)
        with use_fast_segment_ops(fast):
            _gradcheck_replayed(
                lambda: (segment_sum(x, ids, 4)
                         + segment_mean(x, ids, 4)).sum(), [x])

    def test_index_select(self):
        rng = np.random.default_rng(8)
        x = Tensor(rng.standard_normal((6, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 5, 1], dtype=np.int64)
        _gradcheck_replayed(lambda: (x.index_select(idx) * 3.0).sum(), [x])

    def test_fused_gru(self):
        cell = FusedGRUCell(4, 6, rng=np.random.default_rng(5))
        rng = np.random.default_rng(9)
        x = Tensor(rng.standard_normal((7, 4)), requires_grad=True)
        h = Tensor(rng.standard_normal((7, 6)), requires_grad=True)
        _gradcheck_replayed(lambda: cell(x, h).sum(),
                            [x, h] + cell.parameters(), atol=1e-4)

    @pytest.mark.parametrize("conv_cls", [GCNConv, SAGEConv, GATConv, GGNNConv])
    def test_convolutions(self, conv_cls):
        rng = np.random.default_rng(42)
        num_nodes, num_edges, dim = 12, 40, 4
        layout = EdgeLayout(_random_edges(rng, num_nodes, num_edges),
                            num_nodes)
        conv = conv_cls(dim, dim, rng=np.random.default_rng(7))
        x = Tensor(rng.standard_normal((num_nodes, dim)), requires_grad=True)
        with use_fast_segment_ops(True):
            _gradcheck_replayed(lambda: conv(x, layout).tanh().sum(),
                                [x] + conv.parameters(), atol=1e-4)

    def test_dropout_rng_stream_stays_aligned(self):
        """Replay draws dropout masks from the captured rng, like eager."""
        def build():
            rng = np.random.default_rng(11)
            x = Tensor(rng.standard_normal((8, 5)), requires_grad=True)
            mlp = MLP(5, [6], 3, dropout=0.3, rng=np.random.default_rng(2))
            targets = np.array([0, 1, 2, 0, 1, 2, 0, 1])
            params = [x] + mlp.parameters()
            return (lambda: cross_entropy(mlp(x), targets)), params

        loss_a, params_a = build()          # pure eager, twice
        loss_b, params_b = build()          # record then replay
        runner = TapeRunner(wrt=params_b)
        for step in range(2):
            for p in params_a:
                p.grad = None
            la = loss_a()
            la.backward()
            lb = runner.step("k", loss_b)
            assert lb == float(la.data)
        assert runner.replays == 1
        for pa, pb in zip(params_a, params_b):
            np.testing.assert_array_equal(pb.grad, pa.grad)


# ----------------------------------------------------------------------
# arena gradient buffers
# ----------------------------------------------------------------------
class TestArena:
    def _setup(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        runner = TapeRunner(wrt=[x, w])
        make_loss = lambda: (x @ w).tanh().sum()
        return x, w, runner, make_loss

    def test_grad_identity_stable_across_replays(self):
        x, w, runner, make_loss = self._setup()
        runner.step("k", make_loss)
        runner.step("k", make_loss)
        assert x.grad_arena and w.grad_arena
        ids = (id(x.grad), id(w.grad))
        first = (x.grad.copy(), w.grad.copy())
        runner.step("k", make_loss)
        assert runner.replays == 2
        assert (id(x.grad), id(w.grad)) == ids
        np.testing.assert_array_equal(x.grad, first[0])
        np.testing.assert_array_equal(w.grad, first[1])

    def test_zero_grad_clears_arena_in_place(self):
        x, w, runner, make_loss = self._setup()
        runner.step("k", make_loss)
        runner.step("k", make_loss)
        buf = x.grad
        x.zero_grad()
        assert x.grad is buf, "arena buffer must survive zero_grad"
        assert x.grad_arena
        np.testing.assert_array_equal(buf, np.zeros_like(buf))
        # non-arena gradients still drop to None
        y = Tensor(np.ones(3), requires_grad=True)
        (y * 2.0).sum().backward()
        assert y.grad is not None and not y.grad_arena
        y.zero_grad()
        assert y.grad is None


# ----------------------------------------------------------------------
# guards and fallback
# ----------------------------------------------------------------------
class TestGuards:
    def test_fingerprint_change_rerecords(self):
        rng = np.random.default_rng(1)
        w = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        small = rng.standard_normal((4, 3))
        big = rng.standard_normal((6, 3))
        runner = TapeRunner(wrt=[w])

        def loss_for(data):
            return lambda: (Tensor(data) @ w).sum()

        runner.step("k", loss_for(small), fingerprint=(4,))
        runner.step("k", loss_for(small), fingerprint=(4,))
        assert runner.replays == 1

        # shape change under the same key: plan dropped, fresh record
        loss = runner.step("k", loss_for(big), fingerprint=(6,))
        assert runner.guard_failures == 1 and runner.records == 2
        ref = Tensor(big) @ Tensor(w.data.copy(), requires_grad=True)
        assert loss == float(ref.sum().data)
        np.testing.assert_array_equal(w.grad, big.sum(axis=0)[:, None]
                                      .repeat(2, axis=1))
        runner.step("k", loss_for(big), fingerprint=(6,))
        assert runner.replays == 2

    def test_config_epoch_invalidates_plans(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((8, 3)), requires_grad=True)
        ids = np.array([0, 1, 1, 2, 0, 2, 2, 1], dtype=np.int64)
        make_loss = lambda: (segment_sum(x, ids, 3) ** 2.0).sum()
        runner = TapeRunner(wrt=[x])
        previous = fast_segment_ops_enabled()
        try:
            set_fast_segment_ops(True)
            runner.step("k", make_loss)
            runner.step("k", make_loss)
            assert runner.replays == 1
            epoch = config_epoch()

            set_fast_segment_ops(False)  # bumps the config epoch
            assert config_epoch() == epoch + 1
            loss = runner.step("k", make_loss)
            assert runner.guard_failures == 1 and runner.records == 2
            got = x.grad.copy()

            # numbers match a fresh eager step under the new flag value
            x.grad = None
            ref = make_loss()
            ref.backward()
            assert loss == float(ref.data)
            np.testing.assert_array_equal(got, x.grad)

            # and the re-recorded plan replays under the new flag
            x.grad = None
            runner.step("k", make_loss)
            assert runner.replays == 2
            np.testing.assert_array_equal(x.grad, got)
        finally:
            set_fast_segment_ops(previous)

    def test_leaf_identity_guard(self):
        """Replacing a leaf's array (not just mutating it) drops the plan."""
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        runner = TapeRunner(wrt=[x])
        make_loss = lambda: (x * x).sum()
        runner.step("k", make_loss)
        runner.step("k", make_loss)
        assert runner.replays == 1
        x.data = x.data.copy()        # new array object, same values
        runner.step("k", make_loss)
        assert runner.guard_failures == 1 and runner.records == 2
        np.testing.assert_array_equal(x.grad, 2.0 * x.data)

    def test_unsupported_op_pins_key_to_eager(self):
        x = Tensor(np.arange(4.0) + 1.0, requires_grad=True)

        def untraced_double(t):
            def backward(grad):
                if t.requires_grad:
                    t._accumulate_owned(grad * 2.0)
            return Tensor._make(t.data * 2.0, (t,), backward)

        make_loss = lambda: untraced_double(x).sum()
        runner = TapeRunner(wrt=[x])
        for _ in range(3):
            loss = runner.step("k", make_loss)
            assert loss == float(2.0 * x.data.sum())
            np.testing.assert_array_equal(x.grad, np.full(4, 2.0))
        assert runner.records == 0 and runner.replays == 0
        assert runner.eager_steps == 3 and "k" in runner.unsupported

    def test_absent_param_grad_is_none(self):
        """Params outside the replayed graph get grad=None, like zero_grad."""
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        unused = Tensor(np.ones(3), requires_grad=True)
        unused.grad = np.ones(3)      # stale gradient from elsewhere
        runner = TapeRunner(wrt=[x, unused])
        make_loss = lambda: (x * 3.0).sum()
        runner.step("k", make_loss)
        unused.grad = np.ones(3)
        runner.step("k", make_loss)
        assert runner.replays == 1
        assert unused.grad is None
        np.testing.assert_array_equal(x.grad, np.full((2, 2), 3.0))


# ----------------------------------------------------------------------
# end-to-end training equivalence
# ----------------------------------------------------------------------
class TestTrainingEquivalence:
    def test_fit_histories_and_weights_bitwise_identical(
            self, small_openmp_dataset):
        ds = small_openmp_dataset
        graphs = [s.graph for s in ds.samples]
        vectors = np.stack([s.vector for s in ds.samples])
        extra = ds.counter_matrix()
        labels = ds.labels()

        def fit(tape, runner=None):
            model = MGAModel(graphs[0].feature_dim, vectors.shape[1],
                             extra.shape[1], ds.num_configs, gnn_hidden=12,
                             gnn_out=12, dae_hidden=24, dae_code=8,
                             mlp_hidden=16, seed=0, dtype="float64")
            history = model.fit(graphs, vectors, extra, labels, epochs=4,
                                dae_epochs=2, batch_size=8, tape=tape,
                                tape_runner=runner)
            return history, model.state_dict()

        eager_history, eager_state = fit(tape=False)
        runner = TapeRunner()
        tape_history, tape_state = fit(tape=True, runner=runner)

        assert runner.replays > 0 and runner.records > 0
        assert runner.guard_failures == 0
        assert tape_history["loss"] == eager_history["loss"]
        assert set(tape_state) == set(eager_state)
        for name in eager_state:
            np.testing.assert_array_equal(tape_state[name], eager_state[name])


# ----------------------------------------------------------------------
# batch cache hygiene (audit satellite)
# ----------------------------------------------------------------------
class TestGraphBatchCacheClear:
    def test_clear_drops_entries_and_counters(self, small_openmp_dataset):
        graphs = [s.graph for s in small_openmp_dataset.samples]
        cache = GraphBatchCache(graphs)
        cache.get([0, 1, 2])
        cache.get([0, 1, 2])
        cache.get([3, 4])
        assert len(cache) == 2 and cache.hits == 1 and cache.misses == 2
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0
        cache.get([0, 1, 2])
        assert cache.misses == 1
