"""Autograd engine tests, including hypothesis-driven gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import (
    SegmentLayout,
    Tensor,
    as_tensor,
    concat,
    cross_entropy,
    binary_cross_entropy,
    default_dtype,
    dropout,
    get_default_dtype,
    gradcheck,
    log_softmax,
    mse_loss,
    segment_mean,
    segment_sum,
    softmax,
    stack_rows,
    use_fast_segment_ops,
)

small_matrix = arrays(np.float64, (3, 4),
                      elements=st.floats(-2.0, 2.0, allow_nan=False))


class TestForward:
    def test_basic_arithmetic(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[2.0, 0.5], [1.0, 1.0]])
        np.testing.assert_allclose((a + b).data, [[3, 2.5], [4, 5]])
        np.testing.assert_allclose((a * b).data, [[2, 1], [3, 4]])
        np.testing.assert_allclose((a - b).data, [[-1, 1.5], [2, 3]])
        np.testing.assert_allclose((a / b).data, [[0.5, 4], [3, 4]])

    def test_broadcasting(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.arange(4.0), requires_grad=True)
        out = (a * b).sum()
        out.backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3 * np.ones(4))

    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((5, 7)))
        probs = softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))
        assert np.all(probs >= 0)

    def test_log_softmax_consistency(self):
        logits = Tensor(np.random.default_rng(1).standard_normal((4, 3)))
        np.testing.assert_allclose(np.exp(log_softmax(logits).data),
                                   softmax(logits).data, atol=1e-10)

    def test_scalar_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()


class TestGradcheck:
    def test_matmul_chain(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        assert gradcheck(lambda a, b: ((a @ b).tanh() * 3.0).sum(), [a, b])

    def test_activations(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((4, 3)) + 0.1, requires_grad=True)
        assert gradcheck(lambda x: x.relu().sum(), [x])
        assert gradcheck(lambda x: x.sigmoid().sum(), [x])
        assert gradcheck(lambda x: x.leaky_relu(0.1).sum(), [x])
        assert gradcheck(lambda x: (x * x).exp().sum(), [x])

    def test_reductions_and_reshape(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((4, 6)), requires_grad=True)
        assert gradcheck(lambda x: x.mean(axis=0).sum(), [x])
        assert gradcheck(lambda x: x.reshape(2, 12).sum(axis=1).sum(), [x])
        assert gradcheck(lambda x: x.T.sum(), [x])

    def test_gather_scatter(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 4, 1, 0])
        assert gradcheck(
            lambda x: x.index_select(idx).scatter_add(idx, 5).sigmoid().sum(), [x])

    def test_segment_mean_and_concat(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((6, 2)), requires_grad=True)
        y = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        seg = np.array([0, 0, 1, 1, 2, 2])
        assert gradcheck(
            lambda x, y: concat([segment_mean(x, seg, 3), y], axis=1).sum(),
            [x, y])

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(5)
        logits = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        targets = np.array([0, 1, 2, 3, 1, 0])
        assert gradcheck(lambda lg: cross_entropy(lg, targets), [logits])

    def test_bce_gradient(self):
        rng = np.random.default_rng(6)
        probs = Tensor(rng.uniform(0.2, 0.8, (5, 1)), requires_grad=True)
        targets = np.array([[1.0], [0.0], [1.0], [1.0], [0.0]])
        assert gradcheck(lambda p: binary_cross_entropy(p, targets), [probs])

    @given(small_matrix)
    @settings(max_examples=15, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(small_matrix, small_matrix)
    @settings(max_examples=15, deadline=None)
    def test_add_gradient_distributes(self, a_data, b_data):
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        ((a + b) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones_like(a_data))
        np.testing.assert_allclose(b.grad, 2 * np.ones_like(b_data))


class TestSegmentOps:
    """The sorted-segment (reduceat) kernels vs the np.add.at reference."""

    def test_segment_sum_fast_matches_naive(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((80, 5))
        index = rng.integers(0, 13, 80).astype(np.int64)
        upstream = rng.standard_normal((13, 5))
        results = {}
        for fast in (False, True):
            with use_fast_segment_ops(fast):
                x = Tensor(data.copy(), requires_grad=True)
                layout = SegmentLayout(index, 13) if fast else None
                out = segment_sum(x, index, 13, layout=layout)
                out.backward(upstream)
                results[fast] = (out.data, x.grad)
        np.testing.assert_allclose(results[True][0], results[False][0],
                                   atol=1e-12)
        np.testing.assert_allclose(results[True][1], results[False][1],
                                   atol=1e-12)

    def test_index_select_backward_fast_matches_naive(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((15, 4))
        index = rng.integers(0, 15, 60).astype(np.int64)
        upstream = rng.standard_normal((60, 4))
        grads = {}
        for fast in (False, True):
            with use_fast_segment_ops(fast):
                x = Tensor(data.copy(), requires_grad=True)
                layout = SegmentLayout(index, 15) if fast else None
                x.index_select(index, layout=layout).backward(upstream)
                grads[fast] = x.grad
        np.testing.assert_allclose(grads[True], grads[False], atol=1e-12)

    def test_gradcheck_segment_ops_with_layout(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((7, 3)), requires_grad=True)
        seg = np.array([2, 0, 0, 1, 2, 2, 1])
        layout = SegmentLayout(seg, 3)
        with use_fast_segment_ops(True):
            assert gradcheck(
                lambda x: segment_sum(x, seg, 3, layout=layout).sigmoid().sum(),
                [x])
            assert gradcheck(
                lambda x: segment_mean(x, seg, 3, layout=layout).tanh().sum(),
                [x])

    def test_empty_and_missing_segments(self):
        x = Tensor(np.ones((3, 2)))
        out = segment_sum(x, np.array([0, 0, 3]), 5)
        np.testing.assert_allclose(out.data,
                                   [[2, 2], [0, 0], [0, 0], [1, 1], [0, 0]])
        empty = segment_mean(Tensor(np.zeros((0, 2))), np.zeros(0, np.int64), 2)
        np.testing.assert_allclose(empty.data, np.zeros((2, 2)))

    def test_segment_layout_runs(self):
        layout = SegmentLayout(np.array([3, 1, 1, 3, 0]), 5)
        np.testing.assert_array_equal(layout.counts, [1, 2, 0, 2, 0])
        np.testing.assert_array_equal(layout.segments, [0, 1, 3])
        np.testing.assert_array_equal(layout.starts, [0, 1, 3])


class TestDtypes:
    def test_float32_graph_stays_float32(self):
        x = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
        w = Tensor(np.ones((4, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        out = (x.linear(w, b) * 0.5 + 1.0).sigmoid().relu()
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32
        assert w.grad.dtype == np.float32

    def test_float_arrays_keep_their_dtype(self):
        assert Tensor(np.ones(3, dtype=np.float32)).data.dtype == np.float32
        assert Tensor(np.ones(3)).data.dtype == np.float64
        assert Tensor(np.ones(3), dtype="float32").data.dtype == np.float32

    def test_default_dtype_coerces_non_float(self):
        assert get_default_dtype() == np.float64
        assert Tensor(np.array([1, 2])).data.dtype == np.float64
        with default_dtype(np.float32):
            assert Tensor(np.array([1, 2])).data.dtype == np.float32
        assert Tensor(np.array([1, 2])).data.dtype == np.float64

    def test_gradcheck_promotes_float32_inputs(self):
        x = Tensor(np.random.default_rng(0).standard_normal((3, 3))
                   .astype(np.float32), requires_grad=True)
        assert gradcheck(lambda x: (x * x).sum(), [x])


class TestFusedOps:
    def test_linear_matches_two_node_form(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        fused = x.linear(w, b)
        reference = x @ w + b
        np.testing.assert_array_equal(fused.data, reference.data)
        assert gradcheck(lambda x, w, b: x.linear(w, b).tanh().sum(), [x, w, b])

    def test_slice_cols_gradcheck(self):
        x = Tensor(np.random.default_rng(4).standard_normal((4, 6)),
                   requires_grad=True)
        assert gradcheck(
            lambda x: (x.slice_cols(1, 4) * x.slice_cols(3, 6)).sum(), [x])


class TestUtilities:
    def test_deep_chain_does_not_overflow_recursion(self):
        # the seed's recursive topo sort overflowed Python's stack here
        x = Tensor(np.ones(4), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y * 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(4))

    def test_reused_tensor_accumulates_grad(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_stack_rows(self):
        rows = [Tensor(np.arange(3.0), requires_grad=True) for _ in range(4)]
        out = stack_rows(rows)
        assert out.shape == (4, 3)
        out.sum().backward()
        for r in rows:
            np.testing.assert_allclose(r.grad, np.ones(3))

    def test_dropout_eval_mode_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)))
        out = dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_scales_in_training(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000, 10)))
        out = dropout(x, 0.25, rng, training=True).data
        assert out.mean() == pytest.approx(1.0, rel=0.05)

    def test_mse_loss_zero_for_identical(self):
        x = Tensor(np.ones((3, 3)))
        assert mse_loss(x, np.ones((3, 3))).item() == pytest.approx(0.0)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor(2.0), Tensor)
