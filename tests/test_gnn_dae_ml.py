"""GNN layers, heterogeneous convolution, DAE and classical-ML tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dae import DenoisingAutoencoder, swap_noise
from repro.frontend import lower_to_ir
from repro.gnn import (
    GATConv,
    GCNConv,
    GGNNConv,
    GNNEncoder,
    GRUCell,
    HeteroConv,
    HomogeneousGNNEncoder,
    global_mean_pool,
    global_sum_pool,
    make_conv,
)
from repro.graphs import GraphVocabulary, batch_graphs, build_programl_graph, to_hetero_graph
from repro.kernels import registry
from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    RandomForestRegressor,
)
from repro.nn import AdamW, Tensor, cross_entropy


@pytest.fixture(scope="module")
def tiny_graph_batch():
    vocab = GraphVocabulary()
    specs = [registry.get_kernel(uid)
             for uid in ("polybench/gemm", "stream/triad", "rodinia/bfs")]
    graphs = [to_hetero_graph(build_programl_graph(lower_to_ir(s)), vocab)
              for s in specs]
    return vocab, graphs, batch_graphs(graphs)


class TestConvLayers:
    @pytest.mark.parametrize("conv_cls", [GCNConv, GGNNConv, GATConv])
    def test_forward_shapes(self, conv_cls):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((6, 5)))
        edges = np.array([[0, 1, 2, 3, 4], [1, 2, 3, 4, 5]])
        conv = conv_cls(5, 7, rng=rng)
        out = conv(x, edges)
        assert out.shape == (6, 7)
        assert np.all(np.isfinite(out.data))

    def test_empty_edge_index_handled(self):
        x = Tensor(np.ones((4, 3)))
        for kind in ("gcn", "sage", "gat", "ggnn"):
            conv = make_conv(kind, 3, 2)
            out = conv(x, np.zeros((2, 0), dtype=np.int64))
            assert out.shape == (4, 2)

    def test_make_conv_unknown(self):
        with pytest.raises(ValueError):
            make_conv("transformer", 3, 3)

    def test_gru_cell_interpolates(self):
        cell = GRUCell(4, 4)
        x = Tensor(np.zeros((2, 4)))
        h = Tensor(np.ones((2, 4)))
        out = cell(x, h)
        assert out.shape == (2, 4)
        assert np.all(np.isfinite(out.data))

    def test_conv_is_trainable(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((8, 4)))
        edges = np.array([[i for i in range(7)], [i + 1 for i in range(7)]])
        conv = GGNNConv(4, 4, rng=rng)
        before = [p.data.copy() for p in conv.parameters()]
        target = np.array([0, 1] * 4)
        opt = AdamW(conv.parameters(), lr=0.05)
        from repro.nn.layers import Linear
        head = Linear(4, 2, rng=rng)
        opt2 = AdamW(head.parameters(), lr=0.05)
        for _ in range(5):
            loss = cross_entropy(head(conv(x, edges)), target)
            opt.zero_grad()
            opt2.zero_grad()
            loss.backward()
            opt.step()
            opt2.step()
        after = [p.data for p in conv.parameters()]
        assert any(not np.allclose(b, a) for b, a in zip(before, after))


class TestHeteroAndPooling:
    def test_hetero_conv_mixes_relations(self, tiny_graph_batch):
        vocab, graphs, batch = tiny_graph_batch
        conv = HeteroConv(vocab.feature_dim, 8)
        out = conv(Tensor(batch.node_features), batch.edge_index)
        assert out.shape == (batch.num_nodes, 8)

    def test_hetero_conv_invalid_aggregation(self):
        with pytest.raises(ValueError):
            HeteroConv(4, 4, aggregation="median")

    def test_pooling_shapes(self, tiny_graph_batch):
        _, graphs, batch = tiny_graph_batch
        x = Tensor(batch.node_features)
        mean = global_mean_pool(x, batch.graph_index, batch.num_graphs)
        total = global_sum_pool(x, batch.graph_index, batch.num_graphs)
        assert mean.shape == (3, batch.node_features.shape[1])
        assert total.shape == mean.shape
        # sum pool >= mean pool elementwise magnitude for non-negative features
        assert np.all(total.data >= mean.data - 1e-9)

    def test_encoders_produce_graph_embeddings(self, tiny_graph_batch):
        vocab, graphs, batch = tiny_graph_batch
        hetero = GNNEncoder(vocab.feature_dim, hidden_dim=8, out_dim=6)
        homo = HomogeneousGNNEncoder(vocab.feature_dim, hidden_dim=8, out_dim=6)
        e1 = hetero(batch)
        e2 = homo(batch)
        assert e1.shape == (3, 6) and e2.shape == (3, 6)
        # different kernels should get different embeddings
        assert not np.allclose(e1.data[0], e1.data[2])

    def test_encode_graphs_single(self, tiny_graph_batch):
        vocab, graphs, _ = tiny_graph_batch
        enc = GNNEncoder(vocab.feature_dim, hidden_dim=8, out_dim=4)
        out = enc.encode_graphs(graphs[0])
        assert out.shape == (1, 4)


class TestSwapNoise:
    def test_rate_zero_is_identity(self):
        x = np.arange(20.0).reshape(4, 5)
        np.testing.assert_allclose(swap_noise(x, 0.0), x)

    def test_columns_keep_their_value_multiset(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((50, 3))
        noisy = swap_noise(x, 0.3, rng)
        for j in range(3):
            assert set(np.round(noisy[:, j], 9)) <= set(np.round(x[:, j], 9))

    @given(st.floats(0.0, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_corruption_rate_close_to_requested(self, rate):
        rng = np.random.default_rng(7)
        x = np.arange(4000, dtype=float).reshape(400, 10)
        noisy = swap_noise(x, rate, rng)
        actual = float(np.mean(noisy != x))
        assert actual <= rate + 0.05

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            swap_noise(np.ones((2, 2)), 1.5)


class TestDenoisingAutoencoder:
    def test_training_reduces_reconstruction_loss(self):
        rng = np.random.default_rng(0)
        latent = rng.standard_normal((120, 4))
        x = latent @ rng.standard_normal((4, 24)) + 0.01 * rng.standard_normal((120, 24))
        dae = DenoisingAutoencoder(24, hidden_dim=16, code_dim=6, seed=0)
        losses = dae.fit(x, epochs=12, lr=5e-3)
        assert losses[-1] < losses[0]
        codes = dae.encode(x)
        assert codes.shape == (120, 6)
        assert np.all((codes >= 0) & (codes <= 1))      # sigmoid code layer

    def test_encode_before_fit_raises(self):
        dae = DenoisingAutoencoder(8)
        with pytest.raises(RuntimeError):
            dae.encode(np.ones((2, 8)))

    def test_dimension_validation(self):
        dae = DenoisingAutoencoder(8)
        with pytest.raises(ValueError):
            dae.fit(np.ones((4, 5)), epochs=1)


class TestTrees:
    def _classification_data(self, n=300, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, 5))
        y = ((x[:, 0] + 0.5 * x[:, 1] - x[:, 2]) > 0).astype(int)
        return x, y

    def test_decision_tree_fits_and_bounds_depth(self):
        x, y = self._classification_data()
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert tree.depth() <= 4
        assert (tree.predict(x) == y).mean() > 0.85
        proba = tree.predict_proba(x[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_regressor_reduces_variance(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-2, 2, (200, 2))
        y = np.where(x[:, 0] > 0, 3.0, -3.0) + 0.1 * rng.standard_normal(200)
        model = DecisionTreeRegressor(max_depth=3).fit(x, y)
        pred = model.predict(x)
        assert np.mean((pred - y) ** 2) < np.var(y) * 0.5

    def test_random_forest_uncertainty(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, (100, 3))
        y = x[:, 0] * 2.0
        forest = RandomForestRegressor(n_estimators=8, max_depth=4).fit(x, y)
        std = forest.predict_std(x)
        assert std.shape == (100,)
        assert np.all(std >= 0)

    def test_gradient_boosting_beats_chance(self):
        x, y = self._classification_data(seed=3)
        model = GradientBoostingClassifier(n_estimators=25, max_depth=2).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.85
        proba = model.predict_proba(x[:5])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_gbt_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(np.ones((4, 2)),
                                             np.array([0, 1, 2, 1]))

    def test_tree_input_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.ones((3, 2)), np.array([0, 1]))
