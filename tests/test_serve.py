"""The serving subsystem: artifacts, registry, engine, service and CLI."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import DeviceMapper, MGATuner
from repro.datasets import DevMapDatasetBuilder
from repro.kernels import registry as kernel_registry
from repro.serve import (
    ArtifactError,
    InferenceEngine,
    MapRequest,
    ModelRegistry,
    TuneRequest,
    TuningService,
    load_artifact,
    read_manifest,
    save_artifact,
)
from repro.serve.cli import main as cli_main
from repro.simulator.microarch import COMET_LAKE_8C, TAHITI_7970

TRAIN_KW = dict(gnn_hidden=12, gnn_out=12, dae_hidden=24, dae_code=8,
                mlp_hidden=16)


@pytest.fixture(scope="module")
def trained_tuner(small_openmp_dataset, extractor):
    ds = small_openmp_dataset
    train_idx, val_idx = ds.kfold_by_kernel(k=4, seed=0)[0]
    tuner = MGATuner(COMET_LAKE_8C, ds.configs, extractor=extractor, seed=0,
                     **TRAIN_KW)
    tuner.fit(ds, train_indices=train_idx, epochs=6, dae_epochs=4)
    return tuner, val_idx


@pytest.fixture(scope="module")
def trained_mapper(extractor):
    specs = kernel_registry.opencl_kernels()[:12]
    dataset = DevMapDatasetBuilder(TAHITI_7970, extractor=extractor,
                                   seed=1).build(specs, points_per_kernel=2)
    mapper = DeviceMapper(extractor=extractor, seed=0, **TRAIN_KW)
    mapper.fit(dataset, epochs=6, dae_epochs=4)
    return mapper, dataset


# ----------------------------------------------------------------------
class TestArtifacts:
    def test_tuner_round_trip_identical_predictions(self, tmp_path,
                                                    trained_tuner,
                                                    small_openmp_dataset):
        tuner, val_idx = trained_tuner
        path = tmp_path / "tuner"
        tuner.save(path)
        manifest = read_manifest(path)
        assert manifest["kind"] == "mga_tuner"
        assert manifest["format_version"] == 1

        loaded = MGATuner.load(path)
        assert loaded.counter_names == tuner.counter_names
        assert loaded.configs == tuner.configs
        assert loaded.arch == tuner.arch
        np.testing.assert_array_equal(
            tuner.predict_indices(small_openmp_dataset, val_idx),
            loaded.predict_indices(small_openmp_dataset, val_idx))

    def test_mapper_round_trip(self, tmp_path, trained_mapper):
        mapper, dataset = trained_mapper
        path = tmp_path / "mapper"
        mapper.save(path)
        loaded = DeviceMapper.load(path)
        indices = list(range(len(dataset)))
        np.testing.assert_array_equal(mapper.predict(dataset, indices),
                                      loaded.predict(dataset, indices))
        spec = kernel_registry.opencl_kernels()[15]
        assert loaded.map_device(spec, 1e6, 64) == \
            mapper.map_device(spec, 1e6, 64)

    def test_model_round_trip(self, tmp_path, trained_tuner,
                              small_openmp_dataset):
        tuner, val_idx = trained_tuner
        ds = small_openmp_dataset
        save_artifact(tmp_path / "model", tuner.model)
        model = load_artifact(tmp_path / "model")
        samples = ds.subset(val_idx)
        graphs = [s.graph for s in samples]
        vectors = np.stack([s.vector for s in samples])
        extra = ds.counter_matrix(samples)
        np.testing.assert_array_equal(
            tuner.model.predict(graphs, vectors, extra),
            model.predict(graphs, vectors, extra))

    def test_corrupted_payload_detected(self, tmp_path, trained_tuner):
        tuner, _ = trained_tuner
        path = tmp_path / "corrupt"
        tuner.save(path)
        arrays = path / "arrays.npz"
        blob = bytearray(arrays.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        arrays.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="integrity"):
            load_artifact(path)

    def test_missing_manifest_detected(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_artifact(tmp_path)

    def test_wrong_kind_rejected_by_typed_load(self, tmp_path, trained_tuner):
        tuner, _ = trained_tuner
        tuner.save(tmp_path / "t")
        with pytest.raises(TypeError):
            DeviceMapper.load(tmp_path / "t")


# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_publish_versioning_and_load(self, tmp_path, trained_tuner,
                                         small_openmp_dataset):
        tuner, val_idx = trained_tuner
        registry = ModelRegistry(tmp_path / "reg")
        v1 = registry.publish("openmp-comet", tuner, metadata={"run": 1})
        v2 = registry.publish("openmp-comet", tuner, metadata={"run": 2})
        assert (v1.version, v2.version) == (1, 2)
        assert registry.versions("openmp-comet") == [1, 2]
        assert registry.latest("openmp-comet") == 2
        assert registry.list_models() == ["openmp-comet"]
        assert registry.info("openmp-comet")["metadata"] == {"run": 2}
        assert registry.info("openmp-comet", 1)["metadata"] == {"run": 1}
        assert [e.ref for e in registry.describe()] == \
            ["openmp-comet@1", "openmp-comet@2"]

        loaded = registry.load("openmp-comet")
        np.testing.assert_array_equal(
            tuner.predict_indices(small_openmp_dataset, val_idx),
            loaded.predict_indices(small_openmp_dataset, val_idx))

    def test_invalid_names_and_missing_models(self, tmp_path, trained_tuner):
        registry = ModelRegistry(tmp_path / "reg2")
        with pytest.raises(ValueError):
            registry.publish("../escape", trained_tuner[0])
        with pytest.raises(KeyError):
            registry.load("absent")
        assert registry.latest("absent") is None


# ----------------------------------------------------------------------
class TestDeviceMapperFixes:
    def test_fit_empty_samples_raises(self, trained_mapper):
        _, dataset = trained_mapper
        with pytest.raises(ValueError, match="no training samples"):
            DeviceMapper(**TRAIN_KW).fit(dataset, train_indices=[])

    def test_map_device_before_fit_raises(self):
        spec = kernel_registry.opencl_kernels()[0]
        with pytest.raises(RuntimeError):
            DeviceMapper().map_device(spec, 1e6, 64)


# ----------------------------------------------------------------------
class TestInferenceEngine:
    def test_batched_results_match_naive_tune(self, trained_tuner):
        tuner, _ = trained_tuner
        specs = [kernel_registry.get_kernel(uid)
                 for uid in ("polybench/atax", "polybench/gemm",
                             "rodinia/kmeans")]
        requests = [(spec, scale) for spec in specs for scale in (0.5, 1.5)]
        naive = [tuner.tune(spec, scale=scale) for spec, scale in requests]
        with InferenceEngine(tuner, max_wait_ms=1.0) as engine:
            batched = engine.tune_many(requests)
            repeat = engine.tune(specs[0], scale=0.5)   # memoized path
            stats = engine.stats()
        for (config_a, counters_a), (config_b, counters_b) in zip(naive,
                                                                  batched):
            assert config_a == config_b
            assert counters_a == counters_b
        assert repeat[0] == naive[0][0]
        assert stats["requests"] == len(requests) + 1
        assert stats["completed"] == len(requests) + 1
        assert stats["memoized_responses"] >= 1
        assert stats["errors"] == 0

    def test_map_requests_match_mapper(self, trained_mapper):
        mapper, _ = trained_mapper
        specs = kernel_registry.opencl_kernels()[12:16]
        with InferenceEngine(mapper, max_wait_ms=1.0) as engine:
            handles = [engine.submit_map(spec, 2e6, 128) for spec in specs]
            labels = [h.result(timeout=30) for h in handles]
        assert labels == [mapper.map_device(spec, 2e6, 128) for spec in specs]
        assert all(label in (0, 1) for label in labels)

    def test_request_kind_and_lifecycle_errors(self, trained_tuner,
                                               trained_mapper):
        tuner, _ = trained_tuner
        spec = kernel_registry.get_kernel("polybench/atax")
        with InferenceEngine(tuner) as engine:
            with pytest.raises(TypeError):
                engine.submit_map(spec, 1e6, 64)
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit_tune(spec)
        with pytest.raises(ValueError, match="not fitted"):
            InferenceEngine(MGATuner(COMET_LAKE_8C,
                                     [c for c in trained_tuner[0].configs]))


# ----------------------------------------------------------------------
class TestTuningService:
    def test_tune_and_map_end_to_end(self, tmp_path, trained_tuner,
                                     trained_mapper):
        tuner, _ = trained_tuner
        mapper, _ = trained_mapper
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish("openmp", tuner)
        registry.publish("devmap", mapper)

        with TuningService(registry, max_wait_ms=1.0) as service:
            response = service.tune(TuneRequest(
                model="openmp", kernel="polybench/atax", target_bytes=32e6))
            assert response.model == "openmp" and response.version == 1
            assert response.config_label.startswith(
                f"t{response.num_threads}/")
            assert set(response.counters) == set(tuner.counter_names)
            assert response.latency_ms > 0

            mapped = service.map_device(MapRequest(
                model="devmap", kernel=kernel_registry.opencl_kernels()[15].uid,
                transfer_bytes=4e6, wgsize=128))
            assert mapped.device in ("cpu", "gpu")
            assert mapped.label in (0, 1)

            with pytest.raises(TypeError):
                service.tune(TuneRequest(model="devmap",
                                         kernel="polybench/atax"))
            with pytest.raises(ValueError, match="only one"):
                service.tune(TuneRequest(model="openmp",
                                         kernel="polybench/atax",
                                         scale=1.0, target_bytes=32e6))
            stats = service.stats()
        assert stats["requests"] == 4
        assert stats["errors"] == 2
        assert stats["per_model_requests"] == {"openmp": 2, "devmap": 2}
        assert "openmp@1" in stats["engines"]

    def test_unknown_model_raises(self, tmp_path):
        service = TuningService(ModelRegistry(tmp_path / "empty"))
        with pytest.raises(KeyError):
            service.tune(TuneRequest(model="ghost", kernel="polybench/gemm"))


# ----------------------------------------------------------------------
class TestCLI:
    def test_publish_list_tune(self, tmp_path, capsys):
        root = str(tmp_path / "cli-reg")
        assert cli_main(["publish-demo", "--root", root, "--name", "demo",
                         "--kernels", "4", "--inputs", "2",
                         "--epochs", "2"]) == 0
        published = json.loads(capsys.readouterr().out)
        assert published["published"] == "demo@1"

        assert cli_main(["list", "--root", root]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert [(e["name"], e["version"]) for e in listing] == [("demo", 1)]

        assert cli_main(["info", "--root", root, "demo"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["kind"] == "mga_tuner"

        assert cli_main(["tune", "--root", root, "--model", "demo",
                         "--kernel", "polybench/atax",
                         "--target-bytes", "3.2e7"]) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["kernel"] == "polybench/atax"
        assert response["num_threads"] >= 1

    def test_missing_model_reports_error(self, tmp_path, capsys):
        root = str(tmp_path / "cli-reg2")
        os.makedirs(root, exist_ok=True)
        assert cli_main(["tune", "--root", root, "--model", "ghost",
                         "--kernel", "polybench/gemm"]) == 1
        assert "error" in json.loads(capsys.readouterr().err)


# ----------------------------------------------------------------------
_CHILD_SCRIPT = """\
import json, sys
import numpy as np
from repro.core.features import StaticFeatureExtractor
from repro.datasets.openmp import OpenMPDatasetBuilder
from repro.kernels import registry
from repro.serve import ModelRegistry
from repro.simulator.microarch import COMET_LAKE_8C
from repro.tuners.space import thread_search_space

root, name = sys.argv[1], sys.argv[2]
uids = json.loads(sys.argv[3])
val_idx = json.loads(sys.argv[4])
specs = [registry.get_kernel(uid) for uid in uids]
builder = OpenMPDatasetBuilder(COMET_LAKE_8C,
                               list(thread_search_space(COMET_LAKE_8C)),
                               extractor=StaticFeatureExtractor(vector_dim=32),
                               seed=0)
dataset = builder.build(specs, np.geomspace(1e5, 2e8, 4))
tuner = ModelRegistry(root).load(name)
preds = tuner.predict_indices(dataset, val_idx)
print(json.dumps([int(p) for p in preds]))
"""

#: must match the ``small_specs`` conftest fixture (the child process
#: rebuilds the identical dataset from scratch)
_SMALL_SPEC_UIDS = ["polybench/gemm", "polybench/jacobi-2d",
                    "polybench/trisolv", "rodinia/kmeans", "rodinia/bfs",
                    "stream/triad", "dataracebench/DRB061", "npb/EP"]


class TestCrossProcess:
    def test_published_model_identical_in_fresh_process(
            self, tmp_path, trained_tuner, small_openmp_dataset):
        """The acceptance criterion: publish here, load in a *fresh* python
        process, get identical predictions on the held-out split."""
        tuner, val_idx = trained_tuner
        registry = ModelRegistry(tmp_path / "xproc")
        registry.publish("openmp-comet", tuner)
        parent_preds = [int(p) for p in
                        tuner.predict_indices(small_openmp_dataset, val_idx)]

        script = tmp_path / "child.py"
        script.write_text(_CHILD_SCRIPT)
        src = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir,
                                           "src"))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "xproc"),
             "openmp-comet", json.dumps(_SMALL_SPEC_UIDS),
             json.dumps(list(map(int, val_idx)))],
            capture_output=True, text=True, env=env, timeout=300)
        assert proc.returncode == 0, proc.stderr
        child_preds = json.loads(proc.stdout)
        assert child_preds == parent_preds
