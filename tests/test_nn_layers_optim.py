"""Layers, optimisers, scalers and training-utility tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    AdamW,
    Dropout,
    EarlyStopping,
    GaussRankScaler,
    Linear,
    MinMaxScaler,
    MLP,
    SGD,
    Sequential,
    StandardScaler,
    Tensor,
    accuracy,
    cross_entropy,
    f1_score,
    iterate_minibatches,
    set_seed,
)


class TestLayers:
    def test_linear_shapes_and_params(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)
        assert {p.data.shape for p in layer.parameters()} == {(5, 3), (3,)}

    def test_mlp_construction(self):
        model = MLP(10, [16, 8], 4, dropout=0.1)
        out = model(Tensor(np.zeros((2, 10))))
        assert out.shape == (2, 4)
        assert model.num_parameters() > 0
        with pytest.raises(ValueError):
            MLP(4, [4], 2, activation="swishy")

    def test_train_eval_propagates(self):
        model = Sequential(Linear(4, 4), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.layers)
        model.train()
        assert all(m.training for m in model.layers)

    def test_state_dict_roundtrip(self):
        model = MLP(6, [5], 2)
        state = model.state_dict()
        model2 = MLP(6, [5], 2, rng=np.random.default_rng(99))
        model2.load_state_dict(state)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 6)))
        np.testing.assert_allclose(model(x).data, model2(x).data)

    def test_load_state_dict_shape_mismatch(self):
        model = MLP(6, [5], 2)
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestOptimisers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        w = Tensor(np.zeros(2), requires_grad=True)
        return w, target

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (SGD, {"lr": 0.1, "momentum": 0.9}),
        (Adam, {"lr": 0.1}),
        (AdamW, {"lr": 0.1, "weight_decay": 1e-4}),
    ])
    def test_convergence_on_quadratic(self, optimizer_cls, kwargs):
        w, target = self._quadratic_problem()
        opt = optimizer_cls([w], **kwargs)
        for _ in range(200):
            loss = ((w - Tensor(target)) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=0.05)

    def test_optimizer_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_adam_state_allocated_once_and_updated_in_place(self):
        w = Tensor(np.zeros(4), requires_grad=True)
        opt = Adam([w], lr=0.1)
        buffers = None
        for step in range(3):
            loss = ((w - Tensor(np.ones(4))) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
            if step == 0:
                buffers = (opt._m[id(w)], opt._v[id(w)])
        # the moment buffers must be reused (updated in place), not
        # reallocated via a zeros_like default on every step
        assert opt._m[id(w)] is buffers[0]
        assert opt._v[id(w)] is buffers[1]
        assert np.all(buffers[1] > 0)

    def test_mlp_learns_xor(self):
        set_seed(0)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        model = MLP(2, [16], 2, rng=np.random.default_rng(3))
        opt = Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            loss = cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        preds = model(Tensor(x)).data.argmax(1)
        assert accuracy(preds, y) == 1.0


class TestScalers:
    def test_standard_scaler(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, (200, 4))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)),
                                   x, atol=1e-10)

    def test_minmax_scaler_clips_unseen(self):
        x = np.array([[0.0], [10.0]])
        scaler = MinMaxScaler().fit(x)
        out = scaler.transform(np.array([[-5.0], [5.0], [20.0]]))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_unfitted_scalers_raise(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            GaussRankScaler().transform(np.ones((2, 2)))

    def test_gauss_rank_produces_normal_like_output(self):
        rng = np.random.default_rng(2)
        x = rng.exponential(2.0, size=(500, 2))     # heavily skewed input
        z = GaussRankScaler().fit_transform(x)
        assert abs(float(np.mean(z))) < 0.15
        assert 0.7 < float(np.std(z)) < 1.3

    @given(st.integers(10, 200))
    @settings(max_examples=20, deadline=None)
    def test_gauss_rank_is_monotone(self, n):
        x = np.random.default_rng(n).uniform(size=(n, 1))
        scaler = GaussRankScaler().fit(x)
        z = scaler.transform(np.sort(x, axis=0))
        assert np.all(np.diff(z[:, 0]) >= -1e-12)


class TestTrainingUtilities:
    def test_minibatches_cover_all_indices(self):
        batches = list(iterate_minibatches(103, 10, shuffle=True,
                                           rng=np.random.default_rng(0)))
        all_idx = np.concatenate(batches)
        assert sorted(all_idx.tolist()) == list(range(103))
        with pytest.raises(ValueError):
            list(iterate_minibatches(10, 0))

    def test_early_stopping(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.step(1.0)
        assert not stopper.step(0.5)
        assert not stopper.step(0.6)
        assert stopper.step(0.7)

    def test_metrics(self):
        y = np.array([0, 1, 1, 0, 1])
        p = np.array([0, 1, 0, 0, 1])
        assert accuracy(p, y) == pytest.approx(0.8)
        assert 0.0 < f1_score(p, y) <= 1.0
        assert f1_score(y, y) == pytest.approx(1.0)
        assert accuracy(np.array([]), np.array([])) == 0.0
