"""repro: full reproduction of the MGA tuner (HPDC 2023).

Multimodal Graph neural network and Autoencoder (MGA) tuner for parallel code
regions, together with every substrate it depends on: a miniature LLVM-like
IR, a loop-nest frontend, benchmark kernel library, ProGraML-style graph
construction, IR2Vec-style embeddings, a multicore/accelerator performance
simulator with PAPI-like counters, a numpy autograd deep-learning stack
(dense / GNN / DAE), classical ML models, baseline auto-tuners, dataset
builders and an evaluation harness regenerating every table and figure of the
paper.  The :mod:`repro.serve` subsystem turns trained tuners into versioned
on-disk artifacts behind a batched inference service (model registry +
``python -m repro.serve`` CLI), and :mod:`repro.pipeline` runs every
figure/table as a declarative, stage-cached experiment spec
(``python -m repro run <experiment>``).

Typical entry points
--------------------
>>> from repro import kernels
>>> spec = kernels.polybench.gemm()
>>> from repro.core import MGATuner
>>> from repro.serve import ModelRegistry, TuningService
>>> from repro.pipeline import run_experiment
"""

__version__ = "1.0.0"

__all__ = [
    "ir",
    "frontend",
    "kernels",
    "graphs",
    "embeddings",
    "simulator",
    "profiling",
    "nn",
    "gnn",
    "dae",
    "ml",
    "core",
    "tuners",
    "datasets",
    "evaluation",
    "serve",
    "pipeline",
]
