"""Graph neural networks over ProGraML-style graphs.

Provides the homogeneous convolutions evaluated in the paper (§4.1.3: GCN,
GraphSAGE, GAT and Gated Graph Conv — GGNN wins) plus the heterogeneous
wrapper that runs one convolution per flow relation (control / data / call)
and mean-aggregates the per-relation outputs, and global pooling to obtain a
graph-level embedding.
"""

from repro.gnn.conv import (
    FusedGRUCell,
    GATConv,
    GCNConv,
    GGNNConv,
    GRUCell,
    SAGEConv,
    make_conv,
)
from repro.gnn.hetero import HeteroConv
from repro.gnn.pool import global_mean_pool, global_sum_pool
from repro.gnn.encoder import GNNEncoder, HomogeneousGNNEncoder

__all__ = [
    "GRUCell",
    "FusedGRUCell",
    "GCNConv",
    "SAGEConv",
    "GATConv",
    "GGNNConv",
    "make_conv",
    "HeteroConv",
    "global_mean_pool",
    "global_sum_pool",
    "GNNEncoder",
    "HomogeneousGNNEncoder",
]
