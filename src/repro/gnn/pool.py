"""Graph-level pooling of node embeddings."""

from __future__ import annotations

from typing import Optional

from repro.nn.autograd import SegmentLayout, Tensor, segment_mean
from repro.nn.backend import xp


def global_mean_pool(x: Tensor, graph_index: xp.ndarray, num_graphs: int,
                     layout: Optional[SegmentLayout] = None) -> Tensor:
    """Mean of node embeddings per graph (``[num_graphs, dim]``)."""
    return segment_mean(x, graph_index, num_graphs, layout=layout)


def global_sum_pool(x: Tensor, graph_index: xp.ndarray, num_graphs: int,
                    layout: Optional[SegmentLayout] = None) -> Tensor:
    """Sum of node embeddings per graph."""
    return x.scatter_add(xp.asarray(graph_index, dtype=xp.int64), num_graphs,
                         layout=layout)
