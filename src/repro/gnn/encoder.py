"""Graph encoders: stacked (hetero) convolutions + global pooling.

The paper keeps the heterogeneous GNN shallow (two hidden layers) to keep
training fast; :class:`GNNEncoder` follows that default.
"""

from __future__ import annotations

from typing import Optional

from repro.gnn.conv import make_conv
from repro.gnn.hetero import HeteroConv
from repro.gnn.pool import global_mean_pool
from repro.graphs.hetero import BatchedHeteroGraph, HeteroGraphData, batch_graphs
from repro.nn.autograd import Tensor
from repro.nn.backend import xp
from repro.nn.layers import Linear, Module


class GNNEncoder(Module):
    """Heterogeneous GNN producing one embedding per graph."""

    def __init__(self, in_dim: int, hidden_dim: int = 32, out_dim: int = 32,
                 num_layers: int = 2, conv_type: str = "ggnn",
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one layer")
        rng = rng or xp.default_rng(0)
        self.input_proj = Linear(in_dim, hidden_dim, rng=rng)
        self.layers = [
            HeteroConv(hidden_dim, hidden_dim, conv_type=conv_type, rng=rng)
            for _ in range(num_layers)
        ]
        self.output_proj = Linear(hidden_dim, out_dim, rng=rng)
        self.out_dim = out_dim

    # ------------------------------------------------------------------
    def forward(self, batch: BatchedHeteroGraph) -> Tensor:
        # the sorted edge layouts and the pooling layout are batch
        # invariants: built once per batch, shared by every layer and step
        layouts = batch.relation_layouts()
        features = batch.features_as(self.input_proj.weight.data.dtype)
        h = self.input_proj(Tensor(features)).relu()
        for layer in self.layers:
            h = layer(h, layouts).relu()
        pooled = global_mean_pool(h, batch.graph_index, batch.num_graphs,
                                  layout=batch.pool_layout())
        return self.output_proj(pooled)

    def encode_graphs(self, graphs) -> Tensor:
        """Convenience: batch a list of :class:`HeteroGraphData` and encode."""
        if isinstance(graphs, HeteroGraphData):
            graphs = [graphs]
        return self.forward(batch_graphs(list(graphs)))


class HomogeneousGNNEncoder(Module):
    """Single-relation GNN over the flattened graph (PROGRAML-style baseline).

    Used for the unimodal PROGRAML tuner baseline and for the heterogeneous
    vs. homogeneous ablation: all edges are merged into one relation.
    """

    def __init__(self, in_dim: int, hidden_dim: int = 32, out_dim: int = 32,
                 num_layers: int = 2, conv_type: str = "ggnn",
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        rng = rng or xp.default_rng(0)
        self.input_proj = Linear(in_dim, hidden_dim, rng=rng)
        self.layers = [make_conv(conv_type, hidden_dim, hidden_dim, rng=rng)
                       for _ in range(num_layers)]
        self.output_proj = Linear(hidden_dim, out_dim, rng=rng)
        self.out_dim = out_dim

    def forward(self, batch: BatchedHeteroGraph) -> Tensor:
        merged = batch.merged_layout()
        features = batch.features_as(self.input_proj.weight.data.dtype)
        h = self.input_proj(Tensor(features)).relu()
        for layer in self.layers:
            h = layer(h, merged).relu()
        pooled = global_mean_pool(h, batch.graph_index, batch.num_graphs,
                                  layout=batch.pool_layout())
        return self.output_proj(pooled)
