"""Homogeneous graph convolutions (GCN, GraphSAGE, GAT, GGNN).

All layers share the interface ``forward(x, edge_index) -> Tensor`` where
``x`` is the ``[num_nodes, in_dim]`` node-feature tensor and ``edge_index``
is either a ``[2, num_edges]`` integer array of (source, destination) pairs
for one relation or a precomputed
:class:`~repro.graphs.hetero.EdgeLayout`.  Passing a layout (what the
batched training path does) lets every gather/scatter reuse the sorted
CSR-style edge order instead of re-deriving it per call.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.graphs.hetero import EdgeLayout
from repro.nn import init
from repro.nn.autograd import (
    Tensor,
    _record,
    concat,
    fast_segment_ops_enabled,
    _segment_sum_data,
)
from repro.nn.backend import xp
from repro.nn.layers import Linear, Module
from repro.nn.tape import _leased_matmul, register_op

EdgeIndexLike = Union[xp.ndarray, EdgeLayout]


def _degrees(index: xp.ndarray, num_nodes: int) -> xp.ndarray:
    deg = xp.bincount(index, minlength=num_nodes).astype(xp.float64)
    return xp.maximum(deg, 1.0)


def _as_layout(edge_index: EdgeIndexLike, num_nodes: int) -> EdgeLayout:
    """Wrap a raw edge-index array into an (ephemeral) :class:`EdgeLayout`."""
    if isinstance(edge_index, EdgeLayout):
        return edge_index
    edge_index = xp.asarray(edge_index, dtype=xp.int64)
    if edge_index.size == 0:
        edge_index = edge_index.reshape(2, 0)
    return EdgeLayout(edge_index, num_nodes)


class GRUCell(Module):
    """Reference gated recurrent unit cell (one Linear per gate).

    Kept as the numerical reference for :class:`FusedGRUCell`; the GGNN
    convolution uses the fused variant, which computes the same function with
    one third of the (bigger) matmuls and no per-step ``concat`` copies.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        rng = rng or xp.default_rng(0)
        self.w_z = Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.w_r = Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.w_h = Linear(input_dim + hidden_dim, hidden_dim, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        xh = concat([x, h], axis=1)
        z = self.w_z(xh).sigmoid()
        r = self.w_r(xh).sigmoid()
        xrh = concat([x, r * h], axis=1)
        h_tilde = self.w_h(xrh).tanh()
        return (1.0 - z) * h + z * h_tilde

    def fused(self) -> "FusedGRUCell":
        """A :class:`FusedGRUCell` computing the identical function."""
        fused = FusedGRUCell.__new__(FusedGRUCell)
        Module.__init__(fused)
        fused._assemble(self.w_z.in_features - self.w_z.out_features,
                        self.w_z.out_features,
                        self.w_z.weight.data, self.w_r.weight.data,
                        self.w_h.weight.data,
                        self.w_z.bias.data, self.w_r.bias.data,
                        self.w_h.bias.data)
        return fused


class FusedGRUCell(Module):
    """GRU cell with the three gate matmuls fused.

    The update/reset/candidate gates of the textbook cell all multiply the
    same ``x`` (and ``h``), so their weight matrices are stored column-wise
    concatenated and applied in single wide matmuls::

        gx = x @ [Wz_x | Wr_x | Wh_x] + [bz | br | bh]     # one [n, 3h] matmul
        gh = h @ [Wz_h | Wr_h]                             # one [n, 2h] matmul
        z, r = sigmoid(gx[:, :2h] + gh)                    # split columns
        h~ = tanh(gx[:, 2h:] + (r * h) @ Wh_h)
        h' = (1 - z) * h + z * h~

    Initialisation draws the *same* three Xavier matrices, in the same rng
    order, as the unfused :class:`GRUCell`, so a fused cell is numerically
    interchangeable with the reference one (up to matmul-split rounding).
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        rng = rng or xp.default_rng(0)
        w_z = init.xavier_uniform((input_dim + hidden_dim, hidden_dim), rng)
        w_r = init.xavier_uniform((input_dim + hidden_dim, hidden_dim), rng)
        w_h = init.xavier_uniform((input_dim + hidden_dim, hidden_dim), rng)
        zeros = xp.zeros(hidden_dim)
        self._assemble(input_dim, hidden_dim, w_z, w_r, w_h,
                       zeros, zeros, zeros)

    def _assemble(self, input_dim: int, hidden_dim: int,
                  w_z: xp.ndarray, w_r: xp.ndarray, w_h: xp.ndarray,
                  b_z: xp.ndarray, b_r: xp.ndarray, b_h: xp.ndarray) -> None:
        i, h = int(input_dim), int(hidden_dim)
        dtype = xp.asarray(w_z).dtype
        self.input_dim = i
        self.hidden_dim = h
        self.w_x = Tensor(xp.concatenate([w_z[:i], w_r[:i], w_h[:i]], axis=1),
                          requires_grad=True, name="w_x")
        self.w_h_zr = Tensor(xp.concatenate([w_z[i:], w_r[i:]], axis=1),
                             requires_grad=True, name="w_h_zr")
        self.w_h_h = Tensor(xp.ascontiguousarray(w_h[i:]),
                            requires_grad=True, name="w_h_h")
        self.bias = Tensor(xp.concatenate([b_z, b_r, b_h]).astype(dtype,
                                                                  copy=False),
                           requires_grad=True, name="bias")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """One GRU update as a single fused graph node.

        The whole cell (two wide matmuls, gate sigmoids, candidate tanh,
        convex update) runs in plain numpy with a hand-derived backward
        closure, so a cell step costs one autograd node instead of ~14.
        """
        nh = self.hidden_dim
        w_x, w_h_zr, w_h_h, bias = self.w_x, self.w_h_zr, self.w_h_h, self.bias
        x_data, h_data = x.data, h.data
        gx = x_data @ w_x.data
        gx += bias.data                                     # [n, 3h]
        gh = h_data @ w_h_zr.data                           # [n, 2h]
        pre = gx[:, :2 * nh] + gh
        s = 1.0 / (1.0 + xp.exp(-xp.clip(pre, -60.0, 60.0)))
        z, r = s[:, :nh], s[:, nh:]
        c = r * h_data                                      # reset-gated state
        t = xp.tanh(gx[:, 2 * nh:] + c @ w_h_h.data)        # candidate
        one_minus_z = 1.0 - z
        out = one_minus_z * h_data + z * t

        def backward(grad: xp.ndarray) -> None:
            dt = grad * z
            dm = dt * (1.0 - t * t)                         # pre-tanh grad
            dc = dm @ w_h_h.data.T
            ds = xp.empty_like(s)                           # [n, 2h]
            ds[:, :nh] = grad * (t - h_data)                # dL/dz
            ds[:, nh:] = dc * h_data                        # dL/dr
            dpre = ds * s * (1.0 - s)                       # pre-sigmoid grad
            dgx = xp.concatenate([dpre, dm], axis=1)        # [n, 3h]
            if x.requires_grad:
                x._accumulate_owned(dgx @ w_x.data.T)
            if h.requires_grad:
                dh = grad * one_minus_z
                dh += dc * r
                dh += dpre @ w_h_zr.data.T
                h._accumulate_owned(dh)
            if w_x.requires_grad:
                w_x._accumulate_owned(x_data.T @ dgx)
            if w_h_zr.requires_grad:
                w_h_zr._accumulate_owned(h_data.T @ dpre)
            if w_h_h.requires_grad:
                w_h_h._accumulate_owned(c.T @ dm)
            if bias.requires_grad:
                bias._accumulate_owned(dgx.sum(axis=0))

        parents = (x, h, w_x, w_h_zr, w_h_h, bias)
        return _record(Tensor._make(out, parents, backward),
                       "fused_gru", parents, {"nh": nh})


def _mean_aggregator(layout: EdgeLayout, dtype):
    """Fused mean-aggregation op over edges pre-sorted by destination.

    Forward gathers the per-edge messages directly in destination order,
    reduces each contiguous run with one ``xp.add_reduceat`` and scales by
    the reciprocal in-degree — one autograd node for what is otherwise a
    gather node, a scatter node and a broadcast multiply.  All index arrays
    are loop invariants of the layout, so the returned closure is hoisted
    out of the GGNN ``num_steps`` unrolling.
    """
    src_sorted, dst_sorted, src_sorted_layout = layout.by_dst
    dst_layout = layout.dst_layout
    starts, segments = dst_layout.starts, dst_layout.segments
    num_nodes = layout.num_nodes
    inv_deg = layout.inv_in_deg_as(dtype)                    # [n, 1]

    def aggregate(msg: Tensor) -> Tensor:
        gathered = msg.data[src_sorted]                      # [E, dim]
        sums = xp.zeros((num_nodes,) + gathered.shape[1:],
                        dtype=gathered.dtype)
        if starts.size:
            sums[segments] = xp.add_reduceat(gathered, starts, axis=0)
        out = sums * inv_deg

        def backward(grad: xp.ndarray) -> None:
            if msg.requires_grad:
                per_edge = (grad * inv_deg)[dst_sorted]      # [E, dim]
                msg._accumulate_owned(_segment_sum_data(
                    per_edge, src_sorted, num_nodes, src_sorted_layout))

        return _record(Tensor._make(out, (msg,), backward),
                       "mean_agg", (msg,),
                       {"src_sorted": src_sorted, "dst_sorted": dst_sorted,
                        "src_sorted_layout": src_sorted_layout,
                        "starts": starts, "segments": segments,
                        "num_nodes": num_nodes, "inv_deg": inv_deg})

    return aggregate


class GCNConv(Module):
    """Kipf & Welling graph convolution with symmetric degree normalisation."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, edge_index: EdgeIndexLike) -> Tensor:
        num_nodes = x.shape[0]
        h = self.linear(x)
        layout = _as_layout(edge_index, num_nodes)
        if layout.num_edges == 0:
            return h
        edge_norm, self_norm = layout.gcn_norm_as(h.data.dtype)
        messages = (h.index_select(layout.src, layout=layout.src_layout)
                    * Tensor(edge_norm))
        aggregated = messages.scatter_add(layout.dst, num_nodes,
                                          layout=layout.dst_layout)
        # self connection with its own normalisation
        return aggregated + h * Tensor(self_norm)


class SAGEConv(Module):
    """GraphSAGE with mean aggregation."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        self.linear_self = Linear(in_dim, out_dim, rng=rng)
        self.linear_neigh = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, edge_index: EdgeIndexLike) -> Tensor:
        num_nodes = x.shape[0]
        layout = _as_layout(edge_index, num_nodes)
        if layout.num_edges == 0:
            return self.linear_self(x)
        neigh_sum = (x.index_select(layout.src, layout=layout.src_layout)
                     .scatter_add(layout.dst, num_nodes,
                                  layout=layout.dst_layout))
        neigh_mean = neigh_sum * Tensor(layout.inv_in_deg_as(x.data.dtype))
        return self.linear_self(x) + self.linear_neigh(neigh_mean)


class GATConv(Module):
    """Single-head graph attention (Velickovic et al.), softmax over in-edges."""

    def __init__(self, in_dim: int, out_dim: int, leaky_slope: float = 0.2,
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        rng = rng or xp.default_rng(0)
        self.linear = Linear(in_dim, out_dim, rng=rng)
        self.att_src = Tensor(init.xavier_uniform((out_dim, 1), rng),
                              requires_grad=True, name="att_src")
        self.att_dst = Tensor(init.xavier_uniform((out_dim, 1), rng),
                              requires_grad=True, name="att_dst")
        self.leaky_slope = leaky_slope

    def forward(self, x: Tensor, edge_index: EdgeIndexLike) -> Tensor:
        num_nodes = x.shape[0]
        h = self.linear(x)
        layout = _as_layout(edge_index, num_nodes)
        if layout.num_edges == 0:
            return h
        src_layout, dst_layout = layout.src_layout, layout.dst_layout
        alpha_src = (h @ self.att_src)        # [n, 1]
        alpha_dst = (h @ self.att_dst)
        e = (alpha_src.index_select(layout.src, layout=src_layout)
             + alpha_dst.index_select(layout.dst, layout=dst_layout)
             ).leaky_relu(self.leaky_slope)
        # softmax over incoming edges of each destination node; sub_max is
        # bit-for-bit the old `e - float(e.data.max())` shift (x + (-m) ==
        # x - m) but stays one replayable primitive
        e_exp = e.sub_max().exp()
        denom = e_exp.scatter_add(layout.dst, num_nodes,
                                  layout=dst_layout)          # [n, 1]
        att = e_exp / (denom.index_select(layout.dst, layout=dst_layout)
                       + 1e-12)
        messages = h.index_select(layout.src, layout=src_layout) * att
        aggregated = messages.scatter_add(layout.dst, num_nodes,
                                          layout=dst_layout)
        return aggregated + h


class GGNNConv(Module):
    """Gated graph convolution (Li et al.): GRU update over aggregated
    neighbour messages, iterated ``num_steps`` times.

    This is the per-relation convolution the paper selects for the
    heterogeneous GNN ("each homogeneous sub-network ... is a Gated Graph
    Convolutional Network with a mean aggregation scheme").  The degree
    normalisation and the sorted edge layout are loop invariant, so both are
    hoisted out of the ``num_steps`` unrolling.
    """

    def __init__(self, in_dim: int, out_dim: int, num_steps: int = 2,
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        rng = rng or xp.default_rng(0)
        self.project = Linear(in_dim, out_dim, rng=rng)
        self.message = Linear(out_dim, out_dim, rng=rng)
        self.gru = FusedGRUCell(out_dim, out_dim, rng=rng)
        self.num_steps = int(num_steps)

    def forward(self, x: Tensor, edge_index: EdgeIndexLike) -> Tensor:
        num_nodes = x.shape[0]
        h = self.project(x)
        layout = _as_layout(edge_index, num_nodes)
        if layout.num_edges == 0:
            return h
        if fast_segment_ops_enabled():
            aggregate = _mean_aggregator(layout, h.data.dtype)
            for _ in range(self.num_steps):
                h = self.gru(aggregate(self.message(h)), h)
            return h
        # reference path: gather in edge order, xp.add_at scatter (seed math)
        src, dst = layout.src, layout.dst
        deg_in = Tensor(layout.inv_in_deg_as(h.data.dtype))
        for _ in range(self.num_steps):
            msgs = self.message(h).index_select(src)
            agg = msgs.scatter_add(dst, num_nodes) * deg_in  # mean aggregation
            h = self.gru(agg, h)
        return h


# ----------------------------------------------------------------------
# tape replay emitters for the hand-derived primitives above
# ----------------------------------------------------------------------
def _fused_gru_fwd(rec, ctx):
    vals = ctx.vals
    x, h, wx, wzr, whh, bias = (ctx.vslot(p) for p in rec.parents)
    o, nh = ctx.vslot(rec.out), rec.attrs["nh"]
    cell = ctx.cell(rec)
    n, dtype = rec.out.data.shape[0], rec.out.data.dtype
    # each ufunc below mirrors one eager expression exactly (same op, same
    # operand order), so replay stays bitwise-identical while allocating
    # nothing.  s/c/t/omz survive into this node's backward -> distinct
    # leases; gx/gh/cw/zt die with the thunk -> shared scratch
    gx_buf = ctx.scratch((n, 3 * nh), dtype)
    gh_buf = ctx.scratch((n, 2 * nh), dtype)
    cw_buf = ctx.scratch((n, nh), dtype, 0)
    zt_buf = ctx.scratch((n, nh), dtype, 1)
    s_buf = ctx.buf((n, 2 * nh), dtype)   # pre, then sigmoid(pre) in place
    c_buf = ctx.buf((n, nh), dtype)
    t_buf = ctx.buf((n, nh), dtype)
    omz_buf = ctx.buf((n, nh), dtype)
    out_buf = ctx.obuf(rec)
    z_buf, r_buf = s_buf[:, :nh], s_buf[:, nh:]
    cell.update(s=s_buf, z=z_buf, r=r_buf, c=c_buf, t=t_buf, omz=omz_buf)

    def run():
        xp.matmul(vals[x], vals[wx], out=gx_buf)
        xp.add(gx_buf, vals[bias], out=gx_buf)          # == eager `gx +=`
        xp.matmul(vals[h], vals[wzr], out=gh_buf)
        xp.add(gx_buf[:, :2 * nh], gh_buf, out=s_buf)   # pre
        xp.clip(s_buf, -60.0, 60.0, out=s_buf)
        xp.negative(s_buf, out=s_buf)
        xp.exp(s_buf, out=s_buf)
        xp.add(s_buf, 1.0, out=s_buf)
        xp.divide(1.0, s_buf, out=s_buf)                # s = sigmoid(pre)
        xp.multiply(r_buf, vals[h], out=c_buf)          # c = r * h
        xp.matmul(c_buf, vals[whh], out=cw_buf)
        xp.add(gx_buf[:, 2 * nh:], cw_buf, out=t_buf)
        xp.tanh(t_buf, out=t_buf)                       # t
        xp.subtract(1.0, z_buf, out=omz_buf)            # 1 - z
        xp.multiply(z_buf, t_buf, out=zt_buf)
        xp.multiply(omz_buf, vals[h], out=out_buf)
        xp.add(out_buf, zt_buf, out=out_buf)  # == eager `omz * h + z * t`
        vals[o] = out_buf
    return run


def _fused_gru_bwd(rec, ctx):
    gv, vals, gs = ctx.gv, ctx.vals, ctx.g(rec.out)
    px, ph, pwx, pwzr, pwhh, pbias = rec.parents
    x, h, wx, wzr, whh = (ctx.vslot(p) for p in (px, ph, pwx, pwzr, pwhh))
    nh, cell = rec.attrs["nh"], ctx.cell(rec)
    n, dtype = rec.out.data.shape[0], rec.out.data.dtype
    # pooled scratch mirroring the eager backward's temporaries one-for-one
    # (same ufunc sequence and operand order -> bitwise-identical grads).
    # Everything here dies with this node's contiguous pre+specs block, so
    # shared scratch is safe; only dh/dx (handed to gv, read by the parent
    # node's backward later in the step) need distinct leases
    dt_buf = ctx.scratch((n, nh), dtype, 0)
    tt_buf = ctx.scratch((n, nh), dtype, 1)
    dm_buf = ctx.scratch((n, nh), dtype, 2)
    dc_buf = ctx.scratch((n, nh), dtype, 3)
    ds_buf = ctx.scratch((n, 2 * nh), dtype, 0)
    sm_buf = ctx.scratch((n, 2 * nh), dtype, 1)
    dpre_buf = ctx.scratch((n, 2 * nh), dtype, 2)
    dgx_buf = ctx.scratch((n, 3 * nh), dtype, 1)
    cell.update(dm=dm_buf, dc=dc_buf, dpre=dpre_buf, dgx=dgx_buf)

    def pre():
        grad = gv[gs]
        s, z, t = cell["s"], cell["z"], cell["t"]
        xp.multiply(grad, z, out=dt_buf)                # dt = grad * z
        xp.multiply(t, t, out=tt_buf)
        xp.subtract(1.0, tt_buf, out=tt_buf)
        xp.multiply(dt_buf, tt_buf, out=dm_buf)         # dm = dt * (1 - t*t)
        xp.matmul(dm_buf, vals[whh].T, out=dc_buf)
        xp.subtract(t, vals[h], out=dt_buf)             # scratch: t - h
        xp.multiply(grad, dt_buf, out=ds_buf[:, :nh])
        xp.multiply(dc_buf, vals[h], out=ds_buf[:, nh:])
        xp.multiply(ds_buf, s, out=dpre_buf)            # (ds * s) ...
        xp.subtract(1.0, s, out=sm_buf)
        xp.multiply(dpre_buf, sm_buf, out=dpre_buf)     # ... * (1 - s)
        dgx_buf[:, :2 * nh] = dpre_buf                  # == eager concatenate
        dgx_buf[:, 2 * nh:] = dm_buf

    specs = []
    if px.requires_grad:
        specs.append((px, "owned") + _leased_matmul(
            ctx, px, lambda: cell["dgx"], lambda: vals[wx].T))
    if ph.requires_grad:
        dh_buf = ctx.buf((n, nh), dtype)
        dh_tmp = ctx.scratch((n, nh), dtype, 0)

        def dh_value():
            xp.multiply(gv[gs], cell["omz"], out=dh_buf)
            xp.multiply(cell["dc"], cell["r"], out=dh_tmp)
            xp.add(dh_buf, dh_tmp, out=dh_buf)          # == eager `dh +=`
            xp.matmul(cell["dpre"], vals[wzr].T, out=dh_tmp)
            xp.add(dh_buf, dh_tmp, out=dh_buf)
            return dh_buf
        specs.append((ph, "owned", dh_value, None))
    if pwx.requires_grad:
        specs.append((pwx, "owned") + _leased_matmul(
            ctx, pwx, lambda: vals[x].T, lambda: cell["dgx"]))
    if pwzr.requires_grad:
        specs.append((pwzr, "owned") + _leased_matmul(
            ctx, pwzr, lambda: vals[h].T, lambda: cell["dpre"]))
    if pwhh.requires_grad:
        specs.append((pwhh, "owned") + _leased_matmul(
            ctx, pwhh, lambda: cell["c"].T, lambda: cell["dm"]))
    if pbias.requires_grad:
        db_buf = ctx.buf(pbias.data.shape, dtype)

        def db_value():
            xp.sum(cell["dgx"], axis=0, out=db_buf)
            return db_buf
        specs.append((pbias, "owned", db_value,
                      lambda buf: xp.sum(cell["dgx"], axis=0, out=buf)))
    return pre, specs


def _mean_agg_fwd(rec, ctx):
    vals, m, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
    a = rec.attrs
    src_sorted, starts = a["src_sorted"], a["starts"]
    segments, num_nodes = a["segments"], a["num_nodes"]
    inv_deg, out_buf = a["inv_deg"], ctx.obuf(rec)
    shape, dtype = rec.out.data.shape, rec.out.data.dtype
    # all three die with the thunk -> shared scratch; distinct ``i`` per
    # role because edge/segment/node counts can coincide
    gather_buf = ctx.scratch((src_sorted.shape[0],) + shape[1:], dtype, 0)
    red_buf = ctx.scratch((starts.shape[0],) + shape[1:], dtype, 1)
    sums_buf = ctx.scratch(shape, dtype, 2)

    def run():
        xp.take(vals[m], src_sorted, axis=0, out=gather_buf)
        sums_buf.fill(0.0)  # == eager's fresh xp.zeros
        if starts.size:
            xp.add_reduceat(gather_buf, starts, axis=0, out=red_buf)
            sums_buf[segments] = red_buf
        xp.multiply(sums_buf, inv_deg, out=out_buf)
        vals[o] = out_buf
    return run


def _mean_agg_bwd(rec, ctx):
    gv, gs = ctx.gv, ctx.g(rec.out)
    a = rec.attrs
    src_sorted, dst_sorted = a["src_sorted"], a["dst_sorted"]
    lay, num_nodes = a["src_sorted_layout"], a["num_nodes"]
    inv_deg = a["inv_deg"]
    shape, dtype = rec.out.data.shape, rec.out.data.dtype
    cols = shape[1:]
    # mean_agg is only recorded on the fast-segment-ops path, and a flag
    # toggle bumps the config epoch (dropping this plan), so the reduceat
    # route of _segment_sum_data can be inlined here over pooled scratch
    scaled_buf = ctx.scratch(shape, dtype, 0)
    order_buf = ctx.scratch((dst_sorted.shape[0],) + cols, dtype, 1)
    red_buf = ctx.scratch((lay.starts.shape[0],) + cols, dtype, 2)
    res_buf = ctx.buf((num_nodes,) + cols, dtype)  # handed to gv -> lease
    # the eager path gathers twice -- (g*inv)[dst_sorted] then [lay.order]
    # inside _segment_sum_data; pure gathers compose, so one take over the
    # precomputed composite permutation reads the exact same elements
    perm = dst_sorted[lay.order] if lay.starts.size else dst_sorted

    def value():
        xp.multiply(gv[gs], inv_deg, out=scaled_buf)
        res_buf.fill(0.0)  # == _segment_sum_data's fresh xp.zeros
        if src_sorted.size and lay.starts.size:
            xp.take(scaled_buf, perm, axis=0, out=order_buf)
            xp.add_reduceat(order_buf, lay.starts, axis=0, out=red_buf)
            res_buf[lay.segments] = red_buf
        return res_buf
    return None, [(rec.parents[0], "owned", value, None)]


register_op("fused_gru", _fused_gru_fwd, _fused_gru_bwd)
register_op("mean_agg", _mean_agg_fwd, _mean_agg_bwd)


_CONV_TYPES = {
    "gcn": GCNConv,
    "sage": SAGEConv,
    "gat": GATConv,
    "ggnn": GGNNConv,
}


def make_conv(kind: str, in_dim: int, out_dim: int,
              rng: Optional[xp.Generator] = None, **kwargs) -> Module:
    """Factory over the convolution types compared in §4.1.3."""
    try:
        cls = _CONV_TYPES[kind.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown conv type {kind!r}; "
                         f"choose from {sorted(_CONV_TYPES)}") from exc
    return cls(in_dim, out_dim, rng=rng, **kwargs)
