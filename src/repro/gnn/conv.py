"""Homogeneous graph convolutions (GCN, GraphSAGE, GAT, GGNN).

All layers share the interface ``forward(x, edge_index) -> Tensor`` where
``x`` is the ``[num_nodes, in_dim]`` node-feature tensor and ``edge_index``
is a ``[2, num_edges]`` integer array of (source, destination) pairs for one
relation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.autograd import Tensor, concat
from repro.nn.layers import Linear, Module


def _degrees(index: np.ndarray, num_nodes: int) -> np.ndarray:
    deg = np.bincount(index, minlength=num_nodes).astype(np.float64)
    return np.maximum(deg, 1.0)


class GRUCell(Module):
    """Gated recurrent unit cell (used by the gated graph convolution)."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.w_z = Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.w_r = Linear(input_dim + hidden_dim, hidden_dim, rng=rng)
        self.w_h = Linear(input_dim + hidden_dim, hidden_dim, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        xh = concat([x, h], axis=1)
        z = self.w_z(xh).sigmoid()
        r = self.w_r(xh).sigmoid()
        xrh = concat([x, r * h], axis=1)
        h_tilde = self.w_h(xrh).tanh()
        one = Tensor(1.0)
        return (one - z) * h + z * h_tilde


class GCNConv(Module):
    """Kipf & Welling graph convolution with symmetric degree normalisation."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        h = self.linear(x)
        if edge_index.size == 0:
            return h
        src, dst = edge_index[0], edge_index[1]
        deg_out = _degrees(src, num_nodes)
        deg_in = _degrees(dst, num_nodes)
        norm = 1.0 / np.sqrt(deg_out[src] * deg_in[dst])
        messages = h.index_select(src) * Tensor(norm[:, None])
        aggregated = messages.scatter_add(dst, num_nodes)
        # self connection with its own normalisation
        self_norm = Tensor((1.0 / deg_in)[:, None])
        return aggregated + h * self_norm


class SAGEConv(Module):
    """GraphSAGE with mean aggregation."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.linear_self = Linear(in_dim, out_dim, rng=rng)
        self.linear_neigh = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        if edge_index.size == 0:
            return self.linear_self(x)
        src, dst = edge_index[0], edge_index[1]
        deg_in = _degrees(dst, num_nodes)
        neigh_sum = x.index_select(src).scatter_add(dst, num_nodes)
        neigh_mean = neigh_sum * Tensor((1.0 / deg_in)[:, None])
        return self.linear_self(x) + self.linear_neigh(neigh_mean)


class GATConv(Module):
    """Single-head graph attention (Velickovic et al.), softmax over in-edges."""

    def __init__(self, in_dim: int, out_dim: int, leaky_slope: float = 0.2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.linear = Linear(in_dim, out_dim, rng=rng)
        self.att_src = Tensor(init.xavier_uniform((out_dim, 1), rng),
                              requires_grad=True, name="att_src")
        self.att_dst = Tensor(init.xavier_uniform((out_dim, 1), rng),
                              requires_grad=True, name="att_dst")
        self.leaky_slope = leaky_slope

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        h = self.linear(x)
        if edge_index.size == 0:
            return h
        src, dst = edge_index[0], edge_index[1]
        alpha_src = (h @ self.att_src)        # [n, 1]
        alpha_dst = (h @ self.att_dst)
        e = (alpha_src.index_select(src)
             + alpha_dst.index_select(dst)).leaky_relu(self.leaky_slope)
        # softmax over incoming edges of each destination node
        e_exp = (e - Tensor(float(e.data.max()))).exp()
        denom = e_exp.scatter_add(dst, num_nodes)          # [n, 1]
        att = e_exp / (denom.index_select(dst) + 1e-12)
        messages = h.index_select(src) * att
        aggregated = messages.scatter_add(dst, num_nodes)
        return aggregated + h


class GGNNConv(Module):
    """Gated graph convolution (Li et al.): GRU update over aggregated
    neighbour messages, iterated ``num_steps`` times.

    This is the per-relation convolution the paper selects for the
    heterogeneous GNN ("each homogeneous sub-network ... is a Gated Graph
    Convolutional Network with a mean aggregation scheme").
    """

    def __init__(self, in_dim: int, out_dim: int, num_steps: int = 2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.project = Linear(in_dim, out_dim, rng=rng)
        self.message = Linear(out_dim, out_dim, rng=rng)
        self.gru = GRUCell(out_dim, out_dim, rng=rng)
        self.num_steps = int(num_steps)

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        h = self.project(x)
        if edge_index.size == 0:
            return h
        src, dst = edge_index[0], edge_index[1]
        deg_in = Tensor((1.0 / _degrees(dst, num_nodes))[:, None])
        for _ in range(self.num_steps):
            msgs = self.message(h).index_select(src)
            agg = msgs.scatter_add(dst, num_nodes) * deg_in   # mean aggregation
            h = self.gru(agg, h)
        return h


_CONV_TYPES = {
    "gcn": GCNConv,
    "sage": SAGEConv,
    "gat": GATConv,
    "ggnn": GGNNConv,
}


def make_conv(kind: str, in_dim: int, out_dim: int,
              rng: Optional[np.random.Generator] = None, **kwargs) -> Module:
    """Factory over the convolution types compared in §4.1.3."""
    try:
        cls = _CONV_TYPES[kind.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown conv type {kind!r}; "
                         f"choose from {sorted(_CONV_TYPES)}") from exc
    return cls(in_dim, out_dim, rng=rng, **kwargs)
