"""Heterogeneous graph convolution: one homogeneous GNN per flow relation."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.gnn.conv import make_conv
from repro.graphs.hetero import EdgeLayout, RELATIONS
from repro.nn.autograd import Tensor
from repro.nn.backend import xp
from repro.nn.layers import Module


class HeteroConv(Module):
    """Apply a separate convolution per relation and aggregate node-wise.

    The paper's heterogeneous GNN is "an agglomeration of three different
    GNNs to model each flow graph (data flow, control flow, and call flow)"
    with a mean aggregation scheme over the per-relation outputs; relations
    with no edges in a given graph contribute nothing.
    """

    def __init__(self, in_dim: int, out_dim: int, conv_type: str = "ggnn",
                 relations: Sequence[str] = RELATIONS,
                 aggregation: str = "mean",
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        if aggregation not in ("mean", "sum"):
            raise ValueError("aggregation must be 'mean' or 'sum'")
        rng = rng or xp.default_rng(0)
        self.relations = list(relations)
        self.aggregation = aggregation
        self.convs: Dict[str, Module] = {
            rel: make_conv(conv_type, in_dim, out_dim, rng=rng)
            for rel in self.relations
        }

    def forward(self, x: Tensor, edge_index: Dict[str, xp.ndarray]) -> Tensor:
        """``edge_index`` maps each relation to a ``[2, E]`` array or a
        precomputed :class:`~repro.graphs.hetero.EdgeLayout`."""
        outputs = []
        for rel in self.relations:
            edges = edge_index.get(rel)
            if edges is None:
                continue
            if (edges.num_edges if isinstance(edges, EdgeLayout)
                    else edges.size) == 0:
                continue
            outputs.append(self.convs[rel](x, edges))
        if not outputs:
            # isolated nodes only: fall back to the first relation's transform
            return self.convs[self.relations[0]](x, xp.zeros((2, 0), dtype=xp.int64))
        total = outputs[0]
        for out in outputs[1:]:
            total = total + out
        if self.aggregation == "mean":
            total = total * (1.0 / len(outputs))
        return total
