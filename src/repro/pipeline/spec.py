"""Declarative experiment specifications.

An :class:`ExperimentSpec` is pure data: experiment-level parameters (the
knobs a caller may override), a sequence of typed stages, and a ``quick``
profile of parameter overrides for smoke runs.  Stages come in four kinds —
:class:`BuildDataset`, :class:`TrainModels`, :class:`TuneCandidates` and
:class:`Report` — and reference a registered *implementation* by name plus a
JSON parameter tree in which ``{"$": "param"}`` nodes are substituted with
the experiment-level parameter of that name at run time.

Because specs are data, they round-trip through ``to_config``/``from_config``
(the PR-3 serialisation convention), hash stably for stage caching, and can
be listed/described by the ``python -m repro`` CLI without executing
anything.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, ClassVar, Dict, List, Mapping, Tuple

PARAM_REF_KEY = "$"


# ----------------------------------------------------------------------
# stage implementation registry
# ----------------------------------------------------------------------
_STAGE_IMPLS: Dict[str, Callable] = {}


def stage_impl(name: str) -> Callable[[Callable], Callable]:
    """Register a stage implementation under ``name``.

    Implementations have the signature ``fn(ctx, inputs, **params)`` where
    ``ctx`` is a :class:`~repro.pipeline.runner.StageContext`, ``inputs``
    maps upstream stage names to their outputs, and ``params`` is the
    stage's resolved parameter tree.
    """
    def decorate(fn: Callable) -> Callable:
        if name in _STAGE_IMPLS and _STAGE_IMPLS[name] is not fn:
            raise ValueError(f"stage implementation {name!r} already "
                             f"registered")
        _STAGE_IMPLS[name] = fn
        return fn
    return decorate


def get_stage_impl(name: str) -> Callable:
    if name not in _STAGE_IMPLS:
        # the shared implementations register on first use, keeping
        # `import repro.pipeline` free of the DL/tuner/dataset stack
        import importlib
        importlib.import_module("repro.pipeline.stages")
    try:
        return _STAGE_IMPLS[name]
    except KeyError as exc:
        raise KeyError(f"unknown stage implementation {name!r}; "
                       f"known: {sorted(_STAGE_IMPLS)}") from exc


def has_stage_impl(name: str) -> bool:
    try:
        get_stage_impl(name)
    except KeyError:
        return False
    return True


# ----------------------------------------------------------------------
# typed stages
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: a named call of a registered implementation."""

    impl: str
    name: str = ""
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    inputs: Tuple[str, ...] = ()

    kind: ClassVar[str] = "stage"
    cacheable: ClassVar[bool] = True

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", self.impl.rsplit(".", 1)[-1])
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------
    def resolve_params(self, experiment_params: Mapping[str, Any]
                       ) -> Dict[str, Any]:
        """Substitute ``{"$": name}`` references with experiment params."""
        return {key: _resolve_refs(value, experiment_params, self.name)
                for key, value in self.params.items()}

    def to_config(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "impl": self.impl,
            "name": self.name,
            "params": dict(self.params),
            "inputs": list(self.inputs),
        }

    @staticmethod
    def from_config(data: Mapping[str, Any]) -> "StageSpec":
        cls = STAGE_KINDS[data["kind"]]
        return cls(impl=data["impl"], name=data.get("name", ""),
                   params=dict(data.get("params", {})),
                   inputs=tuple(data.get("inputs", ())))


@dataclasses.dataclass(frozen=True)
class BuildDataset(StageSpec):
    """Simulate / assemble a dataset (the most expensive, most reusable stage)."""

    kind: ClassVar[str] = "build_dataset"
    cacheable: ClassVar[bool] = True


@dataclasses.dataclass(frozen=True)
class TrainModels(StageSpec):
    """Train DL tuners / mappers and collect their predictions."""

    kind: ClassVar[str] = "train_models"
    cacheable: ClassVar[bool] = True


@dataclasses.dataclass(frozen=True)
class TuneCandidates(StageSpec):
    """Run black-box search (through :class:`TuningCampaign` sessions)."""

    kind: ClassVar[str] = "tune_candidates"
    cacheable: ClassVar[bool] = True


@dataclasses.dataclass(frozen=True)
class Report(StageSpec):
    """Assemble the experiment result from upstream stage outputs.

    Reports are cheap and may return arbitrary objects (datasets, trained
    models), so they are never cached.
    """

    kind: ClassVar[str] = "report"
    cacheable: ClassVar[bool] = False


STAGE_KINDS: Dict[str, type] = {
    cls.kind: cls for cls in (BuildDataset, TrainModels, TuneCandidates,
                              Report)
}


def _resolve_refs(tree: Any, params: Mapping[str, Any], stage: str) -> Any:
    if isinstance(tree, Mapping):
        if set(tree) == {PARAM_REF_KEY}:
            ref = tree[PARAM_REF_KEY]
            if ref not in params:
                raise KeyError(f"stage {stage!r} references unknown "
                               f"experiment parameter {ref!r}")
            return params[ref]
        return {k: _resolve_refs(v, params, stage) for k, v in tree.items()}
    if isinstance(tree, (list, tuple)):
        return [_resolve_refs(v, params, stage) for v in tree]
    return tree


def ref(name: str) -> Dict[str, str]:
    """Shorthand for a ``{"$": name}`` parameter reference."""
    return {PARAM_REF_KEY: name}


# ----------------------------------------------------------------------
# the experiment spec
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """A figure/table experiment as declarative data."""

    name: str
    title: str
    description: str = ""
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    stages: Tuple[StageSpec, ...] = ()
    quick: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(self, "quick", dict(self.quick))

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.stages:
            raise ValueError(f"experiment {self.name!r} has no stages")
        seen: List[str] = []
        for stage in self.stages:
            if stage.name in seen:
                raise ValueError(f"duplicate stage name {stage.name!r} in "
                                 f"experiment {self.name!r}")
            for dep in stage.inputs:
                if dep not in seen:
                    raise ValueError(
                        f"stage {stage.name!r} of {self.name!r} depends on "
                        f"{dep!r}, which is not an earlier stage")
            seen.append(stage.name)
        if self.stages[-1].kind != Report.kind:
            raise ValueError(f"experiment {self.name!r} must end with a "
                             f"Report stage")
        unknown = set(self.quick) - set(self.params)
        if unknown:
            raise ValueError(f"quick profile of {self.name!r} overrides "
                             f"unknown parameters {sorted(unknown)}")
        by_name = {s.name: s for s in self.stages}
        for stage in self.stages:
            if stage.cacheable and any(not by_name[d].cacheable
                                       for d in stage.inputs):
                raise ValueError(
                    f"cacheable stage {stage.name!r} of {self.name!r} "
                    f"depends on an uncacheable stage")
            if not has_stage_impl(stage.impl):
                raise ValueError(
                    f"stage {stage.name!r} of {self.name!r} references "
                    f"unregistered implementation {stage.impl!r}")
            # every {"$": ...} reference must name an experiment parameter
            stage.resolve_params(self.params)

    # ------------------------------------------------------------------
    def stage(self, name: str) -> StageSpec:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"experiment {self.name!r} has no stage {name!r}")

    def resolve(self, overrides: Mapping[str, Any] = None,
                quick: bool = False) -> Dict[str, Any]:
        """Final experiment parameters: defaults <- quick <- overrides."""
        resolved = dict(self.params)
        if quick:
            resolved.update(self.quick)
        if overrides:
            unknown = set(overrides) - set(self.params)
            if unknown:
                raise TypeError(
                    f"unknown parameter(s) {sorted(unknown)} for experiment "
                    f"{self.name!r}; accepted: {sorted(self.params)}")
            resolved.update(overrides)
        return resolved

    # ------------------------------------------------------------------
    def to_config(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "params": dict(self.params),
            "stages": [stage.to_config() for stage in self.stages],
            "quick": dict(self.quick),
        }

    @classmethod
    def from_config(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        return cls(
            name=data["name"],
            title=data["title"],
            description=data.get("description", ""),
            params=dict(data.get("params", {})),
            stages=tuple(StageSpec.from_config(s)
                         for s in data.get("stages", ())),
            quick=dict(data.get("quick", {})),
        )
