"""Content-addressed stage cache over :mod:`repro.serve` artifacts.

Every cacheable stage execution is identified by the SHA-256 of its
*recipe*: stage kind + implementation name + resolved parameters + the cache
keys of its upstream stages.  Outputs are stored as ``pipeline_stage``
artifacts (manifest + sha256-checked ``arrays.npz``), staged and renamed
into place so an interrupted write never leaves a half-entry behind.

A corrupted entry (truncated payload, flipped bit, missing manifest) fails
the artifact integrity check on load; the cache deletes it and reports a
miss, so the stage is recomputed and the entry healed — never silently
served broken.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import zipfile
from typing import Any, Dict, Mapping, Optional, Union

from repro.pipeline.codec import CodecError, encode_value

#: staging dirs older than this are orphans of killed runs (active writes
#: live for seconds); swept on cache construction
STALE_STAGING_SECONDS = 3600.0

#: bump when the codec/recipe format changes incompatibly
CACHE_FORMAT_VERSION = 1

_MISS = object()


def recipe_key(kind: str, impl: str, params: Mapping[str, Any],
               input_keys: Mapping[str, str]) -> str:
    """Stable content hash of one stage invocation.

    The package version is part of the recipe, so a release whose stage
    implementations changed semantics invalidates every old entry
    automatically.  Within one development version the key cannot see code
    edits — after changing what a stage *computes*, bump
    ``CACHE_FORMAT_VERSION`` (or clear the cache directory).
    """
    import repro

    recipe = {
        "cache_format": CACHE_FORMAT_VERSION,
        "repro_version": repro.__version__,
        "kind": kind,
        "impl": impl,
        "params": params,
        "inputs": dict(input_keys),
    }
    try:
        canonical = json.dumps(recipe, sort_keys=True,
                               separators=(",", ":"), allow_nan=True)
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"stage {impl!r} has non-JSON-serialisable parameters: {exc}"
        ) from exc
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class StageCache:
    """Read/write stage outputs under ``<root>/<key[:2]>/<key>/``."""

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = os.path.expanduser(os.fspath(root))
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._sweep_stale_staging()

    def _sweep_stale_staging(self) -> None:
        """Remove staging dirs orphaned by killed runs (never active ones)."""
        cutoff = time.time() - STALE_STAGING_SECONDS
        try:
            prefixes = os.scandir(self.root)
        except OSError:
            return
        for prefix in prefixes:
            if not prefix.is_dir():
                continue
            try:
                entries = os.scandir(prefix.path)
            except OSError:
                continue
            for entry in entries:
                if entry.name.startswith(".staging-"):
                    try:
                        if entry.stat().st_mtime < cutoff:
                            shutil.rmtree(entry.path, ignore_errors=True)
                    except OSError:
                        pass

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key)

    def load(self, key: str) -> Any:
        """The cached output for ``key``, or the module-level ``MISS``.

        Any failure to read/verify/decode the entry evicts it and reports a
        miss — a corrupted artifact must never be served.
        """
        path = self.path_for(key)
        if not os.path.isdir(path):
            self.misses += 1
            return _MISS
        from repro.serve.artifacts import ArtifactError, load_artifact
        try:
            output = load_artifact(path)   # KIND_STAGE decodes to the output
        except (ArtifactError, CodecError, KeyError, ValueError,
                zipfile.BadZipFile, FileNotFoundError):
            # a corrupted/incomplete entry must never be served: evict it so
            # the recompute heals the cache.  Transient failures (OSError fd
            # pressure, MemoryError) propagate instead of destroying a
            # possibly intact, expensive entry.
            shutil.rmtree(path, ignore_errors=True)
            self.misses += 1
            return _MISS
        self.hits += 1
        return output

    def store(self, key: str, output: Any,
              metadata: Optional[Dict[str, Any]] = None) -> str:
        """Encode and persist ``output`` under ``key`` (replace-on-success)."""
        from repro.serve.artifacts import KIND_STAGE, write_artifact_dir
        tree, arrays = encode_value(output)
        final = self.path_for(key)
        parent = os.path.dirname(final)
        os.makedirs(parent, exist_ok=True)
        staging = os.path.join(parent, f".staging-{os.getpid()}-{key}")
        if os.path.exists(staging):
            shutil.rmtree(staging)
        try:
            write_artifact_dir(staging, KIND_STAGE, {"output": tree}, arrays,
                               metadata=metadata)
            # entries are content-addressed and immutable: if the key exists
            # (a concurrent run published it first) keep it — replacing an
            # equivalent entry would only race in-flight readers
            if os.path.isdir(final):
                shutil.rmtree(staging, ignore_errors=True)
                return final
            try:
                os.rename(staging, final)
            except OSError:
                if not os.path.isdir(final):
                    raise
                shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return final


MISS = _MISS
