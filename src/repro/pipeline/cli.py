"""Command line interface: ``python -m repro <command>``.

Commands
--------
``run <experiment>``   execute one figure/table spec through the pipeline
``list``               enumerate every registered experiment
``describe <name>``    show a spec's parameters, stages and quick profile

``run`` prints the paper-style report to stdout and a per-stage cache
summary to stderr; ``--json`` switches stdout to one machine-readable JSON
document (used by the CI smoke job to assert cache hits).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

DEFAULT_CACHE = os.path.join("~", ".cache", "repro", "stages")
CACHE_ENV = "REPRO_CACHE_DIR"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper's figure/table experiments through the "
                    "stage-cached pipeline.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment spec")
    run.add_argument("experiment", help="spec name (see `list`)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes for tuning-stage fan-out")
    run.add_argument("--daemon", default=None, metavar="SOCKET",
                     help="send tuning-stage search sessions to a running "
                          "`python -m repro.serve daemon` instead of a "
                          "local pool (default: $REPRO_SERVE_SOCKET)")
    run.add_argument("--quick", action="store_true",
                     help="apply the spec's quick (smoke) parameter profile")
    run.add_argument("--cache", default=None, metavar="DIR",
                     help=f"stage cache directory (default: ${CACHE_ENV} "
                          f"or {DEFAULT_CACHE})")
    run.add_argument("--no-cache", action="store_true",
                     help="disable stage caching for this run")
    run.add_argument("--set", dest="overrides", action="append", default=[],
                     metavar="KEY=VALUE",
                     help="override a spec parameter (VALUE parsed as JSON, "
                          "falling back to a string); repeatable")
    run.add_argument("--json", action="store_true",
                     help="print a machine-readable JSON document instead "
                          "of the report text")

    lst = sub.add_parser("list", help="list registered experiments")
    lst.add_argument("--json", action="store_true")

    desc = sub.add_parser("describe", help="describe one experiment spec")
    desc.add_argument("experiment")
    desc.add_argument("--json", action="store_true")
    return parser


#: Python-style literals people type out of habit; mapping them beats
#: silently treating "False"/"None" as truthy strings
_PYTHON_LITERALS = {"True": True, "False": False, "None": None}


def _parse_overrides(pairs: List[str]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--set expects KEY=VALUE, got {pair!r}")
        key, raw = pair.split("=", 1)
        if raw in _PYTHON_LITERALS:
            overrides[key] = _PYTHON_LITERALS[raw]
            continue
        try:
            overrides[key] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[key] = raw
    return overrides


def _cache_dir(args) -> Optional[str]:
    if args.no_cache:
        return None
    path = args.cache or os.environ.get(CACHE_ENV) or DEFAULT_CACHE
    return os.path.expanduser(path)


class UsageError(Exception):
    """A bad command line (unknown experiment/parameter, malformed --set)."""


def _check_override_types(spec, overrides: Dict[str, Any]) -> None:
    """Catch `--set` values whose shape cannot match the parameter.

    The JSON fallback-to-string is convenient for names and uids, but a
    bare string for a list/bool/numeric parameter is always a typo — fail
    up front instead of deep inside a stage (or, worse, silently: a
    non-empty string is truthy).
    """
    for key, value in overrides.items():
        default = spec.params.get(key)
        if value is None:
            continue
        if default is None:
            # every None-default parameter is an optional count/limit; a
            # bare string can only be a typo
            if isinstance(value, str):
                raise UsageError(f"parameter {key!r} expects a number or "
                                 f"null, got {value!r}")
            continue
        if isinstance(default, list) and not isinstance(value, list):
            raise UsageError(
                f"parameter {key!r} expects a list, got {value!r}; "
                f"quote it as JSON, e.g. --set '{key}=[...]'")
        if isinstance(default, bool) and not isinstance(value, bool):
            raise UsageError(f"parameter {key!r} expects true/false, "
                             f"got {value!r}")
        if (isinstance(default, (int, float)) and not isinstance(default, bool)
                and isinstance(value, str)):
            raise UsageError(f"parameter {key!r} expects a number, "
                             f"got {value!r}")


def _resolve_experiment(name: str):
    """Registry lookup with a usage error for unknown names.

    Failures while *importing* a known experiment module (a broken spec,
    a bad registration) are real bugs and propagate with their traceback.
    """
    from repro.pipeline.registry import EXPERIMENT_MODULES, get_experiment

    if name not in EXPERIMENT_MODULES:
        raise UsageError(f"unknown experiment {name!r}; "
                         f"known: {sorted(EXPERIMENT_MODULES)}")
    return get_experiment(name)


# ----------------------------------------------------------------------
def _cmd_run(args) -> int:
    from repro.pipeline.codec import to_jsonable
    from repro.pipeline.runner import (
        DAEMON_ENV,
        normalize_params,
        quick_requested,
        run_experiment,
    )

    quick = args.quick or quick_requested()
    spec = _resolve_experiment(args.experiment).spec
    # validate the command line before any computation; a failure past this
    # point is a real bug and must surface with its traceback
    try:
        overrides = _parse_overrides(args.overrides)
        _check_override_types(spec, overrides)
        spec.resolve(normalize_params(overrides), quick=quick)
    except (TypeError, ValueError) as exc:
        raise UsageError(str(exc)) from exc

    run = run_experiment(
        args.experiment,
        overrides=overrides,
        quick=quick,
        workers=args.workers,
        cache_dir=_cache_dir(args),
        daemon=args.daemon or os.environ.get(DAEMON_ENV) or None,
    )
    stage_rows = [
        {"name": s.name, "kind": s.kind, "impl": s.impl, "cache": s.cache,
         "key": s.key, "seconds": round(s.seconds, 4)}
        for s in run.stages
    ]
    for row in stage_rows:
        key = f" [{row['key'][:12]}]" if row["key"] else ""
        print(f"stage {row['name']:<16} {row['kind']:<16} "
              f"{row['cache']:<9} {row['seconds']:8.2f}s{key}",
              file=sys.stderr)
    if args.json:
        print(json.dumps({
            "experiment": run.name,
            "params": run.params,
            "stages": stage_rows,
            "cache_summary": run.cache_summary,
            "result": to_jsonable(run.result),
        }, indent=2))
    else:
        print(run.text)
    return 0


def _cmd_list(args) -> int:
    from repro.pipeline.registry import describe

    rows = describe()
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(f"{'experiment':<14}{'stages':>7}  title")
    for row in rows:
        print(f"{row['name']:<14}{len(row['stages']):>7}  {row['title']}")
    print("\nrun one with: python -m repro run <experiment> "
          "[--quick] [--workers N] [--cache DIR]")
    return 0


def _cmd_describe(args) -> int:
    from repro.pipeline.registry import describe

    _resolve_experiment(args.experiment)
    row = describe(args.experiment)[0]
    if args.json:
        print(json.dumps(row, indent=2))
        return 0
    print(f"{row['name']}: {row['title']}")
    if row["description"]:
        print(f"  {row['description']}")
    print("  parameters (override with --set KEY=VALUE):")
    for key, value in row["params"].items():
        quick = (f"   [quick: {json.dumps(row['quick'][key])}]"
                 if key in row["quick"] else "")
        print(f"    {key:<18} = {json.dumps(value)}{quick}")
    print("  stages:")
    for stage in row["stages"]:
        deps = f" <- {', '.join(stage['inputs'])}" if stage["inputs"] else ""
        cache = "cached" if stage["cacheable"] else "uncached"
        print(f"    {stage['name']:<16} {stage['kind']:<16} "
              f"({stage['impl']}, {cache}){deps}")
    return 0


_COMMANDS = {"run": _cmd_run, "list": _cmd_list, "describe": _cmd_describe}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except UsageError as exc:
        # usage errors only — anything raised during the run itself is a
        # bug and propagates with its full traceback
        print(json.dumps({"error": str(exc)}), file=sys.stderr)
        return 1
