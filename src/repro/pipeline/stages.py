"""Shared stage implementations used by several experiment specs.

The OpenMP experiments are different arrangements of the same three moves —
build a (loop × input × configuration) dataset, run black-box search
sessions, train DL tuners — so those moves live here as generic, registered
stage implementations.  Experiment-specific stages (fig9's portability
transfer, table3's device-mapping folds, the reports) are registered by the
experiment modules themselves.

Because the implementations take pure-JSON parameter trees, identical
resolved parameters hash to identical stage-cache keys across experiments:
fig1, fig4, fig5 and fig6 all build the *same* Comet-Lake thread-space
dataset, and whichever runs first builds it for all four.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.evaluation.experiments.common import (
    DL_APPROACHES,
    DL_STATIC_APPROACHES,
    assign_group_speedups,
    dl_tuner_speedups,
    kernel_groups,
    reference_times,
    select_openmp_kernels,
)
from repro.frontend.spec import KernelSpec
from repro.pipeline.spec import stage_impl
from repro.simulator.microarch import MicroArch, microarch_from_config
from repro.tuners.campaign import (
    LookupObjectiveSpec,
    SearchSession,
    run_search_sessions,
)
from repro.tuners.space import SearchSpace, full_search_space, thread_search_space

#: (display name, registered tuner strategy) pairs of the paper's baselines
DEFAULT_SEARCH_TUNERS = (("ytopt", "ytopt"), ("OpenTuner", "opentuner"),
                         ("BLISS", "bliss"))

#: the display names alone, in reporting order (shared by the report stages)
SEARCH_DISPLAY_ORDER = tuple(display for display, _ in DEFAULT_SEARCH_TUNERS)


# ----------------------------------------------------------------------
# declarative sub-resolvers
# ----------------------------------------------------------------------
def resolve_space(space: Mapping[str, Any], arch: MicroArch) -> SearchSpace:
    """Build a :class:`SearchSpace` from its declarative description."""
    kind = space["type"]
    if kind == "threads":
        threads = space.get("threads")
        return thread_search_space(arch, threads=tuple(threads)
                                   if threads else None)
    if kind == "full":
        kwargs: Dict[str, Any] = {"max_threads": arch.max_threads}
        if space.get("threads"):
            kwargs["threads"] = tuple(space["threads"])
        if space.get("chunks"):
            kwargs["chunks"] = tuple(space["chunks"])
        return full_search_space(**kwargs)
    raise ValueError(f"unknown search-space type {kind!r}")


def resolve_kernels(selection: Mapping[str, Any]) -> List[KernelSpec]:
    """Pick kernel specs from their declarative selection."""
    from repro.kernels import registry

    select = selection["select"]
    if select == "openmp":
        return select_openmp_kernels(selection.get("max"),
                                     selection.get("suites"))
    if select == "openmp_excluding":
        specs = registry.openmp_kernels()
        if selection.get("max") is not None:
            specs = specs[:selection["max"]]
        return [s for s in specs if s.uid != selection["exclude"]]
    if select == "uids":
        return [registry.get_kernel(uid) for uid in selection["uids"]]
    if select == "applications":
        from repro.evaluation.experiments.fig7 import default_applications
        return [registry.get_kernel(uid)
                for uid in default_applications(selection.get("max"))]
    if select == "polybench":
        names = list(registry.TABLE1["polybench"])
        if selection.get("max") is not None:
            names = names[:selection["max"]]
        return [registry.get_kernel(f"polybench/{name}") for name in names]
    raise ValueError(f"unknown kernel selection {select!r}")


def resolve_targets(targets: Mapping[str, Any]) -> np.ndarray:
    """Input-size targets from their declarative description."""
    from repro.datasets.openmp import default_input_targets

    kwargs: Dict[str, Any] = {"num": targets["num"]}
    if "min_bytes" in targets:
        kwargs["min_bytes"] = targets["min_bytes"]
    if "max_bytes" in targets:
        kwargs["max_bytes"] = targets["max_bytes"]
    return default_input_targets(**kwargs)


def resolve_splits(dataset, split: Mapping[str, Any]):
    """``(labels, [(train_idx, val_idx), ...])`` from a split description.

    ``labels`` is ``None`` except for leave-one-application-out splits,
    where it names the held-out application of each fold.
    """
    kind = split["type"]
    if kind == "kfold_kernel":
        return None, dataset.kfold_by_kernel(k=split["k"], seed=split["seed"])
    if kind == "unseen_inputs":
        return None, dataset.split_unseen_inputs(k=split["k"],
                                                 seed=split["seed"])
    if kind == "holdout":
        rng = np.random.default_rng(split["seed"])
        indices = rng.permutation(len(dataset))
        n_val = max(1, int(round(len(dataset) * split["fraction"])))
        val_idx, train_idx = list(indices[:n_val]), list(indices[n_val:])
        return None, [(train_idx, val_idx)]
    if kind == "loao":
        loao = dataset.leave_one_application_out()
        return [kernel for kernel, _, _ in loao], \
            [(train, val) for _, train, val in loao]
    raise ValueError(f"unknown split type {kind!r}")


# ----------------------------------------------------------------------
# generic stages
# ----------------------------------------------------------------------
@stage_impl("openmp.dataset")
def build_openmp_dataset_stage(ctx, inputs, *, arch, space, kernels, targets,
                               seed):
    """BuildDataset: simulate the (loop × input × configuration) grid."""
    from repro.datasets.openmp import OpenMPDatasetBuilder

    arch = microarch_from_config(arch)
    search_space = resolve_space(space, arch)
    specs = resolve_kernels(kernels)
    builder = OpenMPDatasetBuilder(arch, list(search_space), seed=seed)
    return builder.build(specs, resolve_targets(targets))


@stage_impl("openmp.search_speedups")
def search_speedups_stage(ctx, inputs, *, split, budget, seed,
                          tuners: Optional[Sequence[Sequence[str]]] = None,
                          enabled: bool = True):
    """TuneCandidates: per-loop black-box search over every fold.

    Every (tuner, fold, loop) triple becomes an independent
    :class:`~repro.tuners.campaign.SearchSession`; with ``workers=N`` the
    sessions fan out over a process pool and the results are identical to
    the serial run (sessions are pure functions of their description).
    """
    if not enabled:
        return {"speedups": {}}
    dataset = inputs["dataset"]
    tuners = [tuple(t) for t in (tuners or DEFAULT_SEARCH_TUNERS)]
    _, splits = resolve_splits(dataset, split)
    space_config = SearchSpace(dataset.configs).to_config()

    # per-fold groups and time grids are tuner-independent: derive them once
    # and share the (pickled) objective grids across the tuners' sessions
    fold_plans = []
    for fold, (_, val_idx) in enumerate(splits):
        groups = kernel_groups(dataset, val_idx)
        objectives = [LookupObjectiveSpec(reference_times(dataset, indices))
                      for _, indices in groups]
        fold_plans.append((fold, val_idx, groups, objectives))

    sessions: List[SearchSession] = []
    layout: List[tuple] = []        # one (display, fold, ...) entry per block
    for display, strategy in tuners:
        for fold, val_idx, groups, objectives in fold_plans:
            layout.append((display, fold, val_idx, groups))
            for j, objective in enumerate(objectives):
                sessions.append(SearchSession(
                    tuner_name=strategy,
                    tuner_config={"budget": budget, "seed": seed + j},
                    space=space_config,
                    objective=objective,
                ))
    outcomes = iter(run_search_sessions(sessions, workers=ctx.workers,
                                        daemon=ctx.daemon))

    speedups: Dict[str, List[np.ndarray]] = {d: [None] * len(splits)
                                             for d, _ in tuners}
    for display, fold, val_idx, groups in layout:
        chosen = [next(outcomes).best_index for _ in groups]
        speedups[display][fold] = assign_group_speedups(
            dataset, val_idx, groups, chosen)
    return {"speedups": speedups}


@stage_impl("openmp.dl_speedups")
def dl_speedups_stage(ctx, inputs, *, split, approaches, epochs, seed):
    """TrainModels: one DL tuner per (approach, fold), per-sample speedups."""
    dataset = inputs["dataset"]
    _, splits = resolve_splits(dataset, split)
    modalities = {**DL_APPROACHES, **DL_STATIC_APPROACHES}
    speedups: Dict[str, List[np.ndarray]] = {name: [] for name in approaches}
    for train_idx, val_idx in splits:
        for name in approaches:
            speedups[name].append(dl_tuner_speedups(
                dataset, train_idx, val_idx, modalities[name],
                epochs=epochs, seed=seed))
    return {"speedups": speedups}
