"""Stage-cached execution of :class:`~repro.pipeline.spec.ExperimentSpec`.

``run_experiment`` resolves the experiment parameters (defaults ← quick
profile ← caller overrides), then walks the stages in order.  For each
cacheable stage it derives a content-addressed key from the stage recipe
(kind + implementation + resolved parameters + upstream keys) and consults
the :class:`~repro.pipeline.cache.StageCache`; hits skip the computation
entirely, so re-running a figure after a training-only parameter change
reuses the dataset build, and re-running it unchanged reuses everything but
the report.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.pipeline.cache import MISS, StageCache, recipe_key
from repro.pipeline.spec import ExperimentSpec, get_stage_impl
from repro.simulator.microarch import GPUDevice, MicroArch

#: environment switch for CLI smoke runs (the CI experiment job sets it);
#: honoured by ``python -m repro`` only — library calls and the legacy
#: ``run()`` shims stay environment-independent
QUICK_ENV = "REPRO_EXP_QUICK"

#: default daemon socket for ``python -m repro run`` (overridden by
#: ``--daemon``); honoured by the CLI only, like :data:`QUICK_ENV`
DAEMON_ENV = "REPRO_SERVE_SOCKET"


@dataclasses.dataclass(frozen=True)
class StageContext:
    """Runtime knobs stage implementations may consult.

    Deliberately *not* part of the cache key: stage outputs must be
    invariant under ``workers`` and under local-vs-daemon execution (the
    campaign sessions guarantee both).  ``daemon`` is the socket path of a
    running :class:`~repro.serve.daemon.ServeDaemon`; tuning stages send
    their search sessions there instead of forking a local pool.
    """

    workers: int = 1
    quick: bool = False
    daemon: Optional[str] = None


@dataclasses.dataclass
class StageRun:
    """How one stage of a run was satisfied."""

    name: str
    kind: str
    impl: str
    cache: str                  # "hit" | "miss" | "uncached" | "disabled"
    key: Optional[str]
    seconds: float


@dataclasses.dataclass
class ExperimentRun:
    """Everything a pipeline run produced."""

    name: str
    params: Dict[str, Any]
    result: Any                       # the final Report stage's output
    text: str                         # human-readable rendering
    stages: List[StageRun]
    outputs: Dict[str, Any]           # every stage's output, by stage name

    @property
    def cache_summary(self) -> Dict[str, int]:
        counts = {"hit": 0, "miss": 0, "uncached": 0, "disabled": 0}
        for stage in self.stages:
            counts[stage.cache] += 1
        return counts


def normalize_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Coerce caller-supplied parameters into their declarative (JSON) form."""
    return {key: _normalize(value) for key, value in params.items()}


def _normalize(value: Any) -> Any:
    if isinstance(value, MicroArch):
        return dataclasses.asdict(value)
    if isinstance(value, GPUDevice):
        return dataclasses.asdict(value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    if isinstance(value, Mapping):
        return {k: _normalize(v) for k, v in value.items()}
    return value


def quick_requested() -> bool:
    return os.environ.get(QUICK_ENV, "") == "1"


def run_experiment(experiment: Union[str, ExperimentSpec], *,
                   overrides: Optional[Mapping[str, Any]] = None,
                   quick: bool = False, workers: int = 1,
                   cache_dir: Optional[Union[str, os.PathLike]] = None,
                   daemon: Optional[str] = None,
                   ) -> ExperimentRun:
    """Run one experiment spec through the stage-cached pipeline.

    ``cache_dir=None`` disables stage caching entirely (the legacy ``run()``
    shims use this, so they always recompute).  ``quick=True`` applies the
    spec's quick profile underneath any explicit ``overrides``.
    """
    from repro.pipeline.registry import get_experiment

    if isinstance(experiment, str):
        entry = get_experiment(experiment)
        spec, formatter = entry.spec, entry.formatter
    else:
        spec, formatter = experiment, None
        spec.validate()

    params = spec.resolve(normalize_params(overrides or {}), quick=quick)
    params = normalize_params(params)
    ctx = StageContext(workers=max(1, int(workers)), quick=quick,
                       daemon=daemon)
    cache = StageCache(cache_dir) if cache_dir is not None else None

    outputs: Dict[str, Any] = {}
    keys: Dict[str, str] = {}
    runs: List[StageRun] = []
    for stage in spec.stages:
        started = time.perf_counter()
        stage_params = stage.resolve_params(params)
        inputs = {name: outputs[name] for name in stage.inputs}
        key = None
        status = "uncached"
        output = MISS
        if stage.cacheable:
            key = recipe_key(stage.kind, stage.impl, stage_params,
                             {name: keys[name] for name in stage.inputs})
            keys[stage.name] = key
            if cache is None:
                status = "disabled"
            else:
                output = cache.load(key)
                status = "miss" if output is MISS else "hit"
        if output is MISS:
            impl = get_stage_impl(stage.impl)
            output = impl(ctx, inputs, **stage_params)
            if cache is not None and stage.cacheable:
                cache.store(key, output, metadata={
                    "experiment": spec.name, "stage": stage.name,
                    "impl": stage.impl, "kind": stage.kind})
        outputs[stage.name] = output
        runs.append(StageRun(name=stage.name, kind=stage.kind,
                             impl=stage.impl, cache=status, key=key,
                             seconds=time.perf_counter() - started))

    result = outputs[spec.stages[-1].name]
    text = formatter(result) if formatter is not None else ""
    return ExperimentRun(name=spec.name, params=params, result=result,
                         text=text, stages=runs, outputs=outputs)


def run_legacy(name: str, overrides: Mapping[str, Any]) -> Any:
    """Back-compat core of the per-module ``run()`` shims.

    Runs the registered spec with no stage cache and returns only the report
    output — exactly what the hand-rolled ``run()`` functions used to
    return.
    """
    return run_experiment(name, overrides=overrides, cache_dir=None).result
