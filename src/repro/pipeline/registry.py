"""Registry of every figure/table experiment spec.

Experiment modules register their spec (plus a result formatter) at import
time; this module knows which module defines which experiment so specs can
be looked up lazily by name — importing :mod:`repro.pipeline` stays cheap.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any, Callable, Dict, List, Optional

from repro.pipeline.spec import ExperimentSpec, has_stage_impl

#: experiment name -> defining module (import order is the paper's order)
EXPERIMENT_MODULES: Dict[str, str] = {
    "fig1": "repro.evaluation.experiments.fig1",
    "fig4": "repro.evaluation.experiments.fig4",
    "fig5": "repro.evaluation.experiments.fig5",
    "fig6": "repro.evaluation.experiments.fig6",
    "fig7": "repro.evaluation.experiments.fig7",
    "fig8": "repro.evaluation.experiments.fig8",
    "fig9": "repro.evaluation.experiments.fig9",
    "table3": "repro.evaluation.experiments.table3",
    "tuning_time": "repro.evaluation.experiments.tuning_time",
}


@dataclasses.dataclass(frozen=True)
class RegisteredExperiment:
    """A spec plus the callable that renders its result for humans."""

    spec: ExperimentSpec
    formatter: Callable[[Any], str]


_EXPERIMENTS: Dict[str, RegisteredExperiment] = {}


def register_experiment(spec: ExperimentSpec,
                        formatter: Callable[[Any], str]
                        ) -> RegisteredExperiment:
    """Validate and register a spec (idempotent per name)."""
    spec.validate()
    entry = RegisteredExperiment(spec=spec, formatter=formatter)
    _EXPERIMENTS[spec.name] = entry
    return entry


def experiment_names() -> List[str]:
    """Every known experiment name (no imports triggered)."""
    return list(EXPERIMENT_MODULES)


def get_experiment(name: str) -> RegisteredExperiment:
    """The registered entry for ``name``, importing its module on demand."""
    if name not in _EXPERIMENTS:
        module = EXPERIMENT_MODULES.get(name)
        if module is None:
            raise KeyError(f"unknown experiment {name!r}; "
                           f"known: {sorted(EXPERIMENT_MODULES)}")
        importlib.import_module(module)
    if name not in _EXPERIMENTS:
        raise RuntimeError(f"module {EXPERIMENT_MODULES[name]!r} did not "
                           f"register experiment {name!r}")
    return _EXPERIMENTS[name]


def get_spec(name: str) -> ExperimentSpec:
    return get_experiment(name).spec


def load_all() -> Dict[str, RegisteredExperiment]:
    """Import every experiment module and return the full registry."""
    for name in EXPERIMENT_MODULES:
        get_experiment(name)
    return dict(_EXPERIMENTS)


def describe(name: Optional[str] = None) -> List[Dict[str, Any]]:
    """Listing rows for the CLI: name, title, stages, parameters."""
    names = [name] if name is not None else experiment_names()
    rows = []
    for exp_name in names:
        spec = get_experiment(exp_name).spec
        rows.append({
            "name": spec.name,
            "title": spec.title,
            "description": spec.description,
            "params": dict(spec.params),
            "quick": dict(spec.quick),
            "stages": [
                {"name": s.name, "kind": s.kind, "impl": s.impl,
                 "cacheable": s.cacheable, "inputs": list(s.inputs),
                 "registered": has_stage_impl(s.impl)}
                for s in spec.stages
            ],
        })
    return rows
