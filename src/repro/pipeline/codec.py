"""Stage-output serialisation: arbitrary result pytrees ⇄ (JSON tree, arrays).

Stage outputs mix plain containers with numpy arrays, configuration objects
and whole datasets.  ``encode_value`` walks the structure and produces a
JSON-serialisable tree plus a flat ``{key: ndarray}`` payload (stored as the
``arrays.npz`` of a :mod:`repro.serve` artifact); ``decode_value`` inverts
it bit-exactly:

* numpy arrays are stored verbatim (dtype and bytes preserved), and arrays
  shared between several samples — kernel graphs, feature vectors — are
  stored once and re-shared on load;
* numpy scalars are inlined (`float(np.float64(x))` is exact, as is the
  reverse), so per-sample counters do not explode into thousands of 0-d
  array entries;
* dict keys keep their types and order (JSON objects would force string
  keys), tuples stay tuples;
* :class:`OpenMPTuningDataset` / :class:`DevMapDataset` have first-class
  encodings, and trained models/tuners/mappers round-trip through the same
  ``payload_for``/``restore_payload`` pair the serve artifacts use.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Tuple

import numpy as np

from repro.frontend.openmp import OMPConfig, OMPSchedule
from repro.graphs.hetero import HeteroGraphData
from repro.simulator.microarch import GPUDevice, MicroArch

_KIND = "__pipeline__"


class CodecError(TypeError):
    """Raised when a stage output contains an unsupported object."""


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
class _Encoder:
    def __init__(self) -> None:
        self.arrays: Dict[str, np.ndarray] = {}
        self._array_memo: Dict[int, str] = {}
        self._object_memo: Dict[int, int] = {}
        self._next_ref = 0

    # ------------------------------------------------------------------
    def _store_array(self, array: np.ndarray) -> str:
        key = self._array_memo.get(id(array))
        if key is None:
            key = f"a{len(self.arrays)}"
            self.arrays[key] = array
            self._array_memo[id(array)] = key
        return key

    def _new_ref(self, obj: Any) -> int:
        ref = self._next_ref
        self._next_ref += 1
        self._object_memo[id(obj)] = ref
        return ref

    # ------------------------------------------------------------------
    def encode(self, obj: Any) -> Any:
        # numpy scalars first: np.float64 subclasses float and would
        # otherwise decay to a plain float across the round trip
        if isinstance(obj, np.generic):
            return self._encode_np_scalar(obj)
        if obj is None or isinstance(obj, (bool, int, str)):
            if isinstance(obj, int) and not isinstance(obj, bool):
                return obj if abs(obj) < (1 << 62) else {
                    _KIND: "bigint", "v": str(obj)}
            return obj
        if isinstance(obj, float):
            return obj
        if id(obj) in self._object_memo:
            return {_KIND: "ref", "id": self._object_memo[id(obj)]}
        if isinstance(obj, np.ndarray):
            return {_KIND: "nd", "k": self._store_array(obj)}
        if isinstance(obj, dict):
            return {_KIND: "dict",
                    "items": [[self.encode(k), self.encode(v)]
                              for k, v in obj.items()]}
        if isinstance(obj, tuple):
            return {_KIND: "tuple", "items": [self.encode(v) for v in obj]}
        if isinstance(obj, list):
            return {_KIND: "list", "items": [self.encode(v) for v in obj]}
        if isinstance(obj, OMPConfig):
            return {_KIND: "ompconfig", "v": obj.to_dict()}
        if isinstance(obj, OMPSchedule):
            return {_KIND: "ompschedule", "v": obj.value}
        if isinstance(obj, MicroArch):
            return {_KIND: "microarch", "v": dataclasses.asdict(obj)}
        if isinstance(obj, GPUDevice):
            return {_KIND: "gpudevice", "v": dataclasses.asdict(obj)}
        if isinstance(obj, HeteroGraphData):
            return self._encode_graph(obj)
        encoded = self._encode_domain(obj)
        if encoded is not None:
            return encoded
        raise CodecError(f"cannot serialise stage output of type "
                         f"{type(obj).__name__}")

    # ------------------------------------------------------------------
    @staticmethod
    def _encode_np_scalar(obj: np.generic) -> Any:
        if isinstance(obj, np.bool_):
            return {_KIND: "npb", "v": bool(obj)}
        if isinstance(obj, np.integer):
            return {_KIND: "npi", "dtype": obj.dtype.str, "v": int(obj)}
        if isinstance(obj, np.floating):
            # float(np.float64) and np.float64(float) are both exact
            return {_KIND: "npf", "dtype": obj.dtype.str, "v": float(obj)}
        raise CodecError(f"unsupported numpy scalar dtype {obj.dtype}")

    def _encode_graph(self, graph: HeteroGraphData) -> Dict[str, Any]:
        return {
            _KIND: "graph",
            "id": self._new_ref(graph),
            "name": graph.name,
            "features": self._store_array(graph.node_features),
            "types": self._store_array(graph.node_types),
            "edges": [[rel, self._store_array(edges)]
                      for rel, edges in graph.edge_index.items()],
        }

    def _encode_domain(self, obj: Any) -> Any:
        from repro.datasets.devmap import DevMapDataset, DevMapSample
        from repro.datasets.openmp import OpenMPSample, OpenMPTuningDataset
        from repro.evaluation.experiments.common import ApproachResult

        if isinstance(obj, ApproachResult):
            return {_KIND: "approach_result", "name": obj.name,
                    "speedups": self.encode(obj.speedups)}
        if isinstance(obj, OpenMPTuningDataset):
            return {
                _KIND: "openmp_dataset",
                "id": self._new_ref(obj),
                "arch": dataclasses.asdict(obj.arch),
                "configs": [c.to_dict() for c in obj.configs],
                "counter_names": list(obj.counter_names),
                "samples": [self._encode_fields(s) for s in obj.samples],
            }
        if isinstance(obj, DevMapDataset):
            return {
                _KIND: "devmap_dataset",
                "id": self._new_ref(obj),
                "gpu_name": obj.gpu_name,
                "samples": [self._encode_fields(s) for s in obj.samples],
            }
        if isinstance(obj, (OpenMPSample, DevMapSample)):
            raise CodecError("samples must be serialised through their "
                             "dataset")
        # trained models / tuners / mappers reuse the serve payload format
        from repro.core.mga import MGAModel
        from repro.core.tuner import DeviceMapper, MGATuner
        if not isinstance(obj, (MGAModel, MGATuner, DeviceMapper)):
            return None
        from repro.serve.artifacts import payload_for
        kind, config, arrays = payload_for(obj)
        return {
            _KIND: "artifact",
            "id": self._new_ref(obj),
            "artifact_kind": kind,
            "config": config,
            "keys": [[name, self._store_array(array)]
                     for name, array in arrays.items()],
        }

    def _encode_fields(self, sample: Any) -> Dict[str, Any]:
        return {field.name: self.encode(getattr(sample, field.name))
                for field in dataclasses.fields(sample)}


def encode_value(obj: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Encode a stage output into a JSON tree plus an array payload."""
    encoder = _Encoder()
    tree = encoder.encode(obj)
    return tree, encoder.arrays


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
class _Decoder:
    def __init__(self, arrays: Dict[str, np.ndarray]):
        self.arrays = arrays
        self._refs: Dict[int, Any] = {}

    def decode(self, tree: Any) -> Any:
        if not isinstance(tree, dict):
            if isinstance(tree, list):   # only produced inside marked nodes
                return [self.decode(v) for v in tree]
            return tree
        kind = tree.get(_KIND)
        if kind is None:
            raise CodecError(f"malformed codec node: {sorted(tree)[:4]}")
        method = getattr(self, f"_decode_{kind}", None)
        if method is None:
            raise CodecError(f"unknown codec node kind {kind!r}")
        return method(tree)

    # ------------------------------------------------------------------
    def _decode_ref(self, tree) -> Any:
        return self._refs[tree["id"]]

    def _decode_bigint(self, tree) -> int:
        return int(tree["v"])

    def _decode_nd(self, tree) -> np.ndarray:
        return self.arrays[tree["k"]]

    def _decode_npb(self, tree):
        return np.bool_(tree["v"])

    def _decode_npi(self, tree):
        return np.dtype(tree["dtype"]).type(int(tree["v"]))

    def _decode_npf(self, tree):
        return np.dtype(tree["dtype"]).type(float(tree["v"]))

    def _decode_dict(self, tree) -> dict:
        return {self.decode(k): self.decode(v) for k, v in tree["items"]}

    def _decode_tuple(self, tree) -> tuple:
        return tuple(self.decode(v) for v in tree["items"])

    def _decode_list(self, tree) -> list:
        return [self.decode(v) for v in tree["items"]]

    def _decode_ompconfig(self, tree) -> OMPConfig:
        return OMPConfig.from_dict(tree["v"])

    def _decode_ompschedule(self, tree) -> OMPSchedule:
        return OMPSchedule(tree["v"])

    def _decode_microarch(self, tree) -> MicroArch:
        return MicroArch(**tree["v"])

    def _decode_gpudevice(self, tree) -> GPUDevice:
        return GPUDevice(**tree["v"])

    def _decode_graph(self, tree) -> HeteroGraphData:
        graph = HeteroGraphData(
            name=tree["name"],
            node_features=self.arrays[tree["features"]],
            node_types=self.arrays[tree["types"]],
            edge_index={rel: self.arrays[key] for rel, key in tree["edges"]},
        )
        self._refs[tree["id"]] = graph
        return graph

    def _decode_approach_result(self, tree):
        from repro.evaluation.experiments.common import ApproachResult
        return ApproachResult(tree["name"], self.decode(tree["speedups"]))

    def _decode_openmp_dataset(self, tree):
        from repro.datasets.openmp import OpenMPSample, OpenMPTuningDataset
        samples = [OpenMPSample(**{k: self.decode(v) for k, v in s.items()})
                   for s in tree["samples"]]
        dataset = OpenMPTuningDataset(
            samples,
            [OMPConfig.from_dict(c) for c in tree["configs"]],
            MicroArch(**tree["arch"]),
            counter_names=list(tree["counter_names"]),
        )
        self._refs[tree["id"]] = dataset
        return dataset

    def _decode_devmap_dataset(self, tree):
        from repro.datasets.devmap import DevMapDataset, DevMapSample
        samples = [DevMapSample(**{k: self.decode(v) for k, v in s.items()})
                   for s in tree["samples"]]
        dataset = DevMapDataset(samples, gpu_name=tree["gpu_name"])
        self._refs[tree["id"]] = dataset
        return dataset

    def _decode_artifact(self, tree):
        from repro.serve.artifacts import restore_payload
        arrays = {name: self.arrays[key] for name, key in tree["keys"]}
        obj = restore_payload(tree["artifact_kind"], tree["config"], arrays)
        self._refs[tree["id"]] = obj
        return obj


def decode_value(tree: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Invert :func:`encode_value`."""
    return _Decoder(dict(arrays)).decode(tree)


# ----------------------------------------------------------------------
# best-effort JSON rendering (CLI --json output, NOT a round-trip format)
# ----------------------------------------------------------------------
def to_jsonable(obj: Any) -> Any:
    """Lossy JSON view of a result: arrays become lists, datasets summaries."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, OMPConfig):
        return obj.to_dict()
    if isinstance(obj, OMPSchedule):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        try:
            from repro.evaluation.experiments.common import ApproachResult
        except ImportError:                      # pragma: no cover
            ApproachResult = ()
        if isinstance(obj, ApproachResult):
            return {"name": obj.name, "speedups": obj.speedups.tolist(),
                    "geomean": float(obj.geomean)}
    return f"<{type(obj).__name__}>"
