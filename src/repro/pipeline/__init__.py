"""The unified experiment pipeline: declarative specs, stage-cached runs.

Every figure/table of the paper is an :class:`ExperimentSpec` — pure data
describing typed stages (:class:`BuildDataset`, :class:`TrainModels`,
:class:`TuneCandidates`, :class:`Report`) over experiment-level parameters.
:func:`run_experiment` executes a spec with content-addressed stage caching
(:class:`StageCache`, backed by :mod:`repro.serve` artifacts), fans tuning
stages out through :class:`~repro.tuners.campaign.TuningCampaign` sessions
(``workers=N``), and renders the paper-style report.

The one CLI for every figure::

    python -m repro list
    python -m repro describe fig4
    python -m repro run fig4 --workers 4 --quick --cache ~/.cache/repro

Library use::

    >>> from repro.pipeline import run_experiment
    >>> run = run_experiment("fig4", overrides={"epochs": 10}, workers=4,
    ...                      cache_dir="~/.cache/repro/stages")
    >>> print(run.text)
"""

from repro.pipeline.spec import (
    BuildDataset,
    ExperimentSpec,
    Report,
    StageSpec,
    TrainModels,
    TuneCandidates,
    get_stage_impl,
    ref,
    stage_impl,
)
from repro.pipeline.cache import StageCache, recipe_key
from repro.pipeline.registry import (
    EXPERIMENT_MODULES,
    RegisteredExperiment,
    describe,
    experiment_names,
    get_experiment,
    get_spec,
    load_all,
    register_experiment,
)
from repro.pipeline.runner import (
    ExperimentRun,
    StageContext,
    StageRun,
    run_experiment,
    run_legacy,
)

__all__ = [
    "ExperimentSpec",
    "StageSpec",
    "BuildDataset",
    "TrainModels",
    "TuneCandidates",
    "Report",
    "ref",
    "stage_impl",
    "get_stage_impl",
    "StageCache",
    "recipe_key",
    "EXPERIMENT_MODULES",
    "RegisteredExperiment",
    "register_experiment",
    "experiment_names",
    "get_experiment",
    "get_spec",
    "load_all",
    "describe",
    "ExperimentRun",
    "StageRun",
    "StageContext",
    "run_experiment",
    "run_legacy",
]
