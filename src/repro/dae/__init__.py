"""Denoising autoencoder modality (IR2Vec code vectors → compressed features).

Implements the paper's §3.2 "Modeling code vectors using Denoising
Autoencoders": Gaussian-rank scaling of the tabular code-vector dataset,
swap-noise corruption, a sigmoid-activated encoder / code / decoder stack
trained self-supervised to reconstruct the uncorrupted inputs, and an
``encode`` method that yields the compressed representation used by the
multimodal fusion.
"""

from repro.dae.noise import swap_noise
from repro.dae.model import DenoisingAutoencoder

__all__ = ["swap_noise", "DenoisingAutoencoder"]
