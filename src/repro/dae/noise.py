"""Swap noise for tabular self-supervision.

"Imagine a table of data, where for any given column, a value in that column
is replaced by a randomly sampled value from the same column, such that 10%
of values in a column has been modified." (§3.2)
"""

from __future__ import annotations

import numpy as np


def swap_noise(x: np.ndarray, rate: float = 0.10,
               rng: np.random.Generator | None = None) -> np.ndarray:
    """Return a corrupted copy of ``x`` with ~``rate`` of cells swapped.

    Each corrupted cell is replaced by the value of the same column in a
    uniformly random row, so the marginal column distributions are preserved.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("swap rate must be in [0, 1]")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("swap_noise expects a 2-D matrix")
    if rate == 0.0 or x.size == 0:
        return x.copy()
    rng = rng or np.random.default_rng(0)
    n, d = x.shape
    mask = rng.random((n, d)) < rate
    donor_rows = rng.integers(0, n, size=(n, d))
    corrupted = x.copy()
    rows, cols = np.nonzero(mask)
    corrupted[rows, cols] = x[donor_rows[rows, cols], cols]
    return corrupted
