"""Denoising autoencoder over Gaussian-rank-scaled code vectors."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dae.noise import swap_noise
from repro.nn.autograd import Tensor
from repro.nn.functional import mse_loss
from repro.nn.layers import Linear, Module, Sequential, Sigmoid
from repro.nn.optim import AdamW
from repro.nn.scalers import GaussRankScaler
from repro.nn.training import iterate_minibatches


class DenoisingAutoencoder(Module):
    """Encoder–code–decoder stack with swap-noise self-supervision.

    The paper keeps the DAE shallow (three hidden layers in total) with
    sigmoid activations; the ``code`` layer output is the compressed feature
    vector used as the second modality of the MGA model.
    """

    def __init__(self, in_dim: int, hidden_dim: int = 48, code_dim: int = 24,
                 swap_rate: float = 0.10, seed: int = 0,
                 dtype: str = "float32"):
        super().__init__()
        if in_dim < 1:
            raise ValueError("in_dim must be positive")
        rng = np.random.default_rng(seed)
        self.in_dim = in_dim
        self.code_dim = code_dim
        self.swap_rate = float(swap_rate)
        self._rng = rng
        self._dtype = np.dtype(dtype)
        self.scaler = GaussRankScaler()
        self.encoder = Sequential(Linear(in_dim, hidden_dim, rng=rng), Sigmoid(),
                                  Linear(hidden_dim, code_dim, rng=rng), Sigmoid())
        self.decoder = Sequential(Linear(code_dim, hidden_dim, rng=rng), Sigmoid(),
                                  Linear(hidden_dim, in_dim, rng=rng))
        self.to_dtype(self._dtype)
        self._fitted = False

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x))

    # ------------------------------------------------------------------
    def extra_state(self):
        state = {"fitted": np.array(float(self._fitted))}
        for key, value in self.scaler.get_state().items():
            state[f"scaler.{key}"] = value
        return state

    def load_extra_state(self, state) -> None:
        if "fitted" in state:
            self._fitted = bool(float(np.asarray(state["fitted"])))
        scaler_state = {key[len("scaler."):]: value
                        for key, value in state.items()
                        if key.startswith("scaler.")}
        self.scaler.set_state(scaler_state)

    # ------------------------------------------------------------------
    def fit(self, vectors: np.ndarray, epochs: int = 40, lr: float = 1e-2,
            batch_size: int = 64, weight_decay: float = 1e-4) -> List[float]:
        """Self-supervised training; returns the per-epoch reconstruction loss."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.in_dim:
            raise ValueError(f"expected [n, {self.in_dim}] training matrix")
        scaled = self.scaler.fit_transform(vectors).astype(self._dtype,
                                                           copy=False)
        optimizer = AdamW(self.parameters(), lr=lr, weight_decay=weight_decay)
        losses: List[float] = []
        for _ in range(epochs):
            epoch_loss = 0.0
            batches = 0
            for batch_idx in iterate_minibatches(scaled.shape[0], batch_size,
                                                 rng=self._rng):
                clean = scaled[batch_idx]
                noisy = swap_noise(clean, self.swap_rate, self._rng)
                recon = self.forward(Tensor(noisy.astype(self._dtype,
                                                         copy=False)))
                loss = mse_loss(recon, clean)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(1, batches))
        self._fitted = True
        return losses

    # ------------------------------------------------------------------
    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Compressed representation of (possibly unseen) code vectors."""
        if not self._fitted:
            raise RuntimeError("DenoisingAutoencoder.encode called before fit")
        return self.encoder(Tensor(self._scaled(vectors))).data

    def encode_tensor(self, vectors: np.ndarray) -> Tensor:
        """Differentiable encoding (used when fine-tuning end-to-end)."""
        return self.encoder(Tensor(self._scaled(vectors)))

    def reconstruction_error(self, vectors: np.ndarray) -> float:
        """Mean squared reconstruction error on clean inputs."""
        scaled = self._scaled(vectors)
        recon = self.forward(Tensor(scaled))
        return float(np.mean((recon.data - scaled) ** 2))

    def _scaled(self, vectors: np.ndarray) -> np.ndarray:
        scaled = self.scaler.transform(np.asarray(vectors, dtype=np.float64))
        return scaled.astype(self._dtype, copy=False)
