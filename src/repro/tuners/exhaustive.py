"""Exhaustive (oracle) tuner: evaluates every configuration."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.frontend.openmp import OMPConfig
from repro.tuners.base import BlackBoxTuner
from repro.tuners.space import SearchSpace


class ExhaustiveTuner(BlackBoxTuner):
    """Brute force over the whole space — the paper's oracle configurations."""

    name = "oracle"

    def __init__(self):
        super().__init__(budget=1, seed=0)

    def effective_budget(self, space: SearchSpace) -> int:
        return len(space)

    def ask(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
            rng: np.random.Generator, k: int = 1) -> List[OMPConfig]:
        """The next ``k`` configurations in space order."""
        done = len(history)
        return [space[i] for i in range(done, min(done + k, len(space)))]

    def get_config(self):
        return {}
