"""Exhaustive (oracle) tuner: evaluates every configuration."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.frontend.openmp import OMPConfig
from repro.tuners.base import BlackBoxTuner, Objective, TuningResult
from repro.tuners.space import SearchSpace


class ExhaustiveTuner(BlackBoxTuner):
    """Brute force over the whole space — the paper's oracle configurations."""

    name = "oracle"

    def __init__(self):
        super().__init__(budget=1, seed=0)

    def tune(self, objective: Objective, space: SearchSpace) -> TuningResult:
        history: List[Tuple[OMPConfig, float]] = [
            (config, float(objective(config))) for config in space
        ]
        best_config, best_time = min(history, key=lambda item: item[1])
        return TuningResult(best_config=best_config, best_time=best_time,
                            evaluations=len(history), history=history)
