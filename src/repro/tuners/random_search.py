"""Random-search tuner (uniform without replacement)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.frontend.openmp import OMPConfig
from repro.tuners.base import BlackBoxTuner, sample_without_replacement
from repro.tuners.space import SearchSpace


class RandomSearchTuner(BlackBoxTuner):
    """Uniformly sample unseen configurations until the budget is spent."""

    name = "random"

    def propose(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
                rng: np.random.Generator) -> OMPConfig:
        seen = {config for config, _ in history}
        remaining = [c for c in space if c not in seen]
        if not remaining:
            return space[rng.integers(len(space))]
        return remaining[rng.integers(len(remaining))]

    def ask(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
            rng: np.random.Generator, k: int = 1) -> List[OMPConfig]:
        """Draw ``k`` distinct unseen configurations in one pass."""
        seen = {config for config, _ in history}
        remaining = [c for c in space if c not in seen]
        return sample_without_replacement(remaining, rng, k)
