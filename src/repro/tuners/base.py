"""Black-box tuner interface shared by the search / Bayesian baselines.

Tuners expose two equivalent driving modes:

* :meth:`BlackBoxTuner.tune` — the classic serial propose/evaluate loop;
* the batch-synchronous *ask/tell* split (:meth:`BlackBoxTuner.ask` /
  :meth:`BlackBoxTuner.tell`) used by
  :class:`~repro.tuners.campaign.TuningCampaign` to fan evaluations out to a
  worker pool: propose ``k`` configurations, evaluate them (possibly in
  parallel), then observe all ``k`` results at once.

``tune`` is implemented on top of ask/tell with ``k=1``, so both modes walk
the search space identically for a given seed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.frontend.analysis import WorkloadSummary
from repro.frontend.openmp import OMPConfig
from repro.simulator.openmp import OpenMPSimulator
from repro.tuners.space import SearchSpace

Objective = Callable[[OMPConfig], float]


@dataclasses.dataclass
class TuningResult:
    """Outcome of one black-box tuning session."""

    best_config: OMPConfig
    best_time: float
    evaluations: int
    history: List[Tuple[OMPConfig, float]]

    def speedup_over(self, reference_time: float) -> float:
        return reference_time / self.best_time


def sample_without_replacement(remaining: List[OMPConfig],
                               rng: np.random.Generator,
                               k: int) -> List[OMPConfig]:
    """Draw up to ``k`` distinct members of ``remaining`` (mutates the list).

    Shared by every tuner's batch ``ask`` warm-up path; the draw order is
    part of the campaign determinism contract, so there is exactly one
    implementation.
    """
    batch: List[OMPConfig] = []
    for _ in range(min(k, len(remaining))):
        batch.append(remaining.pop(int(rng.integers(len(remaining)))))
    return batch


def make_objective(simulator: OpenMPSimulator, summary: WorkloadSummary,
                   counter: Optional[Dict[str, int]] = None) -> Objective:
    """Wrap the simulator into a black-box ``config -> seconds`` objective.

    ``counter`` (optional dict with an ``"evals"`` key) tracks how many real
    executions the tuner consumed — the cost the paper compares in §4.1.4.
    """
    def objective(config: OMPConfig) -> float:
        if counter is not None:
            counter["evals"] = counter.get("evals", 0) + 1
        return simulator.run(summary, config).time_seconds

    return objective


class BlackBoxTuner:
    """Base class: explore a :class:`SearchSpace` within an evaluation budget."""

    name = "blackbox"

    def __init__(self, budget: int = 10, seed: int = 0):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = int(budget)
        self.seed = seed

    # ------------------------------------------------------------------
    def propose(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
                rng: np.random.Generator) -> OMPConfig:  # pragma: no cover
        raise NotImplementedError

    def effective_budget(self, space: SearchSpace) -> int:
        """Evaluations this tuner will spend on ``space``."""
        return min(self.budget, len(space))

    # ------------------------------------------------------------------
    # batch-synchronous interface
    # ------------------------------------------------------------------
    def ask(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
            rng: np.random.Generator, k: int = 1) -> List[OMPConfig]:
        """Propose up to ``k`` distinct unevaluated configurations.

        The default implementation calls :meth:`propose` ``k`` times and
        falls back to a uniform unseen configuration whenever a proposal
        repeats one already evaluated or already in the batch (the same
        dedup rule the serial loop always applied).  Returns fewer than
        ``k`` configurations only when the space is exhausted.
        """
        seen = {config for config, _ in history}
        batch: List[OMPConfig] = []
        for _ in range(k):
            config = self.propose(space, history, rng)
            if config in seen or config in batch:
                remaining = [c for c in space
                             if c not in seen and c not in batch]
                if not remaining:
                    break
                config = remaining[rng.integers(len(remaining))]
            batch.append(config)
        return batch

    def tell(self, batch: List[Tuple[OMPConfig, float]],
             history: List[Tuple[OMPConfig, float]]) -> None:
        """Observe one evaluated batch (``history`` already includes it)."""

    def finalize(self, result: TuningResult) -> None:
        """Hook run once after a session (credit assignment etc.)."""

    # ------------------------------------------------------------------
    # checkpointable internal state (beyond history / RNG, which the
    # campaign itself owns)
    # ------------------------------------------------------------------
    def get_config(self) -> Dict[str, Any]:
        """JSON-serialisable constructor arguments."""
        return {"budget": self.budget, "seed": self.seed}

    def get_state(self) -> Dict[str, Any]:
        """JSON-serialisable mutable search state (default: stateless)."""
        return {}

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`get_state`."""

    # ------------------------------------------------------------------
    def tune(self, objective: Objective, space: SearchSpace) -> TuningResult:
        """Generic propose/evaluate loop honouring the evaluation budget."""
        rng = np.random.default_rng(self.seed)
        history: List[Tuple[OMPConfig, float]] = []
        budget = self.effective_budget(space)
        while len(history) < budget:
            batch = self.ask(space, history, rng, k=1)
            if not batch:
                break
            evaluated = [(config, float(objective(config))) for config in batch]
            history.extend(evaluated)
            self.tell(evaluated, history)
        best_config, best_time = min(history, key=lambda item: item[1])
        result = TuningResult(best_config=best_config, best_time=best_time,
                              evaluations=len(history), history=history)
        self.finalize(result)
        return result
