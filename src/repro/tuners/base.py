"""Black-box tuner interface shared by the search / Bayesian baselines."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.frontend.analysis import WorkloadSummary
from repro.frontend.openmp import OMPConfig
from repro.simulator.openmp import OpenMPSimulator
from repro.tuners.space import SearchSpace

Objective = Callable[[OMPConfig], float]


@dataclasses.dataclass
class TuningResult:
    """Outcome of one black-box tuning session."""

    best_config: OMPConfig
    best_time: float
    evaluations: int
    history: List[Tuple[OMPConfig, float]]

    def speedup_over(self, reference_time: float) -> float:
        return reference_time / self.best_time


def make_objective(simulator: OpenMPSimulator, summary: WorkloadSummary,
                   counter: Optional[Dict[str, int]] = None) -> Objective:
    """Wrap the simulator into a black-box ``config -> seconds`` objective.

    ``counter`` (optional dict with an ``"evals"`` key) tracks how many real
    executions the tuner consumed — the cost the paper compares in §4.1.4.
    """
    def objective(config: OMPConfig) -> float:
        if counter is not None:
            counter["evals"] = counter.get("evals", 0) + 1
        return simulator.run(summary, config).time_seconds

    return objective


class BlackBoxTuner:
    """Base class: explore a :class:`SearchSpace` within an evaluation budget."""

    name = "blackbox"

    def __init__(self, budget: int = 10, seed: int = 0):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = int(budget)
        self.seed = seed

    # ------------------------------------------------------------------
    def propose(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
                rng: np.random.Generator) -> OMPConfig:  # pragma: no cover
        raise NotImplementedError

    def tune(self, objective: Objective, space: SearchSpace) -> TuningResult:
        """Generic propose/evaluate loop honouring the evaluation budget."""
        rng = np.random.default_rng(self.seed)
        history: List[Tuple[OMPConfig, float]] = []
        seen = set()
        budget = min(self.budget, len(space))
        while len(history) < budget:
            config = self.propose(space, history, rng)
            if config in seen:
                # fall back to a random unseen configuration
                remaining = [c for c in space if c not in seen]
                if not remaining:
                    break
                config = remaining[rng.integers(len(remaining))]
            seen.add(config)
            history.append((config, float(objective(config))))
        best_config, best_time = min(history, key=lambda item: item[1])
        return TuningResult(best_config=best_config, best_time=best_time,
                            evaluations=len(history), history=history)
