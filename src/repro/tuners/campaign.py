"""Parallel tuning campaigns: multiprocess search with checkpoint/resume.

A *campaign* drives one black-box tuner over one search space with the
batch-synchronous ask/evaluate/tell split of :class:`~repro.tuners.base.
BlackBoxTuner`: the tuner proposes ``batch_size`` configurations, a
:class:`multiprocessing.Pool` evaluates them concurrently, and the results
are observed in proposal order.  Three properties make this safe to
parallelise and to interrupt:

* **Picklable objectives** — instead of closures, workers receive a
  :class:`SimObjectiveSpec` (kernel uid + micro-architecture + simulator
  parameters) and rebuild the simulator once per process.
* **Order-independent evaluations** — each configuration's measurement RNG
  is seeded from ``(spec.seed, configuration index)``, so a result does not
  depend on which worker produced it or in which order: ``workers=1`` and
  ``workers=N`` campaigns produce byte-identical histories.
* **Checkpointing** — after every ``checkpoint_every`` batches the campaign
  persists history, tuner state and the proposal RNG state as a
  :mod:`repro.serve` artifact (sha256-integrity checked, staged + renamed so
  an interrupted write never corrupts the previous checkpoint), and
  :meth:`TuningCampaign.resume` continues exactly where the campaign
  stopped.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import shutil
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.frontend.analysis import analyze_spec
from repro.frontend.openmp import OMPConfig
from repro.tuners.base import BlackBoxTuner, TuningResult
from repro.tuners.bayesian import BLISSTuner, YtoptTuner
from repro.tuners.exhaustive import ExhaustiveTuner
from repro.tuners.opentuner_like import OpenTunerLike
from repro.tuners.random_search import RandomSearchTuner
from repro.tuners.space import SearchSpace

#: Strategies a campaign (or a checkpoint) can name.
TUNER_CLASSES: Dict[str, type] = {
    cls.name: cls for cls in (RandomSearchTuner, ExhaustiveTuner,
                              OpenTunerLike, YtoptTuner, BLISSTuner)
}

#: Default proposal batch size.  A fixed constant (not ``workers``) so the
#: proposal schedule — and therefore the history — is identical no matter
#: how many workers evaluate it.
DEFAULT_BATCH_SIZE = 8


def make_tuner(name: str, config: Optional[Dict[str, Any]] = None,
               **overrides) -> BlackBoxTuner:
    """Instantiate a registered tuner strategy from its JSON config."""
    try:
        cls = TUNER_CLASSES[name]
    except KeyError as exc:
        raise KeyError(f"unknown tuner strategy {name!r}; "
                       f"known: {sorted(TUNER_CLASSES)}") from exc
    kwargs = dict(config or {})
    kwargs.update(overrides)
    return cls(**kwargs)


# ----------------------------------------------------------------------
# picklable objective
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SimObjectiveSpec:
    """Picklable description of a simulator-backed tuning objective.

    ``repeats`` measurements are taken per configuration (their median is
    the objective value), mirroring how real campaigns re-run a kernel to
    tame measurement noise.  ``walltime_scale`` optionally makes each
    evaluation *occupy* wall-clock time proportional to the simulated
    execution (capped at ``walltime_cap`` seconds): this models the real
    cost structure of autotuning — the search process waits on kernel
    executions — and is what a worker pool overlaps.
    """

    kernel_uid: str
    arch: Any                          # MicroArch (picklable dataclass)
    scale: float = 1.0
    noise: float = 0.015
    seed: int = 1234
    repeats: int = 1
    walltime_scale: float = 0.0
    walltime_cap: float = 0.05

    def build(self) -> "SimObjective":
        return SimObjective(self)

    def to_config(self) -> Dict[str, Any]:
        from repro.simulator.microarch import microarch_to_config
        data = dataclasses.asdict(self)
        data["arch"] = microarch_to_config(self.arch)
        return data

    @classmethod
    def from_config(cls, data: Dict[str, Any]) -> "SimObjectiveSpec":
        from repro.simulator.microarch import microarch_from_config
        data = dict(data)
        data["arch"] = microarch_from_config(data["arch"])
        return cls(**data)


class SimObjective:
    """A built objective: summary + simulator, evaluated per configuration.

    ``key`` is the configuration's index in the campaign's search space; it
    seeds the per-evaluation RNG so results are a pure function of
    (spec, configuration) — independent of evaluation order and worker.
    """

    def __init__(self, spec: SimObjectiveSpec):
        from repro.kernels import registry
        from repro.simulator.openmp import OpenMPSimulator

        self.spec = spec
        kernel = registry.get_kernel(spec.kernel_uid)
        self.summary = analyze_spec(kernel, spec.scale)
        self.simulator = OpenMPSimulator(spec.arch, noise=spec.noise,
                                         seed=spec.seed)

    def __call__(self, config: OMPConfig, key: int) -> float:
        rng = np.random.default_rng([int(self.spec.seed) & 0x7FFFFFFF, key])
        times = [self.simulator.run(self.summary, config, rng=rng).time_seconds
                 for _ in range(max(1, self.spec.repeats))]
        value = float(np.median(times))
        if self.spec.walltime_scale > 0.0:
            time.sleep(min(value * self.spec.walltime_scale * len(times),
                           self.spec.walltime_cap))
        return value


@dataclasses.dataclass(frozen=True, eq=False)
class LookupObjectiveSpec:
    """Picklable objective over a pre-measured ``[refs, configs]`` time grid.

    The experiment pipeline's search stages tune against execution times the
    dataset build already measured: the objective value of configuration
    ``key`` is the geometric mean of its column over the reference inputs.
    Lookup grids live in memory only, so campaigns over them cannot be
    checkpointed (there is nothing durable to point a resume at).
    """

    times: np.ndarray
    floor: float = 1e-15

    def build(self) -> "_LookupObjective":
        return _LookupObjective(self.times, self.floor)

    def to_config(self):
        raise NotImplementedError(
            "lookup objectives are in-memory only; campaigns over them "
            "cannot be checkpointed — use SimObjectiveSpec for that")


class _LookupObjective:
    def __init__(self, times: np.ndarray, floor: float):
        self.times = times
        self.floor = floor

    def __call__(self, config: OMPConfig, key: int) -> float:
        column = self.times[:, key]
        return float(np.exp(np.mean(np.log(np.maximum(column, self.floor)))))


# ----------------------------------------------------------------------
# one-shot campaign sessions (the pipeline's tuning fan-out unit)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, eq=False)
class SearchSession:
    """A picklable description of one self-contained tuning session.

    ``batch_size=1`` makes the campaign walk the space exactly like the
    serial :meth:`BlackBoxTuner.tune` loop, so session results are
    byte-identical to the legacy per-experiment tuning code — no matter
    which worker process runs the session or in which order.
    """

    tuner_name: str
    tuner_config: Dict[str, Any]
    space: List[dict]                        # SearchSpace.to_config()
    objective: Any                           # LookupObjectiveSpec | SimObjectiveSpec


@dataclasses.dataclass(frozen=True, eq=False)
class SessionOutcome:
    """What a session produced, in proposal order."""

    best_index: int
    best_time: float
    evaluations: int
    indices: np.ndarray
    times: np.ndarray


def run_search_session(session: SearchSession) -> SessionOutcome:
    """Run one session to completion through a :class:`TuningCampaign`."""
    tuner = make_tuner(session.tuner_name, dict(session.tuner_config))
    space = SearchSpace.from_config(session.space)
    campaign = TuningCampaign(tuner, space, session.objective,
                              workers=1, batch_size=1)
    result = campaign.run()
    return SessionOutcome(
        best_index=space.index_of(result.best_config),
        best_time=result.best_time,
        evaluations=result.evaluations,
        indices=np.array([space.index_of(c) for c, _ in result.history],
                         dtype=np.int64),
        times=np.array([t for _, t in result.history], dtype=np.float64),
    )


def run_search_sessions(sessions: List[SearchSession], workers: int = 1,
                        daemon: Optional[str] = None) -> List[SessionOutcome]:
    """Fan independent sessions out over a process pool — or a daemon.

    Sessions are pure functions of their description, so the outcome list —
    aligned with ``sessions`` — is identical for every ``workers`` value
    *and* for local-vs-daemon execution.  With ``daemon`` (a
    :class:`~repro.serve.daemon.ServeDaemon` socket path) the sessions are
    submitted concurrently to the running daemon, whose dispatcher batches
    them onto its own worker pool; ``workers`` then only sizes the
    submission concurrency.
    """
    if daemon is not None:
        return _run_sessions_on_daemon(sessions, daemon, workers)
    if workers <= 1 or len(sessions) <= 1:
        return [run_search_session(s) for s in sessions]
    with multiprocessing.Pool(min(int(workers), len(sessions))) as pool:
        return pool.map(run_search_session, sessions)


def _run_sessions_on_daemon(sessions: List[SearchSession], daemon: str,
                            workers: int) -> List[SessionOutcome]:
    """Submit sessions over parallel connections so the daemon can batch.

    The daemon sheds work beyond its bounded queue with a structured
    ``overloaded`` error; that is backpressure, not failure, so shed
    sessions are retried with exponential backoff until they are admitted.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve.client import DaemonClient, DaemonError

    if not sessions:
        return []
    lanes = max(1, min(len(sessions), int(workers) if workers > 1 else 8))
    clients = [DaemonClient(daemon) for _ in range(lanes)]

    def run_one(item):
        index, session = item
        backoff = 0.05
        while True:
            try:
                return clients[index % lanes].run_session(session)
            except DaemonError as exc:
                if not exc.overloaded:
                    raise
                time.sleep(backoff)
                backoff = min(2.0, backoff * 2)

    try:
        with ThreadPoolExecutor(max_workers=lanes) as pool:
            return list(pool.map(run_one, enumerate(sessions)))
    finally:
        for client in clients:
            client.close()


# ----------------------------------------------------------------------
# worker-pool plumbing (module level so it pickles under spawn too)
# ----------------------------------------------------------------------
_WORKER_OBJECTIVE: Optional[SimObjective] = None


def _init_worker(spec: SimObjectiveSpec) -> None:
    global _WORKER_OBJECTIVE
    _WORKER_OBJECTIVE = spec.build()


def _evaluate_in_worker(args: Tuple[OMPConfig, int]) -> float:
    config, key = args
    assert _WORKER_OBJECTIVE is not None, "worker pool not initialised"
    return _WORKER_OBJECTIVE(config, key)


# ----------------------------------------------------------------------
# checkpoint payload
# ----------------------------------------------------------------------
def _campaign_payload(campaign: "TuningCampaign"):
    config = {
        "objective": campaign.objective_spec.to_config(),
        "space": campaign.space.to_config(),
        "tuner_name": campaign.tuner.name,
        "tuner_config": campaign.tuner.get_config(),
        "tuner_state": campaign.tuner.get_state(),
        "rng_state": campaign._rng.bit_generator.state,
        "batch_size": campaign.batch_size,
        "batches": campaign.batches,
    }
    indices = np.array([campaign.space.index_of(c)
                        for c, _ in campaign.history], dtype=np.int64)
    times = np.array([t for _, t in campaign.history], dtype=np.float64)
    arrays = {"history.indices": indices, "history.times": times}
    return config, arrays


def restore_campaign(config: Dict[str, Any], arrays: Dict[str, np.ndarray],
                     **overrides) -> "TuningCampaign":
    """Rebuild a campaign from a checkpoint payload (see ``load_artifact``).

    ``overrides`` are forwarded to the :class:`TuningCampaign` constructor —
    ``workers`` in particular may differ from the interrupted run without
    affecting the history (evaluations are order-independent).
    """
    spec = SimObjectiveSpec.from_config(config["objective"])
    space = SearchSpace.from_config(config["space"])
    tuner = make_tuner(config["tuner_name"], config["tuner_config"])
    tuner.set_state(config["tuner_state"])
    kwargs = {"batch_size": int(config["batch_size"])}
    kwargs.update(overrides)
    campaign = TuningCampaign(tuner, space, spec, **kwargs)
    campaign._rng.bit_generator.state = config["rng_state"]
    indices = arrays["history.indices"]
    times = arrays["history.times"]
    campaign.history = [(space[int(i)], float(t))
                        for i, t in zip(indices, times)]
    campaign.batches = int(config.get("batches", 0))
    # the loaded artifact IS the latest checkpoint: don't rewrite identical
    # state when a resumed campaign turns out to be already finished
    campaign._checkpointed_batches = campaign.batches
    return campaign


# ----------------------------------------------------------------------
# the orchestrator
# ----------------------------------------------------------------------
class TuningCampaign:
    """Batch-synchronous, optionally multiprocess tuning session."""

    def __init__(self, tuner: BlackBoxTuner, space: SearchSpace,
                 objective_spec: SimObjectiveSpec, workers: int = 1,
                 batch_size: Optional[int] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_every: int = 1,
                 mp_start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.tuner = tuner
        self.space = space
        self.objective_spec = objective_spec
        self.workers = int(workers)
        self.batch_size = (DEFAULT_BATCH_SIZE if batch_size is None
                           else int(batch_size))
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.checkpoint_path = (os.fspath(checkpoint_path)
                                if checkpoint_path is not None else None)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.mp_start_method = mp_start_method
        self.history: List[Tuple[OMPConfig, float]] = []
        self.batches = 0
        self.wall_seconds = 0.0
        self._rng = np.random.default_rng(tuner.seed)
        self._inline_objective: Optional[SimObjective] = None
        self._checkpointed_batches = -1   # batches count at the last write

    # ------------------------------------------------------------------
    @staticmethod
    def _previous_path(path: str) -> str:
        """Where :meth:`checkpoint` parks the old state during the swap."""
        parent, base = os.path.split(os.path.abspath(path))
        return os.path.join(parent, f".previous-{base}")

    @staticmethod
    def _staging_path(path: str) -> str:
        """Where :meth:`checkpoint` assembles the new state before the swap."""
        parent, base = os.path.split(os.path.abspath(path))
        return os.path.join(parent, f".staging-{base}")

    @classmethod
    def resume(cls, path, **overrides) -> "TuningCampaign":
        """Load a checkpoint written by a previous (interrupted) campaign.

        Falls back to the rename-aside copy if the campaign was killed in
        the middle of the checkpoint swap itself.  A successful load makes
        the swap leftovers redundant, so resume also cleans them up: the
        fallback copy is promoted back to the final path (replacing the
        half-swapped state, if any) and stale ``.previous-*`` /
        ``.staging-*`` directories are removed.
        """
        from repro.serve.artifacts import ArtifactError, load_artifact
        path_str = os.path.abspath(os.fspath(path))
        fallback = cls._previous_path(path_str)
        loaded_fallback = False
        try:
            campaign = load_artifact(path)
        except (ArtifactError, OSError):
            if not os.path.isdir(fallback):
                raise
            campaign = load_artifact(fallback)
            loaded_fallback = True
        if not isinstance(campaign, TuningCampaign):
            raise TypeError(f"{os.fspath(path)!r} is not a campaign "
                            f"checkpoint")
        if loaded_fallback:
            # whatever sits at the final path failed to load: replace it
            # with the copy that did
            if os.path.exists(path_str):
                shutil.rmtree(path_str, ignore_errors=True)
            if not os.path.exists(path_str):
                os.rename(fallback, path_str)
        elif os.path.isdir(fallback):
            shutil.rmtree(fallback, ignore_errors=True)
        staging = cls._staging_path(path_str)
        if os.path.isdir(staging):
            shutil.rmtree(staging, ignore_errors=True)
        for key, value in overrides.items():
            if key == "workers":
                if int(value) < 1:
                    raise ValueError("workers must be >= 1")
                campaign.workers = int(value)
            elif key == "checkpoint_path":
                campaign.checkpoint_path = (os.fspath(value)
                                            if value is not None else None)
            elif key == "checkpoint_every":
                campaign.checkpoint_every = max(1, int(value))
            elif key == "mp_start_method":
                campaign.mp_start_method = value
            else:
                raise TypeError(f"cannot override {key!r} on resume")
        if campaign.checkpoint_path is None:
            campaign.checkpoint_path = os.fspath(path)
        if (os.path.abspath(campaign.checkpoint_path)
                != os.path.abspath(os.fspath(path))):
            # resuming into a different checkpoint location: the loaded
            # state has not been written there yet
            campaign._checkpointed_batches = -1
        return campaign

    # ------------------------------------------------------------------
    def checkpoint(self) -> Optional[str]:
        """Write the current campaign state (replace-on-success).

        The new state is staged next to the final path; the previous
        checkpoint is renamed aside (not deleted) before the staging dir
        takes its place, so at every instant either the final path or the
        ``.previous-*`` copy holds a complete, loadable checkpoint —
        :meth:`resume` knows to fall back to it.
        """
        if self.checkpoint_path is None:
            return None
        from repro.serve.artifacts import KIND_CAMPAIGN, write_artifact_dir
        final = os.path.abspath(self.checkpoint_path)
        parent = os.path.dirname(final)
        os.makedirs(parent, exist_ok=True)
        staging = self._staging_path(final)
        previous = self._previous_path(final)
        if os.path.exists(staging):
            shutil.rmtree(staging)
        config, arrays = _campaign_payload(self)
        try:
            write_artifact_dir(staging, KIND_CAMPAIGN, config, arrays)
            if os.path.exists(final):
                if os.path.exists(previous):
                    shutil.rmtree(previous)
                os.rename(final, previous)
            os.rename(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        shutil.rmtree(previous, ignore_errors=True)
        self._checkpointed_batches = self.batches
        return final

    # ------------------------------------------------------------------
    def _evaluate_batch(self, batch: List[OMPConfig], pool) -> List[float]:
        payload = [(config, self.space.index_of(config)) for config in batch]
        if pool is None:
            if self._inline_objective is None:
                self._inline_objective = self.objective_spec.build()
            objective = self._inline_objective
            return [objective(config, key) for config, key in payload]
        return list(pool.map(_evaluate_in_worker, payload))

    def run(self, max_evals: Optional[int] = None) -> TuningResult:
        """Drive the campaign to its budget (or ``max_evals`` more evals).

        Returns the :class:`TuningResult` over everything evaluated so far.
        With ``max_evals`` the campaign stops early after that many
        additional evaluations *rounded up to whole batches*, so the batch
        schedule (and hence every proposal) matches the uninterrupted run —
        the checkpoint then lets :meth:`resume` finish the rest exactly.
        """
        budget = self.tuner.effective_budget(self.space)
        batches_limit = None
        if max_evals is not None:
            batches_limit = self.batches + max(
                1, -(-int(max_evals) // self.batch_size))  # ceil division
        started = time.perf_counter()
        pool = None
        exhausted = False
        try:
            if self.workers > 1 and len(self.history) < budget:
                ctx = (multiprocessing.get_context(self.mp_start_method)
                       if self.mp_start_method else multiprocessing)
                pool = ctx.Pool(self.workers, initializer=_init_worker,
                                initargs=(self.objective_spec,))
            while len(self.history) < budget and (
                    batches_limit is None or self.batches < batches_limit):
                k = min(self.batch_size, budget - len(self.history))
                batch = self.tuner.ask(self.space, self.history, self._rng, k)
                if not batch:
                    exhausted = True
                    break
                times = self._evaluate_batch(batch, pool)
                evaluated = list(zip(batch, [float(t) for t in times]))
                self.history.extend(evaluated)
                self.tuner.tell(evaluated, self.history)
                self.batches += 1
                if self.batches % self.checkpoint_every == 0:
                    self.checkpoint()
        finally:
            if pool is not None:
                pool.close()
                pool.join()
        self.wall_seconds += time.perf_counter() - started
        if self.batches != self._checkpointed_batches:
            self.checkpoint()
        if not self.history:
            raise RuntimeError("campaign produced no evaluations")
        best_config, best_time = min(self.history, key=lambda item: item[1])
        result = TuningResult(best_config=best_config, best_time=best_time,
                              evaluations=len(self.history),
                              history=list(self.history))
        if exhausted or len(self.history) >= budget:
            self.tuner.finalize(result)
        return result

    @property
    def finished(self) -> bool:
        return len(self.history) >= self.tuner.effective_budget(self.space)
