"""Device-mapping baselines of Table 3.

* :class:`StaticMappingBaseline` — always pick the overall-best single device.
* :class:`GreweBaseline` — Grewe et al. (CGO 2013): a decision tree over
  hand-crafted static kernel features plus transfer/workgroup size.
* :class:`DeepTuneBaseline` — DeepTune (PACT 2017): an end-to-end neural
  model over the token stream; reproduced here as an opcode-sequence
  embedding (bag of learned token embeddings) followed by an MLP.
* :class:`Inst2VecBaseline` — inst2vec (NeurIPS 2018): pre-trained statement
  embeddings averaged over the kernel, followed by an MLP.

All baselines share the ``fit(dataset, indices)`` / ``predict(dataset,
indices)`` interface of :class:`repro.core.tuner.DeviceMapper` so the Table 3
experiment can evaluate them uniformly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets.devmap import DevMapDataset, DevMapSample
from repro.frontend.analysis import analyze_spec
from repro.kernels import registry
from repro.ml import DecisionTreeClassifier, GradientBoostingClassifier
from repro.nn import MLP, AdamW, MinMaxScaler, Tensor, cross_entropy, iterate_minibatches


def _grewe_features(sample: DevMapSample) -> np.ndarray:
    """Static features in the spirit of Grewe et al.: compute/memory ratios
    plus the runtime transfer and workgroup sizes."""
    spec = registry.get_kernel(sample.kernel_uid)
    summary = analyze_spec(spec, sample.scale)
    comp = summary.flops + summary.int_ops
    mem = summary.loads + summary.stores
    return np.array([
        np.log1p(comp),
        np.log1p(mem),
        comp / max(mem, 1.0),
        np.log1p(sample.transfer_bytes),
        (comp / max(mem, 1.0)) / max(np.log1p(sample.transfer_bytes), 1.0),
        np.log1p(sample.wgsize),
        summary.random_frac,
        summary.branches / max(summary.total_iterations, 1.0),
    ])


class StaticMappingBaseline:
    """Predict the majority (overall best) device for every kernel."""

    def __init__(self) -> None:
        self.label_ = 0

    def fit(self, dataset: DevMapDataset,
            indices: Optional[Sequence[int]] = None) -> "StaticMappingBaseline":
        samples = dataset.samples if indices is None else dataset.subset(indices)
        labels = np.array([s.label for s in samples])
        self.label_ = int(np.bincount(labels).argmax())
        return self

    def predict(self, dataset: DevMapDataset, indices: Sequence[int]) -> np.ndarray:
        return np.full(len(indices), self.label_, dtype=np.int64)


class GreweBaseline:
    """Decision tree over hand-crafted static features."""

    def __init__(self, max_depth: int = 5, seed: int = 0):
        self.tree = DecisionTreeClassifier(max_depth=max_depth, seed=seed)

    def fit(self, dataset: DevMapDataset,
            indices: Optional[Sequence[int]] = None) -> "GreweBaseline":
        samples = dataset.samples if indices is None else dataset.subset(indices)
        x = np.stack([_grewe_features(s) for s in samples])
        y = np.array([s.label for s in samples])
        self.tree.fit(x, y)
        return self

    def predict(self, dataset: DevMapDataset, indices: Sequence[int]) -> np.ndarray:
        samples = dataset.subset(indices)
        x = np.stack([_grewe_features(s) for s in samples])
        return self.tree.predict(x)


class _EmbeddingMLPBaseline:
    """Shared machinery of DeepTune / inst2vec: fixed per-kernel embedding
    (plus transfer/wgsize) fed into a small MLP."""

    def __init__(self, hidden: int = 32, epochs: int = 40, lr: float = 5e-3,
                 seed: int = 0):
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.scaler = MinMaxScaler()
        self.model: Optional[MLP] = None

    def _kernel_embedding(self, sample: DevMapSample) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _features(self, dataset: DevMapDataset,
                  samples: Sequence[DevMapSample]) -> np.ndarray:
        emb = np.stack([self._kernel_embedding(s) for s in samples])
        extra = dataset.extra_features(samples)
        return np.concatenate([emb, extra], axis=1)

    def fit(self, dataset: DevMapDataset,
            indices: Optional[Sequence[int]] = None):
        samples = dataset.samples if indices is None else dataset.subset(indices)
        x = self.scaler.fit_transform(self._features(dataset, samples))
        y = np.array([s.label for s in samples])
        rng = np.random.default_rng(self.seed)
        self.model = MLP(x.shape[1], [self.hidden], 2,
                         rng=np.random.default_rng(self.seed))
        optimizer = AdamW(self.model.parameters(), lr=self.lr)
        for _ in range(self.epochs):
            for idx in iterate_minibatches(len(y), 32, rng=rng):
                logits = self.model(Tensor(x[idx]))
                loss = cross_entropy(logits, y[idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        return self

    def predict(self, dataset: DevMapDataset, indices: Sequence[int]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("baseline is not fitted")
        samples = dataset.subset(indices)
        x = self.scaler.transform(self._features(dataset, samples))
        return self.model(Tensor(x)).data.argmax(axis=1)


class DeepTuneBaseline(_EmbeddingMLPBaseline):
    """Token-frequency embedding of the kernel body (DeepTune-style)."""

    def _kernel_embedding(self, sample: DevMapSample) -> np.ndarray:
        # node-token histogram of the ProGraML graph = opcode token frequencies
        feats = sample.graph.node_features
        return feats.mean(axis=0)


class Inst2VecBaseline(_EmbeddingMLPBaseline):
    """Mean of pre-trained statement (IR2Vec seed) embeddings."""

    def _kernel_embedding(self, sample: DevMapSample) -> np.ndarray:
        norm = np.linalg.norm(sample.vector) + 1e-9
        return sample.vector / norm


class XGBoostLikeBaseline:
    """Gradient-boosted trees over the IR2Vec program vector (the model the
    original IR2Vec paper pairs with its embeddings)."""

    def __init__(self, n_estimators: int = 60, max_depth: int = 3, seed: int = 0):
        self.model = GradientBoostingClassifier(n_estimators=n_estimators,
                                                max_depth=max_depth, seed=seed)

    def _features(self, dataset: DevMapDataset,
                  samples: Sequence[DevMapSample]) -> np.ndarray:
        vec = np.stack([s.vector for s in samples])
        extra = dataset.extra_features(samples)
        return np.concatenate([vec, extra], axis=1)

    def fit(self, dataset: DevMapDataset,
            indices: Optional[Sequence[int]] = None) -> "XGBoostLikeBaseline":
        samples = dataset.samples if indices is None else dataset.subset(indices)
        self.model.fit(self._features(dataset, samples),
                       np.array([s.label for s in samples]))
        return self

    def predict(self, dataset: DevMapDataset, indices: Sequence[int]) -> np.ndarray:
        samples = dataset.subset(indices)
        return self.model.predict(self._features(dataset, samples))
