"""OpenMP configuration search spaces (Table 2)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.frontend.openmp import OMPConfig, OMPSchedule
from repro.simulator.microarch import MicroArch

#: Table 2 of the paper.
TABLE2_THREADS = (1, 2, 4, 8, 12, 16, 20)
TABLE2_SCHEDULES = (OMPSchedule.STATIC, OMPSchedule.DYNAMIC, OMPSchedule.GUIDED)
TABLE2_CHUNKS = (1, 8, 32, 64, 128, 256, 512)


class SearchSpace:
    """A discrete set of OpenMP configurations with a vector encoding.

    The vector encoding (normalised threads / one-hot schedule / log chunk)
    is what the surrogate models of the Bayesian tuners operate on.
    """

    def __init__(self, configs: Sequence[OMPConfig]):
        if not configs:
            raise ValueError("empty search space")
        self.configs: List[OMPConfig] = list(configs)
        # first occurrence wins, so index_of is stable under duplicates
        self._index = {}
        for i, c in enumerate(self.configs):
            self._index.setdefault(c, i)
        self._max_threads = max(c.num_threads for c in self.configs)
        self._max_chunk = max((c.chunk_size or 0) for c in self.configs) or 1

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)

    def __getitem__(self, i: int) -> OMPConfig:
        return self.configs[i]

    def index_of(self, config: OMPConfig) -> int:
        return self._index[config]

    def to_vector(self, config: OMPConfig) -> np.ndarray:
        """Numeric encoding used by GP / random-forest surrogates."""
        schedule_onehot = [1.0 if config.schedule == s else 0.0
                           for s in OMPSchedule]
        chunk = float(config.chunk_size or 0)
        return np.array([
            config.num_threads / self._max_threads,
            *schedule_onehot,
            np.log1p(chunk) / np.log1p(self._max_chunk),
        ])

    def design_matrix(self) -> np.ndarray:
        return np.stack([self.to_vector(c) for c in self.configs])

    # ------------------------------------------------------------------
    def to_config(self) -> List[dict]:
        """JSON-serialisable form preserving configuration order."""
        return [c.to_dict() for c in self.configs]

    @classmethod
    def from_config(cls, data: Sequence[dict]) -> "SearchSpace":
        return cls([OMPConfig.from_dict(d) for d in data])


def thread_search_space(arch: MicroArch,
                        threads: Optional[Sequence[int]] = None) -> SearchSpace:
    """§4.1.3 space: number of threads only (1..max hardware threads)."""
    if threads is None:
        threads = range(1, arch.max_threads + 1)
    return SearchSpace([OMPConfig(num_threads=t) for t in threads])


def full_search_space(threads: Sequence[int] = TABLE2_THREADS,
                      schedules: Sequence[OMPSchedule] = TABLE2_SCHEDULES,
                      chunks: Sequence[int] = TABLE2_CHUNKS,
                      max_threads: Optional[int] = None) -> SearchSpace:
    """§4.1.4 space (Table 2): threads × schedule × chunk size."""
    configs = []
    for t in threads:
        if max_threads is not None and t > max_threads:
            continue
        for s in schedules:
            for c in chunks:
                configs.append(OMPConfig(num_threads=t, schedule=s, chunk_size=c))
    return SearchSpace(configs)
