"""OpenTuner-style search: an AUC-bandit ensemble of search techniques.

OpenTuner (Ansel et al., PACT 2014) runs several search techniques (random,
hill climbers, evolutionary mutation, ...) and allocates trials to them with
an area-under-curve multi-armed bandit.  This module reproduces that design
over the discrete OpenMP configuration space.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.frontend.openmp import OMPConfig
from repro.tuners.base import BlackBoxTuner, TuningResult
from repro.tuners.space import SearchSpace


def _mutate(config: OMPConfig, space: SearchSpace,
            rng: np.random.Generator) -> OMPConfig:
    """Move to a neighbouring configuration (change one parameter)."""
    threads = sorted({c.num_threads for c in space})
    chunks = sorted({c.chunk_size for c in space}, key=lambda c: (c is None, c))
    # sorted, not set order: proposals must not depend on per-process hash
    # randomisation or checkpoint/resume across processes diverges
    schedules = sorted({c.schedule for c in space}, key=lambda s: s.value)
    choice = rng.integers(3)
    new_threads, new_schedule, new_chunk = (config.num_threads, config.schedule,
                                            config.chunk_size)
    if choice == 0 and len(threads) > 1:
        i = threads.index(config.num_threads)
        j = int(np.clip(i + rng.choice([-1, 1]), 0, len(threads) - 1))
        new_threads = threads[j]
    elif choice == 1 and len(schedules) > 1:
        new_schedule = schedules[rng.integers(len(schedules))]
    elif len(chunks) > 1:
        new_chunk = chunks[rng.integers(len(chunks))]
    candidate = OMPConfig(new_threads, new_schedule, new_chunk)
    return candidate if candidate in set(space.configs) else config


class _Technique:
    """One search technique proposing configurations."""

    def __init__(self, name: str):
        self.name = name
        self.uses = 0
        self.credit = 0.0

    def propose(self, space: SearchSpace, history, best, rng) -> OMPConfig:
        raise NotImplementedError


class _RandomTechnique(_Technique):
    def __init__(self):
        super().__init__("uniform-random")

    def propose(self, space, history, best, rng):
        return space[rng.integers(len(space))]


class _HillClimb(_Technique):
    def __init__(self):
        super().__init__("hill-climb")

    def propose(self, space, history, best, rng):
        if best is None:
            return space[rng.integers(len(space))]
        return _mutate(best, space, rng)


class _Evolution(_Technique):
    """Mutation of a random elite member (simple evolutionary search)."""

    def __init__(self, elite: int = 4):
        super().__init__("evolution")
        self.elite = elite

    def propose(self, space, history, best, rng):
        if not history:
            return space[rng.integers(len(space))]
        ranked = sorted(history, key=lambda item: item[1])[:self.elite]
        parent = ranked[rng.integers(len(ranked))][0]
        return _mutate(parent, space, rng)


class OpenTunerLike(BlackBoxTuner):
    """AUC-bandit meta-tuner over random / hill-climb / evolutionary search."""

    name = "opentuner"

    def __init__(self, budget: int = 10, seed: int = 0,
                 exploration: float = 0.3):
        super().__init__(budget=budget, seed=seed)
        self.exploration = float(exploration)
        self.techniques: List[_Technique] = [
            _RandomTechnique(), _HillClimb(), _Evolution(),
        ]
        self.technique_log: List[str] = []

    # ------------------------------------------------------------------
    def _select_technique(self, rng: np.random.Generator) -> _Technique:
        total_uses = sum(t.uses for t in self.techniques) + 1
        scores = []
        for t in self.techniques:
            exploit = t.credit / (t.uses + 1e-9) if t.uses else 0.0
            explore = self.exploration * np.sqrt(2 * np.log(total_uses)
                                                 / (t.uses + 1e-9)) if t.uses else 1e9
            scores.append(exploit + explore)
        return self.techniques[int(np.argmax(scores))]

    def propose(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
                rng: np.random.Generator) -> OMPConfig:
        best = min(history, key=lambda item: item[1])[0] if history else None
        technique = self._select_technique(rng)
        technique.uses += 1
        self.technique_log.append(technique.name)
        return technique.propose(space, history, best, rng)

    def finalize(self, result: TuningResult) -> None:
        # final AUC-style credit: techniques used early in improvements earn more
        improvements: Dict[str, float] = {}
        best = np.inf
        for name, (_, time) in zip(self.technique_log, result.history):
            if time < best:
                improvements[name] = improvements.get(name, 0.0) + (best - time
                                                                    if np.isfinite(best) else 1.0)
                best = time
        for t in self.techniques:
            t.credit += improvements.get(t.name, 0.0)

    # ------------------------------------------------------------------
    def get_config(self) -> Dict[str, Any]:
        return {**super().get_config(), "exploration": self.exploration}

    def get_state(self) -> Dict[str, Any]:
        """Bandit state: per-technique uses/credit plus the selection log."""
        return {
            "technique_log": list(self.technique_log),
            "techniques": {t.name: {"uses": t.uses, "credit": t.credit}
                           for t in self.techniques},
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        self.technique_log = list(state.get("technique_log", []))
        stats = state.get("techniques", {})
        for t in self.techniques:
            entry = stats.get(t.name)
            if entry is not None:
                t.uses = int(entry["uses"])
                t.credit = float(entry["credit"])
