"""Bayesian-optimisation tuners: ytopt-like (GP + EI) and BLISS-like.

* :class:`YtoptTuner` — a Gaussian-process surrogate with an expected-
  improvement acquisition over the discrete configuration space, mirroring
  ytopt's surrogate-model loop.
* :class:`BLISSTuner` — BLISS (Roy et al., PLDI 2021) maintains a *pool of
  diverse lightweight models* (here: GPs with different length scales and a
  random-forest regressor) and picks the pool member that best explains the
  observations so far to propose the next configuration.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.frontend.openmp import OMPConfig
from repro.ml import RandomForestRegressor
from repro.tuners.base import BlackBoxTuner, sample_without_replacement
from repro.tuners.space import SearchSpace


class GaussianProcess:
    """Minimal GP regressor with an RBF kernel (for the BO surrogates)."""

    def __init__(self, length_scale: float = 0.5, signal_var: float = 1.0,
                 noise: float = 1e-4):
        self.length_scale = float(length_scale)
        self.signal_var = float(signal_var)
        self.noise = float(noise)
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(-1)
        return self.signal_var * np.exp(-0.5 * d2 / self.length_scale ** 2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yn = (y - self._y_mean) / self._y_std
        k = self._kernel(x, x) + self.noise * np.eye(len(x))
        self._chol = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._chol, yn)
        self._x = x
        return self

    def predict(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self._x is None:
            raise RuntimeError("GP is not fitted")
        x = np.asarray(x, dtype=np.float64)
        k_star = self._kernel(x, self._x)
        mean = k_star @ self._alpha
        v = cho_solve(self._chol, k_star.T)
        var = np.maximum(self.signal_var - np.sum(k_star * v.T, axis=1), 1e-12)
        return mean * self._y_std + self._y_mean, np.sqrt(var) * self._y_std

    def log_likelihood(self, x: np.ndarray, y: np.ndarray) -> float:
        """Gaussian log-likelihood of held-in data under the fitted GP."""
        mean, std = self.predict(x)
        y = np.asarray(y, dtype=np.float64)
        return float(np.sum(-0.5 * ((y - mean) / std) ** 2
                            - np.log(std) - 0.5 * math.log(2 * math.pi)))


def expected_improvement(mean: np.ndarray, std: np.ndarray,
                         best: float) -> np.ndarray:
    """EI for minimisation."""
    from scipy.stats import norm

    improvement = best - mean
    z = improvement / np.maximum(std, 1e-12)
    return improvement * norm.cdf(z) + std * norm.pdf(z)


def _top_k(remaining: List[OMPConfig], scores: np.ndarray,
           k: int) -> List[OMPConfig]:
    """The ``k`` highest-scoring candidates, best first (deterministic)."""
    order = np.argsort(-scores, kind="stable")[:k]
    return [remaining[int(i)] for i in order]


class YtoptTuner(BlackBoxTuner):
    """GP + expected-improvement surrogate loop (ytopt-style)."""

    name = "ytopt"

    def __init__(self, budget: int = 10, seed: int = 0, init_points: int = 3,
                 length_scale: float = 0.5):
        super().__init__(budget=budget, seed=seed)
        self.init_points = int(init_points)
        self.length_scale = length_scale

    def get_config(self):
        return {**super().get_config(), "init_points": self.init_points,
                "length_scale": self.length_scale}

    def _acquisition(self, space: SearchSpace,
                     history: List[Tuple[OMPConfig, float]],
                     remaining: List[OMPConfig]) -> np.ndarray:
        x = np.stack([space.to_vector(c) for c, _ in history])
        y = np.log(np.array([t for _, t in history]))
        gp = GaussianProcess(length_scale=self.length_scale).fit(x, y)
        candidates = np.stack([space.to_vector(c) for c in remaining])
        mean, std = gp.predict(candidates)
        return expected_improvement(mean, std, best=float(y.min()))

    def propose(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
                rng: np.random.Generator) -> OMPConfig:
        seen = {config for config, _ in history}
        remaining = [c for c in space if c not in seen]
        if not remaining:
            return space[rng.integers(len(space))]
        if len(history) < self.init_points:
            return remaining[rng.integers(len(remaining))]
        ei = self._acquisition(space, history, remaining)
        return remaining[int(np.argmax(ei))]

    def ask(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
            rng: np.random.Generator, k: int = 1) -> List[OMPConfig]:
        """Batch proposals: random during warm-up, then the top-k EI."""
        seen = {config for config, _ in history}
        remaining = [c for c in space if c not in seen]
        if not remaining:
            return []
        if len(history) < self.init_points:
            return sample_without_replacement(remaining, rng, k)
        ei = self._acquisition(space, history, remaining)
        return _top_k(remaining, ei, k)


class BLISSTuner(BlackBoxTuner):
    """Pool-of-lightweight-models Bayesian tuner (BLISS-style)."""

    name = "bliss"

    def __init__(self, budget: int = 10, seed: int = 0, init_points: int = 3):
        super().__init__(budget=budget, seed=seed)
        self.init_points = int(init_points)

    def get_config(self):
        return {**super().get_config(), "init_points": self.init_points}

    def _pool(self) -> List[object]:
        return [
            GaussianProcess(length_scale=0.25),
            GaussianProcess(length_scale=0.5),
            GaussianProcess(length_scale=1.0),
            RandomForestRegressor(n_estimators=12, max_depth=4, seed=self.seed),
        ]

    def _acquisition(self, space: SearchSpace,
                     history: List[Tuple[OMPConfig, float]],
                     remaining: List[OMPConfig]) -> Optional[np.ndarray]:
        """EI from the pool member that best explains the last observation."""
        x = np.stack([space.to_vector(c) for c, _ in history])
        y = np.log(np.array([t for _, t in history]))
        candidates = np.stack([space.to_vector(c) for c in remaining])

        # leave-last-out scoring to pick the pool member that explains the data
        best_score, best_pred = -np.inf, None
        for model in self._pool():
            try:
                model.fit(x[:-1], y[:-1])
                if isinstance(model, GaussianProcess):
                    mean, std = model.predict(x[-1:])
                    score = -abs(float(mean[0]) - y[-1])
                    cmean, cstd = model.predict(candidates)
                else:
                    pred = model.predict(x[-1:])
                    score = -abs(float(pred[0]) - y[-1])
                    model.fit(x, y)
                    cmean = model.predict(candidates)
                    cstd = model.predict_std(candidates) + 1e-3
                if score > best_score:
                    best_score = score
                    ei = expected_improvement(cmean, cstd, best=float(y.min()))
                    best_pred = ei
            except Exception:           # singular kernels etc: skip that model
                continue
        return best_pred

    def propose(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
                rng: np.random.Generator) -> OMPConfig:
        seen = {config for config, _ in history}
        remaining = [c for c in space if c not in seen]
        if not remaining:
            return space[rng.integers(len(space))]
        if len(history) < self.init_points:
            return remaining[rng.integers(len(remaining))]
        best_pred = self._acquisition(space, history, remaining)
        if best_pred is None:
            return remaining[rng.integers(len(remaining))]
        return remaining[int(np.argmax(best_pred))]

    def ask(self, space: SearchSpace, history: List[Tuple[OMPConfig, float]],
            rng: np.random.Generator, k: int = 1) -> List[OMPConfig]:
        """Batch proposals: random during warm-up, then the pool's top-k EI."""
        seen = {config for config, _ in history}
        remaining = [c for c in space if c not in seen]
        if not remaining:
            return []
        if len(history) < self.init_points:
            return sample_without_replacement(remaining, rng, k)
        best_pred = self._acquisition(space, history, remaining)
        if best_pred is None:
            return sample_without_replacement(remaining, rng, k)
        return _top_k(remaining, best_pred, k)
