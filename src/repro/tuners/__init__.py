"""Baseline auto-tuners and device-mapping baselines.

Search-based and Bayesian-optimisation tuners treat the simulator as the
black-box objective the paper's ytopt / OpenTuner / BLISS treat real
executions as; the device-mapping baselines (Grewe et al., DeepTune,
inst2vec) reproduce the classical comparison points of Table 3.
"""

from repro.tuners.space import (
    SearchSpace,
    full_search_space,
    thread_search_space,
)
from repro.tuners.base import BlackBoxTuner, TuningResult, make_objective
from repro.tuners.exhaustive import ExhaustiveTuner
from repro.tuners.random_search import RandomSearchTuner
from repro.tuners.opentuner_like import OpenTunerLike
from repro.tuners.bayesian import BLISSTuner, GaussianProcess, YtoptTuner
from repro.tuners.campaign import (
    SimObjectiveSpec,
    TUNER_CLASSES,
    TuningCampaign,
    make_tuner,
)
from repro.tuners.fleet import (
    CampaignCoordinator,
    CampaignWorker,
    run_worker,
)
from repro.tuners.devmap_baselines import (
    DeepTuneBaseline,
    GreweBaseline,
    Inst2VecBaseline,
    StaticMappingBaseline,
)

__all__ = [
    "SearchSpace",
    "thread_search_space",
    "full_search_space",
    "TuningResult",
    "BlackBoxTuner",
    "make_objective",
    "ExhaustiveTuner",
    "RandomSearchTuner",
    "OpenTunerLike",
    "GaussianProcess",
    "YtoptTuner",
    "BLISSTuner",
    "StaticMappingBaseline",
    "GreweBaseline",
    "DeepTuneBaseline",
    "Inst2VecBaseline",
    "SimObjectiveSpec",
    "TUNER_CLASSES",
    "TuningCampaign",
    "make_tuner",
    "CampaignCoordinator",
    "CampaignWorker",
    "run_worker",
]
