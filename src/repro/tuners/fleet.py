"""Fault-tolerant elastic tuning fleets over the serve transport.

:class:`CampaignCoordinator` promotes a :class:`~repro.tuners.campaign.
TuningCampaign` from single-host multiprocessing to a coordinator/worker
design: the coordinator owns the tuner's ask/tell loop and *serves* the
current proposal batch as config leases over the existing JSON-line
protocol (``AF_UNIX`` or ``tcp://`` — see :mod:`repro.serve.protocol`);
:class:`CampaignWorker` processes connect from any host, lease a slice of
the batch, heartbeat while evaluating, and stream results back.

The design keeps the campaign invariant — **histories are byte-identical
to** ``workers=1`` — structurally rather than by luck:

* only one proposal batch is ever outstanding (ask/tell is
  history-dependent); parallelism comes from leasing *slices* of it, and
  results are told in proposal order once the batch completes;
* objective values are pure functions of ``(objective spec, config
  index)`` (per-config-seeded measurement RNGs, PR 3), so *who* evaluates
  a config — any worker, any attempt, or the coordinator itself — cannot
  change the value;
* the proposal RNG is only advanced by ``ask`` and checkpoints are only
  written at batch boundaries, so a killed coordinator resumes without
  double-telling.

Failure handling (qualified by ``tests/test_fleet_chaos.py`` under
:mod:`repro.serve.faults` plans):

* **lease expiry + reissue** — a worker that misses heartbeats for
  ``lease_timeout`` seconds loses its lease; its configs return to the
  pool with a bumped ``attempt`` counter;
* **idempotent submission** — results are keyed by ``(campaign_id,
  eval index, attempt)``; duplicate, stale (reissued elsewhere) and
  foreign (pre-restart) submissions are acknowledged but not recorded,
  so reissued work tells exactly once;
* **elastic join/leave** — workers need no registration: leasing is
  joining, and leaving (gracefully or by SIGKILL) just means expiry;
* **graceful degradation** — when no worker has been heard from for
  ``local_fallback_s`` seconds the coordinator evaluates pending configs
  inline, so a campaign with zero (or only dead) workers still finishes;
* **coordinator crash safety** — the sha256-checked rename-aside
  checkpoints of :class:`TuningCampaign` plus a fresh ``campaign_id`` per
  incarnation (stale submissions are ignored as foreign) make
  kill-then-:meth:`~CampaignCoordinator.resume` exact.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.frontend.openmp import OMPConfig
from repro.serve import faults
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    LineChannel,
    ProtocolError,
    connect_address,
    create_listener,
    error_response,
    objective_from_wire,
    objective_to_wire,
    ok_response,
    parse_address,
    validate_request,
)
from repro.tuners.base import TuningResult
from repro.tuners.campaign import TuningCampaign

_PENDING = "pending"
_LEASED = "leased"
_DONE = "done"

#: lease id of slots the coordinator claimed for inline evaluation
_LOCAL_LEASE = "local"


class _Slot:
    """One config of the in-flight batch, keyed by its history position."""

    __slots__ = ("eval_index", "key", "config", "attempt", "state", "value",
                 "lease_id")

    def __init__(self, eval_index: int, key: int, config: OMPConfig):
        self.eval_index = eval_index     # global history position
        self.key = key                   # index in the search space
        self.config = config
        self.attempt = 0                 # bumped on every reissue
        self.state = _PENDING
        self.value: Optional[float] = None
        self.lease_id: Optional[str] = None


class _Lease:
    __slots__ = ("lease_id", "worker", "deadline", "eval_indices")

    def __init__(self, lease_id: str, worker: str, deadline: float,
                 eval_indices: List[int]):
        self.lease_id = lease_id
        self.worker = worker
        self.deadline = deadline
        self.eval_indices = eval_indices


class CampaignCoordinator:
    """Serve a campaign's proposal batches as leases; own ask/tell.

    Use as a context manager (or call :meth:`start`/:meth:`shutdown`), then
    drive the campaign with :meth:`run` — workers may connect at any time
    before or during the run, or never.
    """

    def __init__(self, campaign: TuningCampaign, address: str,
                 lease_timeout: float = 2.0, max_lease_configs: int = 4,
                 local_fallback_s: Optional[float] = 1.0,
                 poll_ms: float = 25.0):
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        if max_lease_configs < 1:
            raise ValueError("max_lease_configs must be >= 1")
        self.campaign = campaign
        scheme, location = parse_address(address)
        self._scheme = scheme
        self._location = location
        self.address = address
        self.lease_timeout = float(lease_timeout)
        self.max_lease_configs = int(max_lease_configs)
        self.local_fallback_s = (None if local_fallback_s is None
                                 else float(local_fallback_s))
        self.poll_ms = float(poll_ms)
        #: one incarnation = one campaign id; submissions from before a
        #: coordinator restart carry the old id and are ignored as foreign
        self.campaign_id = f"c{os.urandom(6).hex()}"
        self._objective_wire = objective_to_wire(campaign.objective_spec)
        self._lock = threading.Lock()
        self._progress = threading.Condition(self._lock)
        self._slots: List[_Slot] = []
        self._slot_by_eval: Dict[int, _Slot] = {}
        self._leases: Dict[str, _Lease] = {}
        self._next_lease = 0
        self._workers_seen: Dict[str, float] = {}
        self._last_worker_contact = time.monotonic()
        self._running = False
        self._stopping = False
        self._done = False
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._inline_objective = None
        # counters (exposed by stats)
        self._leases_issued = 0
        self._leases_expired = 0
        self._reissues = 0
        self._accepted = 0
        self._duplicates = 0
        self._stale = 0
        self._foreign = 0
        self._heartbeats = 0
        self._local_evals = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, path, address: str, lease_timeout: float = 2.0,
               max_lease_configs: int = 4,
               local_fallback_s: Optional[float] = 1.0,
               poll_ms: float = 25.0, **campaign_overrides
               ) -> "CampaignCoordinator":
        """A coordinator over :meth:`TuningCampaign.resume` of ``path``."""
        campaign = TuningCampaign.resume(path, **campaign_overrides)
        return cls(campaign, address, lease_timeout=lease_timeout,
                   max_lease_configs=max_lease_configs,
                   local_fallback_s=local_fallback_s, poll_ms=poll_ms)

    def start(self) -> "CampaignCoordinator":
        if self._running:
            raise RuntimeError("coordinator already started")
        if self._scheme == "unix" and os.path.exists(self._location):
            try:
                probe = connect_address(self.address, timeout=0.25)
            except OSError:
                os.unlink(self._location)   # stale socket file
            else:
                probe.close()
                raise RuntimeError(f"{self.address} already has a live "
                                   f"server")
        self._listener, self.address = create_listener(self.address)
        self._running = True
        self._last_worker_contact = time.monotonic()
        accept = threading.Thread(target=self._accept_loop,
                                  name="fleet-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        return self

    def shutdown(self) -> None:
        with self._lock:
            if not self._running:
                return
            self._running = False
            self._stopping = True
            self._progress.notify_all()
            conns = list(self._conns)
        if self._listener is not None:
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._listener.close()
        if self._scheme == "unix":
            try:
                os.unlink(self._location)
            except OSError:
                pass
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def __enter__(self) -> "CampaignCoordinator":
        return self.start() if not self._running else self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # the ask/tell loop (exactly TuningCampaign.run's schedule)
    # ------------------------------------------------------------------
    def run(self, max_evals: Optional[int] = None) -> TuningResult:
        """Drive the campaign to its budget (or ``max_evals`` more evals).

        Proposal and tell order match :meth:`TuningCampaign.run` exactly;
        checkpoints land only at batch boundaries, so a resumed campaign
        continues the same schedule.
        """
        if not self._running:
            raise RuntimeError("coordinator is not started")
        campaign = self.campaign
        budget = campaign.tuner.effective_budget(campaign.space)
        batches_limit = None
        if max_evals is not None:
            batches_limit = campaign.batches + max(
                1, -(-int(max_evals) // campaign.batch_size))  # ceil division
        started = time.perf_counter()
        exhausted = False
        while len(campaign.history) < budget and (
                batches_limit is None or campaign.batches < batches_limit):
            with self._lock:
                if self._stopping:
                    break
            k = min(campaign.batch_size, budget - len(campaign.history))
            pre_ask_rng = campaign._rng.bit_generator.state
            batch = campaign.tuner.ask(campaign.space, campaign.history,
                                       campaign._rng, k)
            if not batch:
                exhausted = True
                break
            base = len(campaign.history)
            slots = [_Slot(base + i, campaign.space.index_of(config), config)
                     for i, config in enumerate(batch)]
            with self._lock:
                self._slots = slots
                self._slot_by_eval = {slot.eval_index: slot for slot in slots}
                self._progress.notify_all()
            if not self._await_batch():
                # stopped mid-batch: discard the in-flight proposals and
                # restore the pre-ask RNG so any final checkpoint sits on
                # the last batch boundary
                campaign._rng.bit_generator.state = pre_ask_rng
                with self._lock:
                    self._clear_batch_locked()
                break
            with self._lock:
                values = [float(slot.value) for slot in self._slots]
                self._clear_batch_locked()
            evaluated = list(zip(batch, values))
            campaign.history.extend(evaluated)
            campaign.tuner.tell(evaluated, campaign.history)
            campaign.batches += 1
            if campaign.batches % campaign.checkpoint_every == 0:
                campaign.checkpoint()
        campaign.wall_seconds += time.perf_counter() - started
        if campaign.batches != campaign._checkpointed_batches:
            campaign.checkpoint()
        if not campaign.history:
            raise RuntimeError("campaign produced no evaluations")
        best_config, best_time = min(campaign.history,
                                     key=lambda item: item[1])
        result = TuningResult(best_config=best_config, best_time=best_time,
                              evaluations=len(campaign.history),
                              history=list(campaign.history))
        if exhausted or len(campaign.history) >= budget:
            campaign.tuner.finalize(result)
            with self._lock:
                self._done = True
                self._progress.notify_all()
        return result

    def _clear_batch_locked(self) -> None:
        self._slots = []
        self._slot_by_eval = {}
        # leases over the settled batch are void; heartbeats on them answer
        # invalid so workers re-lease promptly
        self._leases.clear()

    def _await_batch(self) -> bool:
        """Block until every slot is DONE; False if stopped mid-batch."""
        while True:
            claim = None
            with self._lock:
                if self._stopping:
                    return False
                if all(slot.state == _DONE for slot in self._slots):
                    return True
                now = time.monotonic()
                self._expire_leases_locked(now)
                if self._local_due_locked(now):
                    for slot in self._slots:
                        if slot.state == _PENDING:
                            slot.state = _LEASED
                            slot.lease_id = _LOCAL_LEASE
                            claim = slot
                            break
                if claim is None:
                    self._progress.wait(timeout=self.poll_ms / 1e3)
                    continue
            # inline evaluation happens outside the lock; the value is the
            # same pure function of (spec, key) the workers compute
            value = self._local_objective()(claim.config, claim.key)
            with self._lock:
                if claim.state == _LEASED and claim.lease_id == _LOCAL_LEASE:
                    claim.value = float(value)
                    claim.state = _DONE
                    self._local_evals += 1
                    self._progress.notify_all()

    def _local_objective(self):
        if self._inline_objective is None:
            self._inline_objective = self.campaign.objective_spec.build()
        return self._inline_objective

    def _local_due_locked(self, now: float) -> bool:
        if self.local_fallback_s is None:
            return False
        return now - self._last_worker_contact >= self.local_fallback_s

    def _expire_leases_locked(self, now: float) -> None:
        expired = [lease for lease in self._leases.values()
                   if lease.deadline < now]
        for lease in expired:
            del self._leases[lease.lease_id]
            self._leases_expired += 1
            for eval_index in lease.eval_indices:
                slot = self._slot_by_eval.get(eval_index)
                if (slot is not None and slot.state == _LEASED
                        and slot.lease_id == lease.lease_id):
                    slot.state = _PENDING
                    slot.attempt += 1
                    slot.lease_id = None
                    self._reissues += 1
        if expired:
            self._progress.notify_all()

    # ------------------------------------------------------------------
    # the wire surface
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                if not self._running:
                    conn.close()
                    return
                self._conns.append(conn)
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), name="fleet-conn",
                                      daemon=True)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        channel = LineChannel(conn)
        write_lock = threading.Lock()

        def reply(document: Dict[str, Any]) -> None:
            with write_lock:
                channel.send(document)

        try:
            while True:
                try:
                    request = channel.recv()
                except ProtocolError:
                    return                  # undecodable stream: hang up
                except (OSError, ConnectionError):
                    return                  # peer died (e.g. SIGKILL)
                if request is None:
                    return
                try:
                    self._handle_request(request, reply)
                except (OSError, ConnectionError):
                    return
        finally:
            channel.close()
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _handle_request(self, request: Dict[str, Any], reply) -> None:
        try:
            request_id, op = validate_request(request)
        except ProtocolError as exc:
            reply(error_response(request.get("id"), ERR_BAD_REQUEST,
                                 str(exc)))
            return
        if op == "ping":
            reply(ok_response(request_id, {"pong": True, "fleet": True}))
        elif op == "stats":
            reply(ok_response(request_id, self.stats()))
        elif op == "shutdown":
            reply(ok_response(request_id, {"stopped": True, "fleet": True}))
            threading.Thread(target=self.shutdown, daemon=True).start()
        elif op == "lease":
            reply(ok_response(request_id, self._handle_lease(request)))
        elif op == "heartbeat":
            reply(ok_response(request_id, self._handle_heartbeat(request)))
        elif op == "submit":
            reply(ok_response(request_id, self._handle_submit(request)))
        else:
            reply(error_response(request_id, ERR_BAD_REQUEST,
                                 f"op {op!r} is not a fleet operation"))

    def _touch_locked(self, worker: str) -> None:
        now = time.monotonic()
        self._workers_seen[worker] = now
        self._last_worker_contact = now

    def _handle_lease(self, request: Dict[str, Any]) -> Dict[str, Any]:
        worker = request["worker"]
        want = int(request.get("max_configs", self.max_lease_configs))
        want = max(1, min(want, self.max_lease_configs))
        with self._lock:
            self._touch_locked(worker)
            self._expire_leases_locked(time.monotonic())
            free = [slot for slot in self._slots if slot.state == _PENDING]
            if not free:
                return {"empty": True, "done": self._done,
                        "retry_ms": self.poll_ms}
            grant = free[:want]
            lease_id = f"l{self._next_lease}"
            self._next_lease += 1
            self._leases[lease_id] = _Lease(
                lease_id, worker, time.monotonic() + self.lease_timeout,
                [slot.eval_index for slot in grant])
            for slot in grant:
                slot.state = _LEASED
                slot.lease_id = lease_id
            self._leases_issued += 1
            return {
                "campaign": self.campaign_id,
                "lease": lease_id,
                "deadline_s": self.lease_timeout,
                "batch": self.campaign.batches,
                "objective": self._objective_wire,
                "configs": [{"eval": slot.eval_index, "key": slot.key,
                             "attempt": slot.attempt,
                             "config": slot.config.to_dict()}
                            for slot in grant],
            }

    def _handle_heartbeat(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self._touch_locked(request["worker"])
            self._expire_leases_locked(time.monotonic())
            lease = self._leases.get(request["lease"])
            if lease is None:
                return {"valid": False}
            lease.deadline = time.monotonic() + self.lease_timeout
            self._heartbeats += 1
            return {"valid": True}

    def _handle_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self._touch_locked(request["worker"])
            if request.get("campaign") != self.campaign_id:
                self._foreign += 1
                return {"accepted": False, "state": "foreign"}
            slot = self._slot_by_eval.get(int(request["eval"]))
            if slot is None:
                # the batch this result belongs to was already told
                self._duplicates += 1
                return {"accepted": False, "state": "settled"}
            if slot.state == _DONE:
                self._duplicates += 1
                return {"accepted": False, "state": "duplicate"}
            if int(request["attempt"]) != slot.attempt:
                # the lease was reissued; this attempt's result is void
                self._stale += 1
                return {"accepted": False, "state": "stale"}
            slot.value = float(request["value"])
            slot.state = _DONE
            slot.lease_id = None
            self._accepted += 1
            self._progress.notify_all()
            return {"accepted": True, "state": "recorded"}

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        campaign = self.campaign
        with self._lock:
            states = [slot.state for slot in self._slots]
            return {
                "fleet": True,
                "address": self.address,
                "campaign": self.campaign_id,
                "progress": {
                    "evaluations": len(campaign.history),
                    "budget": campaign.tuner.effective_budget(campaign.space),
                    "batches": campaign.batches,
                    "done": self._done,
                },
                "batch": {"pending": states.count(_PENDING),
                          "leased": states.count(_LEASED),
                          "done": states.count(_DONE)},
                "workers": {"seen": len(self._workers_seen),
                            "active_leases": len(self._leases)},
                "leases": {"issued": self._leases_issued,
                           "expired": self._leases_expired,
                           "reissued_configs": self._reissues},
                "submissions": {"accepted": self._accepted,
                                "duplicate": self._duplicates,
                                "stale": self._stale,
                                "foreign": self._foreign},
                "heartbeats": self._heartbeats,
                "local_evaluations": self._local_evals,
                "lease_timeout_s": self.lease_timeout,
            }


# ----------------------------------------------------------------------
# the worker side
# ----------------------------------------------------------------------
class CampaignWorker:
    """Lease, evaluate, heartbeat, submit — until the campaign is done.

    A worker is stateless and crash-cheap: everything it holds is leased
    and expires.  ``fault_plan`` (or the ``REPRO_FAULTS`` environment)
    installs a :class:`~repro.serve.faults.FaultPlan` for chaos testing.
    """

    def __init__(self, address: str, worker_id: Optional[str] = None,
                 max_configs: int = 2, request_timeout: float = 5.0,
                 retries: int = 10, backoff_base: float = 0.05,
                 fault_plan=None, fault_seed_offset: int = 0):
        self.address = address
        self.worker_id = worker_id or f"w{os.getpid()}-{os.urandom(3).hex()}"
        self.max_configs = max(1, int(max_configs))
        self.request_timeout = float(request_timeout)
        self.retries = max(0, int(retries))
        self.backoff_base = float(backoff_base)
        self.fault_plan = fault_plan
        self.fault_seed_offset = int(fault_seed_offset)
        self._jitter = random.Random(self.worker_id)

    def run(self, max_leases: Optional[int] = None) -> Dict[str, Any]:
        """Work until the coordinator reports the campaign done.

        Returns a summary dict (leases completed, configs evaluated).
        Raises :class:`ConnectionError` when the coordinator stays
        unreachable beyond the retry budget.
        """
        from repro.serve.client import DaemonClient

        if self.fault_plan is not None:
            faults.install(self.fault_plan, self.fault_seed_offset)
        injector = faults.active()
        client = DaemonClient(self.address, timeout=self.request_timeout,
                              retries=self.retries,
                              backoff_base=self.backoff_base)
        beat_client = DaemonClient(self.address,
                                   timeout=self.request_timeout)
        leases = 0
        evaluations = 0
        objective = None
        objective_key = None
        try:
            while max_leases is None or leases < max_leases:
                grant = self._call(client, {
                    "op": "lease", "worker": self.worker_id,
                    "max_configs": self.max_configs})
                if grant.get("empty"):
                    if grant.get("done"):
                        break
                    time.sleep(float(grant.get("retry_ms", 25.0)) / 1e3)
                    continue
                wire = grant["objective"]
                cache_key = json.dumps(wire, sort_keys=True)
                if cache_key != objective_key:
                    objective = objective_from_wire(wire).build()
                    objective_key = cache_key
                self._work_lease(client, beat_client, grant, objective,
                                 injector)
                evaluations += len(grant["configs"])
                leases += 1
        finally:
            client.close()
            beat_client.close()
        return {"worker": self.worker_id, "leases": leases,
                "evaluations": evaluations}

    # ------------------------------------------------------------------
    def _work_lease(self, client, beat_client, grant, objective,
                    injector) -> None:
        stop = threading.Event()
        invalid = threading.Event()
        beat = threading.Thread(
            target=self._beat_loop,
            args=(beat_client, grant, stop, invalid),
            name="fleet-heartbeat", daemon=True)
        beat.start()
        try:
            for item in grant["configs"]:
                if invalid.is_set():
                    return               # lease lost: re-lease what's left
                config = OMPConfig.from_dict(item["config"])
                value = objective(config, int(item["key"]))
                if injector is not None:
                    # a scheduled SIGKILL lands here: after the value is
                    # computed, before it is submitted
                    injector.evaluated()
                response = self._call(client, {
                    "op": "submit", "worker": self.worker_id,
                    "campaign": grant["campaign"], "lease": grant["lease"],
                    "eval": item["eval"], "attempt": item["attempt"],
                    "value": float(value)})
                if response.get("state") in ("stale", "settled", "foreign"):
                    return               # the coordinator moved on without us
        finally:
            stop.set()
            beat.join(timeout=self.request_timeout + 1.0)

    def _beat_loop(self, beat_client, grant, stop: threading.Event,
                   invalid: threading.Event) -> None:
        interval = max(0.05, float(grant.get("deadline_s", 2.0)) / 3.0)
        injector = faults.active()
        while not stop.wait(interval):
            if injector is not None and not injector.heartbeat_allowed():
                continue                 # chaos: this beat is swallowed
            try:
                result = beat_client.request(
                    {"op": "heartbeat", "worker": self.worker_id,
                     "lease": grant["lease"]},
                    timeout=self.request_timeout)
            except Exception:
                continue                 # beats are best-effort
            if not result.get("valid"):
                invalid.set()
                return

    def _call(self, client, document: Dict[str, Any]) -> Dict[str, Any]:
        """Request with bounded retry over transport-level failures.

        Every fleet op is idempotent (leases are granted fresh, submits are
        deduplicated by the coordinator), so resending after a timeout or a
        mid-request break is always safe — unlike the general client case.
        """
        backoff = self.backoff_base
        for attempt in range(self.retries + 1):
            try:
                return client.request(document)
            except (OSError, ConnectionError, TimeoutError, ProtocolError):
                client.close()          # never reuse a suspect connection
                if attempt >= self.retries:
                    raise
                time.sleep(backoff * (0.5 + self._jitter.random()))
                backoff = min(1.0, backoff * 2)
        raise AssertionError("unreachable")


def run_worker(address: str, worker_id: Optional[str] = None,
               max_configs: int = 2, fault_plan=None,
               fault_seed_offset: int = 0,
               max_leases: Optional[int] = None,
               **kwargs) -> Dict[str, Any]:
    """Module-level worker entry point (picklable for multiprocessing)."""
    worker = CampaignWorker(address, worker_id=worker_id,
                            max_configs=max_configs, fault_plan=fault_plan,
                            fault_seed_offset=fault_seed_offset, **kwargs)
    return worker.run(max_leases=max_leases)
