"""The multimodal GNN + Autoencoder (MGA) performance model.

Late fusion (§3.2 "Fully Connected Tuning"): the graph embedding produced by
the heterogeneous GNN and the compressed code vector produced by the
denoising autoencoder are concatenated with the (normalised) experiment
specific features — performance counters for OpenMP, transfer/workgroup sizes
for OpenCL — and classified by a one-hidden-layer MLP into the best runtime
configuration.

Ablation switches (:class:`ModalityConfig`) turn the same class into the
paper's unimodal baselines: PROGRAML-only (graph + dynamic), IR2Vec-only
(vector + dynamic), static-only variants and the dynamic-only model of
Figure 5.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dae import DenoisingAutoencoder
from repro.gnn import GNNEncoder, HomogeneousGNNEncoder
from repro.graphs import (
    BatchedHeteroGraph,
    GraphBatchCache,
    HeteroGraphData,
    batch_graphs,
)
from repro.nn import (
    AdamW,
    EarlyStopping,
    MinMaxScaler,
    MLP,
    TapeRunner,
    Tensor,
    concat,
    cross_entropy,
    iterate_minibatches,
    train_epoch,
)
from repro.nn.layers import Module


@dataclasses.dataclass(frozen=True)
class ModalityConfig:
    """Which modalities take part in the fused feature vector."""

    use_graph: bool = True
    use_vector: bool = True
    use_extra: bool = True

    def __post_init__(self) -> None:
        if not (self.use_graph or self.use_vector or self.use_extra):
            raise ValueError("at least one modality must be enabled")

    @classmethod
    def mga(cls) -> "ModalityConfig":
        return cls(True, True, True)

    @classmethod
    def mga_static(cls) -> "ModalityConfig":
        return cls(True, True, False)

    @classmethod
    def programl(cls) -> "ModalityConfig":
        return cls(True, False, True)

    @classmethod
    def programl_static(cls) -> "ModalityConfig":
        return cls(True, False, False)

    @classmethod
    def ir2vec(cls) -> "ModalityConfig":
        return cls(False, True, True)

    @classmethod
    def ir2vec_static(cls) -> "ModalityConfig":
        return cls(False, True, False)

    @classmethod
    def dynamic_only(cls) -> "ModalityConfig":
        return cls(False, False, True)


class MGAModel(Module):
    """Multimodal classifier over (graph, code vector, extra features)."""

    def __init__(self, graph_feature_dim: int, vector_dim: int, extra_dim: int,
                 num_classes: int,
                 modalities: ModalityConfig = ModalityConfig.mga(),
                 gnn_hidden: int = 24, gnn_out: int = 24, gnn_layers: int = 2,
                 conv_type: str = "ggnn", hetero: bool = True,
                 dae_hidden: int = 48, dae_code: int = 16,
                 mlp_hidden: int = 32, dropout: float = 0.05,
                 seed: int = 0, dtype: str = "float32"):
        super().__init__()
        self._dtype = np.dtype(dtype)
        if self._dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dtype must be float32 or float64")
        self._config = dict(
            graph_feature_dim=int(graph_feature_dim), vector_dim=int(vector_dim),
            extra_dim=int(extra_dim), num_classes=int(num_classes),
            modalities=dataclasses.asdict(modalities), gnn_hidden=gnn_hidden,
            gnn_out=gnn_out, gnn_layers=gnn_layers, conv_type=conv_type,
            hetero=hetero, dae_hidden=dae_hidden, dae_code=dae_code,
            mlp_hidden=mlp_hidden, dropout=dropout, seed=seed,
            dtype=self._dtype.name,
        )
        self.modalities = modalities
        self.num_classes = int(num_classes)
        self.extra_dim = int(extra_dim)
        rng = np.random.default_rng(seed)
        self.seed = seed

        fused_dim = 0
        self.gnn: Optional[Module] = None
        if modalities.use_graph:
            encoder_cls = GNNEncoder if hetero else HomogeneousGNNEncoder
            self.gnn = encoder_cls(graph_feature_dim, hidden_dim=gnn_hidden,
                                   out_dim=gnn_out, num_layers=gnn_layers,
                                   conv_type=conv_type, rng=rng)
            fused_dim += gnn_out
        self.dae: Optional[DenoisingAutoencoder] = None
        if modalities.use_vector:
            self.dae = DenoisingAutoencoder(vector_dim, hidden_dim=dae_hidden,
                                            code_dim=dae_code, seed=seed,
                                            dtype=self._dtype.name)
            fused_dim += dae_code
        self.extra_scaler = MinMaxScaler()
        if modalities.use_extra:
            fused_dim += extra_dim

        # "Our fully connected network consists of only one hidden layer."
        self.head = MLP(fused_dim, [mlp_hidden], num_classes, activation="relu",
                        dropout=dropout, rng=rng)
        self.fused_dim = fused_dim
        # parameters are drawn in float64 (so float64 mode is bit-identical
        # to the seed initialisation), then cast down for float32 training
        self.to_dtype(self._dtype)
        self._fitted = False

    @property
    def dtype(self) -> np.dtype:
        """Compute dtype of the model (float32 fast path or float64)."""
        return self._dtype

    # ------------------------------------------------------------------
    # persistence (see :mod:`repro.serve.artifacts` for the on-disk format)
    # ------------------------------------------------------------------
    def get_config(self) -> Dict:
        """JSON-serialisable constructor arguments of this model."""
        return dict(self._config)

    @classmethod
    def from_config(cls, config: Dict) -> "MGAModel":
        """Rebuild an architecturally identical (untrained) model."""
        config = dict(config)
        modalities = config.pop("modalities", None)
        if isinstance(modalities, dict):
            modalities = ModalityConfig(**modalities)
        return cls(modalities=modalities or ModalityConfig.mga(), **config)

    def extra_state(self):
        state = {"fitted": np.array(float(self._fitted))}
        for key, value in self.extra_scaler.get_state().items():
            state[f"extra_scaler.{key}"] = value
        return state

    def load_extra_state(self, state) -> None:
        if "fitted" in state:
            self._fitted = bool(float(np.asarray(state["fitted"])))
        scaler_state = {key[len("extra_scaler."):]: value
                        for key, value in state.items()
                        if key.startswith("extra_scaler.")}
        self.extra_scaler.set_state(scaler_state)

    # ------------------------------------------------------------------
    # feature assembly
    # ------------------------------------------------------------------
    @staticmethod
    def prepare_extra(extra: np.ndarray) -> np.ndarray:
        """Counters / sizes span decades: compress with log1p before scaling."""
        return np.log1p(np.maximum(np.asarray(extra, dtype=np.float64), 0.0))

    def _scaled_extra(self, extra: np.ndarray) -> np.ndarray:
        scaled = self.extra_scaler.transform(self.prepare_extra(extra))
        return scaled.astype(self._dtype, copy=False)

    def _fuse(self, graphs: Sequence[HeteroGraphData], vectors: np.ndarray,
              extra: np.ndarray,
              batch: Optional[BatchedHeteroGraph] = None) -> Tensor:
        parts: List[Tensor] = []
        if self.modalities.use_graph:
            if batch is None:
                batch = batch_graphs(list(graphs))
            parts.append(self.gnn(batch))
        if self.modalities.use_vector:
            codes = self.dae.encode(vectors).astype(self._dtype, copy=False)
            parts.append(Tensor(codes))
        if self.modalities.use_extra:
            parts.append(Tensor(self._scaled_extra(extra)))
        if len(parts) == 1:
            return parts[0]
        return concat(parts, axis=1)

    # ------------------------------------------------------------------
    def fit(self, graphs: Sequence[HeteroGraphData], vectors: np.ndarray,
            extra: np.ndarray, labels: np.ndarray, epochs: int = 40,
            lr: float = 1e-2, weight_decay: float = 1e-3, batch_size: int = 32,
            dae_epochs: int = 30, class_balance: bool = True,
            verbose: bool = False, patience: Optional[int] = None,
            cache_batches: bool = True,
            precompute_frozen: bool = True,
            tape: bool = True,
            tape_runner: Optional[TapeRunner] = None) -> Dict[str, List[float]]:
        """Train the model; returns the loss history.

        The fast path (both flags default on) does two things the naive loop
        does not:

        * ``precompute_frozen`` — the DAE and the extra-feature scaler are
          frozen after pre-training, so their codes / scaled features are
          computed once for the whole training set instead of re-encoded for
          every minibatch of every epoch.
        * ``cache_batches`` — the minibatch partition is drawn once and only
          the *visit order* is reshuffled per epoch, so each block-diagonal
          graph batch (plus its sorted edge layouts) is built exactly once
          and reused across epochs (keyed on the minibatch index tuple).

        Setting both to ``False`` reproduces the seed training loop
        (identical rng consumption), which together with ``dtype="float64"``
        gives numerically seed-equivalent training for the figure
        experiments.  ``patience`` enables early stopping on the epoch loss.

        ``tape`` additionally records each (frozen) minibatch's backward
        graph on its first visit and replays the compiled plan on later
        epochs (:class:`repro.nn.TapeRunner`) — bit-identical losses and
        parameter updates, without per-step graph construction.  It only
        engages when ``cache_batches`` is on (the partition must be frozen
        for a recorded plan to stay valid) and silently falls back to eager
        whenever a plan's guards fail.  ``tape_runner`` shares one runner
        (plan cache + gradient arena) across fits; leave it ``None`` unless
        every fit sees the same data — recorded plans capture batch
        constants by reference.
        """
        labels = np.asarray(labels, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=np.float64)
        extra = np.asarray(extra, dtype=np.float64)
        n = len(labels)
        if len(graphs) != n or vectors.shape[0] != n or extra.shape[0] != n:
            raise ValueError("modalities disagree on the number of samples")

        if self.modalities.use_vector:
            self.dae.fit(vectors, epochs=dae_epochs)
        if self.modalities.use_extra:
            self.extra_scaler.fit(self.prepare_extra(extra))

        class_weights = None
        if class_balance:
            counts = np.bincount(labels, minlength=self.num_classes).astype(float)
            weights = np.where(counts > 0, counts.sum() / np.maximum(counts, 1.0),
                               0.0)
            class_weights = weights / max(weights.max(), 1e-12)

        params = self.head.parameters()
        if self.modalities.use_graph:
            params = params + self.gnn.parameters()
        optimizer = AdamW(params, lr=lr, weight_decay=weight_decay)
        rng = np.random.default_rng(self.seed + 17)
        graphs = list(graphs)

        # frozen modalities: encode / scale the whole training set once
        codes = scaled_extra = None
        if precompute_frozen:
            if self.modalities.use_vector:
                codes = self.dae.encode(vectors).astype(self._dtype,
                                                        copy=False)
            if self.modalities.use_extra:
                scaled_extra = self._scaled_extra(extra)

        batch_cache = (GraphBatchCache(graphs)
                       if cache_batches and self.modalities.use_graph else None)
        fixed_batches: Optional[List[np.ndarray]] = None
        if cache_batches:
            fixed_batches = list(iterate_minibatches(n, batch_size, rng=rng))

        def batch_loss(idx: np.ndarray) -> Tensor:
            parts: List[Tensor] = []
            if self.modalities.use_graph:
                batch = (batch_cache.get(idx) if batch_cache is not None
                         else batch_graphs([graphs[i] for i in idx]))
                parts.append(self.gnn(batch))
            if self.modalities.use_vector:
                if codes is not None:
                    parts.append(Tensor(codes[idx]))
                else:
                    parts.append(Tensor(
                        self.dae.encode(vectors[idx]).astype(
                            self._dtype, copy=False)))
            if self.modalities.use_extra:
                parts.append(Tensor(scaled_extra[idx]
                                    if scaled_extra is not None
                                    else self._scaled_extra(extra[idx])))
            fused = parts[0] if len(parts) == 1 else concat(parts, axis=1)
            logits = self.head(fused)
            return cross_entropy(logits, labels[idx],
                                 class_weights=class_weights)

        # replay needs a frozen batch partition: a plan captures its batch's
        # constants (graph layout, codes, labels) at record time
        runner = None
        if tape and fixed_batches is not None:
            runner = tape_runner if tape_runner is not None \
                else TapeRunner(wrt=params)
            # absent-parameter handling (a batch whose graph skips some conv,
            # e.g. an empty relation) must match eager zero_grad semantics
            runner.wrt = list(params)

        stopper = (EarlyStopping(patience=patience)
                   if patience is not None else None)
        history: Dict[str, List[float]] = {"loss": []}
        for epoch in range(epochs):
            if fixed_batches is not None:
                order = rng.permutation(len(fixed_batches))
                epoch_batches = [fixed_batches[j] for j in order]
                keys = [("b", int(j)) for j in order]
                fingerprints = [(int(len(fixed_batches[j])),) for j in order]
            else:
                epoch_batches = list(iterate_minibatches(n, batch_size,
                                                         rng=rng))
                keys = fingerprints = None
            mean_loss, _ = train_epoch(epoch_batches, batch_loss, optimizer,
                                       tape=runner, keys=keys,
                                       fingerprints=fingerprints)
            history["loss"].append(mean_loss)
            if verbose:
                print(f"epoch {epoch + 1}/{epochs}: loss="
                      f"{history['loss'][-1]:.4f}")
            if stopper is not None and stopper.step(history["loss"][-1]):
                break
        self._fitted = True
        return history

    # ------------------------------------------------------------------
    def predict_logits(self, graphs: Sequence[HeteroGraphData],
                       vectors: np.ndarray, extra: np.ndarray,
                       batch: Optional[BatchedHeteroGraph] = None) -> np.ndarray:
        """Raw classifier logits in eval mode (float64).

        ``batch`` optionally supplies an already block-diagonal
        :class:`BatchedHeteroGraph` for ``graphs`` (the serving engine caches
        these), skipping the per-call batch construction.
        """
        if not self._fitted:
            raise RuntimeError("MGAModel.predict called before fit")
        self.eval()
        fused = self._fuse(list(graphs), np.asarray(vectors, dtype=np.float64),
                           np.asarray(extra, dtype=np.float64), batch=batch)
        logits = self.head(fused).data
        self.train()
        return logits.astype(np.float64, copy=False)

    def predict_proba(self, graphs: Sequence[HeteroGraphData],
                      vectors: np.ndarray, extra: np.ndarray,
                      batch: Optional[BatchedHeteroGraph] = None) -> np.ndarray:
        logits = self.predict_logits(graphs, vectors, extra, batch=batch)
        logits = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, graphs: Sequence[HeteroGraphData], vectors: np.ndarray,
                extra: np.ndarray,
                batch: Optional[BatchedHeteroGraph] = None) -> np.ndarray:
        return self.predict_proba(graphs, vectors, extra,
                                  batch=batch).argmax(axis=1)
