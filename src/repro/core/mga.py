"""The multimodal GNN + Autoencoder (MGA) performance model.

Late fusion (§3.2 "Fully Connected Tuning"): the graph embedding produced by
the heterogeneous GNN and the compressed code vector produced by the
denoising autoencoder are concatenated with the (normalised) experiment
specific features — performance counters for OpenMP, transfer/workgroup sizes
for OpenCL — and classified by a one-hidden-layer MLP into the best runtime
configuration.

Ablation switches (:class:`ModalityConfig`) turn the same class into the
paper's unimodal baselines: PROGRAML-only (graph + dynamic), IR2Vec-only
(vector + dynamic), static-only variants and the dynamic-only model of
Figure 5.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dae import DenoisingAutoencoder
from repro.gnn import GNNEncoder, HomogeneousGNNEncoder
from repro.graphs import HeteroGraphData, batch_graphs
from repro.nn import (
    AdamW,
    MinMaxScaler,
    MLP,
    Tensor,
    concat,
    cross_entropy,
    iterate_minibatches,
)
from repro.nn.layers import Module


@dataclasses.dataclass(frozen=True)
class ModalityConfig:
    """Which modalities take part in the fused feature vector."""

    use_graph: bool = True
    use_vector: bool = True
    use_extra: bool = True

    def __post_init__(self) -> None:
        if not (self.use_graph or self.use_vector or self.use_extra):
            raise ValueError("at least one modality must be enabled")

    @classmethod
    def mga(cls) -> "ModalityConfig":
        return cls(True, True, True)

    @classmethod
    def mga_static(cls) -> "ModalityConfig":
        return cls(True, True, False)

    @classmethod
    def programl(cls) -> "ModalityConfig":
        return cls(True, False, True)

    @classmethod
    def programl_static(cls) -> "ModalityConfig":
        return cls(True, False, False)

    @classmethod
    def ir2vec(cls) -> "ModalityConfig":
        return cls(False, True, True)

    @classmethod
    def ir2vec_static(cls) -> "ModalityConfig":
        return cls(False, True, False)

    @classmethod
    def dynamic_only(cls) -> "ModalityConfig":
        return cls(False, False, True)


class MGAModel(Module):
    """Multimodal classifier over (graph, code vector, extra features)."""

    def __init__(self, graph_feature_dim: int, vector_dim: int, extra_dim: int,
                 num_classes: int,
                 modalities: ModalityConfig = ModalityConfig.mga(),
                 gnn_hidden: int = 24, gnn_out: int = 24, gnn_layers: int = 2,
                 conv_type: str = "ggnn", hetero: bool = True,
                 dae_hidden: int = 48, dae_code: int = 16,
                 mlp_hidden: int = 32, dropout: float = 0.05,
                 seed: int = 0):
        super().__init__()
        self._config = dict(
            graph_feature_dim=int(graph_feature_dim), vector_dim=int(vector_dim),
            extra_dim=int(extra_dim), num_classes=int(num_classes),
            modalities=dataclasses.asdict(modalities), gnn_hidden=gnn_hidden,
            gnn_out=gnn_out, gnn_layers=gnn_layers, conv_type=conv_type,
            hetero=hetero, dae_hidden=dae_hidden, dae_code=dae_code,
            mlp_hidden=mlp_hidden, dropout=dropout, seed=seed,
        )
        self.modalities = modalities
        self.num_classes = int(num_classes)
        self.extra_dim = int(extra_dim)
        rng = np.random.default_rng(seed)
        self.seed = seed

        fused_dim = 0
        self.gnn: Optional[Module] = None
        if modalities.use_graph:
            encoder_cls = GNNEncoder if hetero else HomogeneousGNNEncoder
            self.gnn = encoder_cls(graph_feature_dim, hidden_dim=gnn_hidden,
                                   out_dim=gnn_out, num_layers=gnn_layers,
                                   conv_type=conv_type, rng=rng)
            fused_dim += gnn_out
        self.dae: Optional[DenoisingAutoencoder] = None
        if modalities.use_vector:
            self.dae = DenoisingAutoencoder(vector_dim, hidden_dim=dae_hidden,
                                            code_dim=dae_code, seed=seed)
            fused_dim += dae_code
        self.extra_scaler = MinMaxScaler()
        if modalities.use_extra:
            fused_dim += extra_dim

        # "Our fully connected network consists of only one hidden layer."
        self.head = MLP(fused_dim, [mlp_hidden], num_classes, activation="relu",
                        dropout=dropout, rng=rng)
        self.fused_dim = fused_dim
        self._fitted = False

    # ------------------------------------------------------------------
    # persistence (see :mod:`repro.serve.artifacts` for the on-disk format)
    # ------------------------------------------------------------------
    def get_config(self) -> Dict:
        """JSON-serialisable constructor arguments of this model."""
        return dict(self._config)

    @classmethod
    def from_config(cls, config: Dict) -> "MGAModel":
        """Rebuild an architecturally identical (untrained) model."""
        config = dict(config)
        modalities = config.pop("modalities", None)
        if isinstance(modalities, dict):
            modalities = ModalityConfig(**modalities)
        return cls(modalities=modalities or ModalityConfig.mga(), **config)

    def extra_state(self):
        state = {"fitted": np.array(float(self._fitted))}
        for key, value in self.extra_scaler.get_state().items():
            state[f"extra_scaler.{key}"] = value
        return state

    def load_extra_state(self, state) -> None:
        if "fitted" in state:
            self._fitted = bool(float(np.asarray(state["fitted"])))
        scaler_state = {key[len("extra_scaler."):]: value
                        for key, value in state.items()
                        if key.startswith("extra_scaler.")}
        self.extra_scaler.set_state(scaler_state)

    # ------------------------------------------------------------------
    # feature assembly
    # ------------------------------------------------------------------
    @staticmethod
    def prepare_extra(extra: np.ndarray) -> np.ndarray:
        """Counters / sizes span decades: compress with log1p before scaling."""
        return np.log1p(np.maximum(np.asarray(extra, dtype=np.float64), 0.0))

    def _fuse(self, graphs: Sequence[HeteroGraphData], vectors: np.ndarray,
              extra: np.ndarray) -> Tensor:
        parts: List[Tensor] = []
        if self.modalities.use_graph:
            batch = batch_graphs(list(graphs))
            parts.append(self.gnn(batch))
        if self.modalities.use_vector:
            parts.append(Tensor(self.dae.encode(vectors)))
        if self.modalities.use_extra:
            scaled = self.extra_scaler.transform(self.prepare_extra(extra))
            parts.append(Tensor(scaled))
        if len(parts) == 1:
            return parts[0]
        return concat(parts, axis=1)

    # ------------------------------------------------------------------
    def fit(self, graphs: Sequence[HeteroGraphData], vectors: np.ndarray,
            extra: np.ndarray, labels: np.ndarray, epochs: int = 40,
            lr: float = 1e-2, weight_decay: float = 1e-3, batch_size: int = 32,
            dae_epochs: int = 30, class_balance: bool = True,
            verbose: bool = False) -> Dict[str, List[float]]:
        """Train the model; returns the loss history."""
        labels = np.asarray(labels, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=np.float64)
        extra = np.asarray(extra, dtype=np.float64)
        n = len(labels)
        if len(graphs) != n or vectors.shape[0] != n or extra.shape[0] != n:
            raise ValueError("modalities disagree on the number of samples")

        if self.modalities.use_vector:
            self.dae.fit(vectors, epochs=dae_epochs)
        if self.modalities.use_extra:
            self.extra_scaler.fit(self.prepare_extra(extra))

        class_weights = None
        if class_balance:
            counts = np.bincount(labels, minlength=self.num_classes).astype(float)
            weights = np.where(counts > 0, counts.sum() / np.maximum(counts, 1.0),
                               0.0)
            class_weights = weights / max(weights.max(), 1e-12)

        params = self.head.parameters()
        if self.modalities.use_graph:
            params = params + self.gnn.parameters()
        optimizer = AdamW(params, lr=lr, weight_decay=weight_decay)
        rng = np.random.default_rng(self.seed + 17)
        history: Dict[str, List[float]] = {"loss": []}
        graphs = list(graphs)
        for epoch in range(epochs):
            epoch_loss, batches = 0.0, 0
            for idx in iterate_minibatches(n, batch_size, rng=rng):
                fused = self._fuse([graphs[i] for i in idx], vectors[idx],
                                   extra[idx])
                logits = self.head(fused)
                loss = cross_entropy(logits, labels[idx],
                                     class_weights=class_weights)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            history["loss"].append(epoch_loss / max(1, batches))
            if verbose:
                print(f"epoch {epoch + 1}/{epochs}: loss="
                      f"{history['loss'][-1]:.4f}")
        self._fitted = True
        return history

    # ------------------------------------------------------------------
    def predict_proba(self, graphs: Sequence[HeteroGraphData],
                      vectors: np.ndarray, extra: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("MGAModel.predict called before fit")
        self.eval()
        fused = self._fuse(list(graphs), np.asarray(vectors, dtype=np.float64),
                           np.asarray(extra, dtype=np.float64))
        logits = self.head(fused).data
        logits = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        self.train()
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, graphs: Sequence[HeteroGraphData], vectors: np.ndarray,
                extra: np.ndarray) -> np.ndarray:
        return self.predict_proba(graphs, vectors, extra).argmax(axis=1)
