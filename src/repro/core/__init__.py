"""The MGA tuner: multimodal (GNN + DAE) performance model and tuning API.

This is the paper's primary contribution.  :class:`MGAModel` fuses the
ProGraML-graph modality (heterogeneous GNN), the IR2Vec-vector modality
(denoising autoencoder) and the experiment-specific dynamic features
(performance counters for OpenMP, transfer/workgroup size for OpenCL) through
late fusion into a one-hidden-layer MLP classifier.  :class:`MGATuner` and
:class:`DeviceMapper` wrap it into end-to-end tuners.
"""

from repro.core.features import StaticFeatureExtractor
from repro.core.mga import MGAModel, ModalityConfig
from repro.core.tuner import DeviceMapper, MGATuner

__all__ = [
    "StaticFeatureExtractor",
    "ModalityConfig",
    "MGAModel",
    "MGATuner",
    "DeviceMapper",
]
