"""End-to-end tuners built on :class:`~repro.core.mga.MGAModel`.

* :class:`MGATuner` — OpenMP runtime-parameter tuning (§4.1): trained on an
  :class:`~repro.datasets.openmp.OpenMPTuningDataset`, it predicts the best
  (threads, schedule, chunk) configuration for an unseen loop + input from the
  static modalities plus performance counters profiled under the default
  configuration (the paper's "two runs at inference" cost model).
* :class:`DeviceMapper` — OpenCL heterogeneous device mapping (§4.2).

Both tuners round-trip through the :mod:`repro.serve` subsystem
(``tuner.save(path)`` / ``MGATuner.load(path)``) so a model trained in one
process can be published to a :class:`repro.serve.ModelRegistry` and served
from another.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import StaticFeatureExtractor
from repro.core.mga import MGAModel, ModalityConfig
from repro.frontend.openmp import OMPConfig, default_omp_config
from repro.frontend.spec import KernelSpec
from repro.profiling import PAPIProfiler
from repro.simulator.microarch import MicroArch

if TYPE_CHECKING:  # annotation-only: keeps repro.core importable standalone
    from repro.datasets.devmap import DevMapDataset, DevMapSample
    from repro.datasets.openmp import OpenMPSample, OpenMPTuningDataset


class MGATuner:
    """OpenMP tuner: profile once under the default config, then predict."""

    def __init__(self, arch: MicroArch, configs: Sequence[OMPConfig],
                 extractor: Optional[StaticFeatureExtractor] = None,
                 modalities: ModalityConfig = ModalityConfig.mga(),
                 counter_names: Optional[Sequence[str]] = None,
                 seed: int = 0, **model_kwargs):
        self.arch = arch
        self.configs = list(configs)
        self.extractor = extractor or StaticFeatureExtractor()
        self.modalities = modalities
        self.counter_names = list(counter_names) if counter_names else None
        self.seed = seed
        self.model_kwargs = dict(model_kwargs)
        self.model: Optional[MGAModel] = None

    # ------------------------------------------------------------------
    def _sample_features(self, dataset: OpenMPTuningDataset,
                         samples: Sequence[OpenMPSample]):
        graphs = [s.graph for s in samples]
        vectors = np.stack([s.vector for s in samples])
        extra = dataset.counter_matrix(samples)
        return graphs, vectors, extra

    def fit(self, dataset: OpenMPTuningDataset,
            train_indices: Optional[Sequence[int]] = None,
            **train_kwargs) -> Dict[str, List[float]]:
        """Train on (a subset of) an OpenMP tuning dataset."""
        samples = (dataset.samples if train_indices is None
                   else dataset.subset(list(train_indices)))
        if not samples:
            raise ValueError("no training samples")
        if self.counter_names is None:
            self.counter_names = list(dataset.counter_names)
        graphs, vectors, extra = self._sample_features(dataset, samples)
        labels = dataset.labels(samples)
        self.model = MGAModel(
            graph_feature_dim=graphs[0].feature_dim,
            vector_dim=vectors.shape[1],
            extra_dim=extra.shape[1],
            num_classes=dataset.num_configs,
            modalities=self.modalities,
            seed=self.seed,
            **self.model_kwargs,
        )
        return self.model.fit(graphs, vectors, extra, labels, **train_kwargs)

    # ------------------------------------------------------------------
    def predict_indices(self, dataset: OpenMPTuningDataset,
                        indices: Sequence[int]) -> np.ndarray:
        """Predicted configuration index for dataset samples."""
        if self.model is None:
            raise RuntimeError("tuner is not fitted")
        samples = dataset.subset(list(indices))
        graphs, vectors, extra = self._sample_features(dataset, samples)
        return self.model.predict(graphs, vectors, extra)

    def predict_configs(self, dataset: OpenMPTuningDataset,
                        indices: Sequence[int]) -> List[OMPConfig]:
        return [dataset.configs[i]
                for i in self.predict_indices(dataset, indices)]

    # ------------------------------------------------------------------
    def tune(self, spec: KernelSpec, scale: float = 1.0,
             profiler: Optional[PAPIProfiler] = None
             ) -> Tuple[OMPConfig, Dict[str, float]]:
        """Tune an unseen kernel+input: profile at the default config, predict.

        Returns the predicted configuration and the profiling counters used.
        Inference needs only the profiling run(s) — no search over the space —
        which is what makes the MGA tuner faster than search-based tuners.
        """
        if self.model is None:
            raise RuntimeError("tuner is not fitted")
        profiler = profiler or PAPIProfiler(self.arch)
        record = profiler.profile(spec, scale=scale,
                                  config=default_omp_config(self.arch.cores),
                                  events=self.counter_names)
        graph, vector = self.extractor.extract(spec)
        extra = np.array([[record.counters[name]
                           for name in self.counter_names]])
        index = int(self.model.predict([graph], vector[None, :], extra)[0])
        return self.configs[index], dict(record.counters)

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write a versioned on-disk artifact (see :mod:`repro.serve`)."""
        from repro.serve.artifacts import save_artifact
        save_artifact(path, self)

    @classmethod
    def load(cls, path) -> "MGATuner":
        """Load a tuner saved with :meth:`save` (integrity-checked)."""
        from repro.serve.artifacts import load_artifact_as
        return load_artifact_as(path, cls)


class DeviceMapper:
    """OpenCL CPU/GPU mapper (the §4.2 task)."""

    def __init__(self, extractor: Optional[StaticFeatureExtractor] = None,
                 modalities: ModalityConfig = ModalityConfig.mga(),
                 seed: int = 0, **model_kwargs):
        self.extractor = extractor or StaticFeatureExtractor()
        self.modalities = modalities
        self.seed = seed
        self.model_kwargs = dict(model_kwargs)
        self.model: Optional[MGAModel] = None

    @staticmethod
    def _sample_features(dataset: DevMapDataset, samples: Sequence[DevMapSample]):
        graphs = [s.graph for s in samples]
        vectors = np.stack([s.vector for s in samples])
        extra = dataset.extra_features(samples)
        return graphs, vectors, extra

    def fit(self, dataset: DevMapDataset,
            train_indices: Optional[Sequence[int]] = None,
            **train_kwargs) -> Dict[str, List[float]]:
        samples = (dataset.samples if train_indices is None
                   else dataset.subset(list(train_indices)))
        if not samples:
            raise ValueError("no training samples")
        graphs, vectors, extra = self._sample_features(dataset, samples)
        labels = dataset.labels(samples)
        self.model = MGAModel(
            graph_feature_dim=graphs[0].feature_dim,
            vector_dim=vectors.shape[1],
            extra_dim=extra.shape[1],
            num_classes=2,
            modalities=self.modalities,
            seed=self.seed,
            **self.model_kwargs,
        )
        return self.model.fit(graphs, vectors, extra, labels, **train_kwargs)

    def predict(self, dataset: DevMapDataset,
                indices: Sequence[int]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("mapper is not fitted")
        samples = dataset.subset(list(indices))
        graphs, vectors, extra = self._sample_features(dataset, samples)
        return self.model.predict(graphs, vectors, extra)

    # ------------------------------------------------------------------
    def map_device(self, spec: KernelSpec, transfer_bytes: float,
                   wgsize: int) -> int:
        """Map one unseen kernel invocation to CPU (0) or GPU (1).

        The extra features mirror :meth:`DevMapDataset.extra_features`:
        log-scaled transfer and workgroup sizes.
        """
        if self.model is None:
            raise RuntimeError("mapper is not fitted")
        graph, vector = self.extractor.extract(spec)
        extra = np.array([[np.log1p(float(transfer_bytes)),
                           np.log1p(float(wgsize))]])
        return int(self.model.predict([graph], vector[None, :], extra)[0])

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write a versioned on-disk artifact (see :mod:`repro.serve`)."""
        from repro.serve.artifacts import save_artifact
        save_artifact(path, self)

    @classmethod
    def load(cls, path) -> "DeviceMapper":
        """Load a mapper saved with :meth:`save` (integrity-checked)."""
        from repro.serve.artifacts import load_artifact_as
        return load_artifact_as(path, cls)
