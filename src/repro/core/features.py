"""Static feature extraction shared by datasets and tuners.

One kernel spec is turned into its two static modalities exactly once and
cached: the ProGraML-style heterogeneous graph and the IR2Vec-style program
vector (Figure 3 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings import IR2VecEncoder, SeedEmbeddingVocabulary, harvest_triplets
from repro.frontend import lower_to_ir
from repro.frontend.spec import KernelSpec
from repro.graphs import GraphVocabulary, HeteroGraphData, build_programl_graph, to_hetero_graph


class StaticFeatureExtractor:
    """Lower, graph-ify and vectorise kernel specs (with caching)."""

    def __init__(self, vector_dim: int = 48,
                 graph_vocab: Optional[GraphVocabulary] = None,
                 train_seed_embeddings: bool = False,
                 seed: int = 0):
        self.graph_vocab = graph_vocab or GraphVocabulary()
        self.seed_vocab = SeedEmbeddingVocabulary(dim=vector_dim)
        self.encoder = IR2VecEncoder(self.seed_vocab)
        self.train_seed_embeddings = train_seed_embeddings
        self.seed = seed
        self._cache: Dict[str, Tuple[HeteroGraphData, np.ndarray]] = {}

    # ------------------------------------------------------------------
    @property
    def graph_feature_dim(self) -> int:
        return self.graph_vocab.feature_dim

    @property
    def vector_dim(self) -> int:
        return self.encoder.dim

    # ------------------------------------------------------------------
    def fit_seed_embeddings(self, specs: Sequence[KernelSpec],
                            epochs: int = 10) -> None:
        """Optionally train the IR2Vec seed vocabulary on a kernel corpus."""
        modules = [lower_to_ir(spec) for spec in specs]
        triplets = harvest_triplets(modules)
        self.seed_vocab.train(triplets, epochs=epochs, seed=self.seed)

    def extract(self, spec: KernelSpec) -> Tuple[HeteroGraphData, np.ndarray]:
        """Return (hetero graph, program vector) for one kernel."""
        key = f"{spec.uid}:{spec.model.value}"
        if key not in self._cache:
            module = lower_to_ir(spec)
            graph = to_hetero_graph(build_programl_graph(module), self.graph_vocab)
            vector = self.encoder.encode_module(module)
            self._cache[key] = (graph, vector)
        return self._cache[key]

    def extract_many(self, specs: Sequence[KernelSpec]
                     ) -> Tuple[List[HeteroGraphData], np.ndarray]:
        graphs, vectors = [], []
        for spec in specs:
            g, v = self.extract(spec)
            graphs.append(g)
            vectors.append(v)
        return graphs, np.stack(vectors)
