"""Structural verifier for the miniature IR.

The verifier enforces the invariants the rest of the pipeline relies on:
every reachable block is terminated, branch targets belong to the same
function, phi nodes have one incoming value per operand, operand types are
consistent with the opcode, and every instruction operand is defined in the
same function (arguments/globals/constants are always legal operands).
"""

from __future__ import annotations

from typing import List

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import Module
from repro.ir.types import DataType, is_float, is_int, is_pointer
from repro.ir.values import Argument, Constant, GlobalVariable


class VerificationError(Exception):
    """Raised when a module violates an IR invariant."""


def _check(cond: bool, message: str, errors: List[str]) -> None:
    if not cond:
        errors.append(message)


def verify_function(function: Function) -> List[str]:
    """Return a list of human-readable invariant violations (empty if valid)."""
    errors: List[str] = []
    if function.is_declaration:
        return errors

    blocks = set(function.blocks)
    defined: set = set(function.args)
    for block in function.blocks:
        for inst in block.instructions:
            if inst.has_result:
                defined.add(inst)

    for block in function.blocks:
        _check(block.is_terminated,
               f"{function.name}:{block.label}: block is not terminated", errors)
        terminator_seen = False
        for inst in block.instructions:
            _check(not terminator_seen,
                   f"{function.name}:{block.label}: instruction after terminator",
                   errors)
            if inst.is_terminator:
                terminator_seen = True
                for succ in inst.successors():
                    _check(succ in blocks,
                           f"{function.name}:{block.label}: branch to foreign block",
                           errors)
            _verify_instruction(function, block, inst, defined, errors)
    return errors


def _verify_instruction(function: Function, block: BasicBlock, inst: Instruction,
                        defined: set, errors: List[str]) -> None:
    label = f"{function.name}:{block.label}:{inst.name}"
    for op in inst.operands:
        legal = (
            isinstance(op, (Constant, GlobalVariable))
            or (isinstance(op, Argument) and op.function is function)
            or op in defined
        )
        _check(legal, f"{label}: operand {op!r} not defined in function", errors)

    op = inst.opcode
    if op == Opcode.LOAD:
        _check(len(inst.operands) == 1 and is_pointer(inst.operands[0].dtype),
               f"{label}: load requires one pointer operand", errors)
    elif op == Opcode.STORE:
        _check(len(inst.operands) == 2, f"{label}: store requires two operands",
               errors)
        if len(inst.operands) == 2:
            _check(is_pointer(inst.operands[1].dtype),
                   f"{label}: store target must be a pointer", errors)
        _check(inst.dtype == DataType.VOID, f"{label}: store has no result", errors)
    elif op == Opcode.GEP:
        _check(len(inst.operands) == 2 and is_pointer(inst.operands[0].dtype),
               f"{label}: gep requires (pointer, index)", errors)
        if len(inst.operands) == 2:
            _check(is_int(inst.operands[1].dtype),
                   f"{label}: gep index must be an integer", errors)
    elif op in (Opcode.ICMP, Opcode.FCMP):
        _check("predicate" in inst.metadata, f"{label}: cmp without predicate",
               errors)
        _check(inst.dtype == DataType.I1, f"{label}: cmp must produce i1", errors)
    elif op == Opcode.PHI:
        incoming = inst.metadata.get("incoming", [])
        _check(len(incoming) == len(inst.operands),
               f"{label}: phi has {len(inst.operands)} values but "
               f"{len(incoming)} incoming blocks", errors)
        _check(len(inst.operands) >= 1, f"{label}: phi with no incoming values",
               errors)
    elif op == Opcode.CONDBR:
        _check(len(inst.operands) == 1 and inst.operands[0].dtype == DataType.I1,
               f"{label}: condbr requires an i1 condition", errors)
    elif op == Opcode.CALL or op == Opcode.OMP_FORK:
        _check("callee" in inst.metadata, f"{label}: call without callee name",
               errors)
    elif inst.is_float_arith:
        for operand in inst.operands:
            _check(is_float(operand.dtype) or is_int(operand.dtype),
                   f"{label}: arithmetic on non-scalar operand", errors)


def verify_module(module: Module, raise_on_error: bool = True) -> List[str]:
    """Verify every function in ``module``.

    Parameters
    ----------
    raise_on_error:
        When true (default) a :class:`VerificationError` is raised listing all
        violations; otherwise the list is returned.
    """
    errors: List[str] = []
    seen_names = set()
    for function in module.functions:
        _check(function.name not in seen_names,
               f"duplicate function {function.name}", errors)
        seen_names.add(function.name)
        errors.extend(verify_function(function))
    for inst in module.instructions():
        if inst.is_call:
            callee = inst.metadata.get("callee")
            if callee is not None and callee.startswith("__repro"):
                _check(callee in {f.name for f in module.functions},
                       f"call to unknown internal function {callee}", errors)
    if errors and raise_on_error:
        raise VerificationError("; ".join(errors))
    return errors
