"""Textual (LLVM-flavoured) printer for the miniature IR.

The printed form is for debugging, documentation and golden tests; it is not
re-parsed by the pipeline.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import Module


def print_instruction(inst: Instruction) -> str:
    """Render one instruction as a single line of LLVM-like text."""
    ops = ", ".join(f"{o.dtype} {o.short()}" for o in inst.operands)
    if inst.opcode == Opcode.BR:
        return f"br label %{inst.metadata['target'].label}"
    if inst.opcode == Opcode.CONDBR:
        cond = inst.operands[0].short()
        return (f"br i1 {cond}, label %{inst.metadata['if_true'].label}, "
                f"label %{inst.metadata['if_false'].label}")
    if inst.opcode == Opcode.RET:
        if inst.operands:
            return f"ret {inst.operands[0].dtype} {inst.operands[0].short()}"
        return "ret void"
    if inst.opcode == Opcode.PHI:
        incoming = inst.metadata.get("incoming", [])
        pairs = ", ".join(
            f"[ {val.short()}, %{blk.label} ]"
            for val, blk in zip(inst.operands, incoming)
        )
        return f"{inst.short()} = phi {inst.dtype} {pairs}"
    if inst.opcode in (Opcode.ICMP, Opcode.FCMP):
        pred = inst.metadata.get("predicate", "?")
        return f"{inst.short()} = {inst.opcode} {pred} {ops}"
    if inst.opcode in (Opcode.CALL, Opcode.OMP_FORK):
        callee = inst.metadata.get("callee", "?")
        prefix = f"{inst.short()} = " if inst.has_result else ""
        return f"{prefix}{inst.opcode} {inst.dtype} @{callee}({ops})"
    if inst.has_result:
        return f"{inst.short()} = {inst.opcode} {ops}"
    return f"{inst.opcode} {ops}"


def print_function(function: Function) -> str:
    """Render a function definition or declaration."""
    args = ", ".join(f"{a.dtype} %{a.name}" for a in function.args)
    header = f"{function.return_type} @{function.name}({args})"
    if function.is_declaration:
        return f"declare {header}"
    lines: List[str] = [f"define {header} {{"]
    for block in function.blocks:
        lines.append(f"{block.label}:")
        for inst in block.instructions:
            lines.append(f"  {print_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render a whole module."""
    lines: List[str] = [f"; ModuleID = '{module.name}'"]
    for gv in module.globals:
        lines.append(f"@{gv.name} = global {gv.dtype} x {gv.num_elements}")
    for function in module.functions:
        lines.append("")
        lines.append(print_function(function))
    return "\n".join(lines) + "\n"
