"""Functions: argument lists plus an ordered list of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.ir.block import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.types import DataType
from repro.ir.values import Argument


class Function:
    """A function definition (or declaration when it has no blocks).

    Attributes
    ----------
    metadata:
        Free-form annotations.  The frontend stores OpenMP/OpenCL region
        information here (e.g. ``{"omp.parallel_for": True}``) which the
        graph builder turns into call-flow edges and the simulator uses to
        locate the parallel region.
    """

    __slots__ = ("name", "args", "return_type", "blocks", "module", "metadata")

    def __init__(
        self,
        name: str,
        args: Sequence[Argument] = (),
        return_type: DataType = DataType.VOID,
        metadata: Optional[dict] = None,
    ):
        self.name = name
        self.args: List[Argument] = list(args)
        for i, arg in enumerate(self.args):
            arg.function = self
            arg.index = i
        self.return_type = return_type
        self.blocks: List[BasicBlock] = []
        self.module = None  # set by Module.add_function
        self.metadata = dict(metadata or {})

    # ------------------------------------------------------------------
    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def add_block(self, label: str) -> BasicBlock:
        block = BasicBlock(label=self._unique_label(label))
        block.function = self
        self.blocks.append(block)
        return block

    def _unique_label(self, label: str) -> str:
        existing = {b.label for b in self.blocks}
        if label not in existing:
            return label
        i = 1
        while f"{label}.{i}" in existing:
            i += 1
        return f"{label}.{i}"

    def get_block(self, label: str) -> BasicBlock:
        for block in self.blocks:
            if block.label == label:
                return block
        raise KeyError(label)

    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def num_instructions(self) -> int:
        return sum(len(b) for b in self.blocks)

    def block_index(self) -> Dict[str, BasicBlock]:
        return {b.label: b for b in self.blocks}

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} {self.name}({len(self.args)} args), {len(self.blocks)} blocks>"
