"""Basic blocks: maximal straight-line sequences of instructions."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.ir.instructions import Instruction, Opcode


class BasicBlock:
    """An ordered list of instructions ending in a single terminator."""

    __slots__ = ("label", "instructions", "function")

    def __init__(self, label: str):
        self.label = label
        self.instructions: List[Instruction] = []
        self.function = None  # set by Function.add_block

    # ------------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        """Append ``inst``; refuses to add instructions after a terminator."""
        if self.terminator is not None:
            raise ValueError(
                f"block {self.label!r} already has a terminator "
                f"({self.terminator.opcode}); cannot append {inst.opcode}"
            )
        inst.block = self
        self.instructions.append(inst)
        return inst

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors()

    def predecessors(self) -> List["BasicBlock"]:
        if self.function is None:
            return []
        preds = []
        for block in self.function.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def phis(self) -> List[Instruction]:
        return [i for i in self.instructions if i.opcode == Opcode.PHI]

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if i.opcode != Opcode.PHI]

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self)} insts)>"
