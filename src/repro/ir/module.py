"""Modules: the top-level IR container (functions + global variables)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.types import DataType
from repro.ir.values import GlobalVariable


class Module:
    """A translation unit: global arrays plus a set of functions.

    The frontend produces one module per kernel/code region; ``metadata``
    carries the originating :class:`repro.frontend.spec.KernelSpec` name and
    the programming model (``"openmp"`` or ``"opencl"``).
    """

    __slots__ = ("name", "functions", "globals", "metadata")

    def __init__(self, name: str, metadata: Optional[dict] = None):
        self.name = name
        self.functions: List[Function] = []
        self.globals: List[GlobalVariable] = []
        self.metadata = dict(metadata or {})

    # ------------------------------------------------------------------
    def add_function(self, function: Function) -> Function:
        if any(f.name == function.name for f in self.functions):
            raise ValueError(f"duplicate function name {function.name!r}")
        function.module = self
        self.functions.append(function)
        return function

    def add_global(
        self, name: str, dtype: DataType, num_elements: int = 1
    ) -> GlobalVariable:
        if any(g.name == name for g in self.globals):
            raise ValueError(f"duplicate global name {name!r}")
        gv = GlobalVariable(name, dtype, num_elements)
        self.globals.append(gv)
        return gv

    def get_function(self, name: str) -> Function:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)

    def get_global(self, name: str) -> GlobalVariable:
        for g in self.globals:
            if g.name == name:
                return g
        raise KeyError(name)

    # ------------------------------------------------------------------
    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions if not f.is_declaration]

    def instructions(self) -> Iterator[Instruction]:
        for f in self.functions:
            yield from f.instructions()

    def num_instructions(self) -> int:
        return sum(f.num_instructions() for f in self.functions)

    def function_index(self) -> Dict[str, Function]:
        return {f.name: f for f in self.functions}

    def __repr__(self) -> str:
        return (
            f"<Module {self.name!r}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals, {self.num_instructions()} insts>"
        )
