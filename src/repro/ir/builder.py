"""IRBuilder: convenience API for constructing SSA instructions.

Mirrors ``llvm::IRBuilder``: the builder is positioned at the end of a basic
block and every ``create_*`` method appends one instruction there, returning
the instruction (which is itself a :class:`Value` usable as an operand).
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.ir.block import BasicBlock
from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import DataType, is_float, is_pointer, pointee
from repro.ir.values import Constant, Value


class IRBuilder:
    """Appends instructions to a basic block with automatic SSA naming."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self._block = block
        self._name_counter = itertools.count()

    # ------------------------------------------------------------------
    # positioning
    # ------------------------------------------------------------------
    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise ValueError("builder is not positioned at a block")
        return self._block

    def position_at_end(self, block: BasicBlock) -> None:
        self._block = block

    def _fresh(self, hint: str) -> str:
        return f"{hint}{next(self._name_counter)}"

    def _emit(
        self,
        opcode: Opcode,
        dtype: DataType,
        operands: Sequence[Value] = (),
        name_hint: str = "t",
        metadata: Optional[dict] = None,
    ) -> Instruction:
        inst = Instruction(
            opcode,
            dtype,
            operands,
            name=self._fresh(name_hint) if dtype != DataType.VOID else opcode.value,
            metadata=metadata,
        )
        return self.block.append(inst)

    # ------------------------------------------------------------------
    # constants
    # ------------------------------------------------------------------
    @staticmethod
    def const_int(value: int, dtype: DataType = DataType.I64) -> Constant:
        return Constant(int(value), dtype)

    @staticmethod
    def const_float(value: float, dtype: DataType = DataType.F64) -> Constant:
        return Constant(float(value), dtype)

    # ------------------------------------------------------------------
    # arithmetic (dispatches on operand type)
    # ------------------------------------------------------------------
    def _binop(self, int_op: Opcode, float_op: Opcode, lhs: Value, rhs: Value,
               name: str) -> Instruction:
        if is_float(lhs.dtype) or is_float(rhs.dtype):
            dtype = lhs.dtype if is_float(lhs.dtype) else rhs.dtype
            return self._emit(float_op, dtype, [lhs, rhs], name)
        return self._emit(int_op, lhs.dtype, [lhs, rhs], name)

    def add(self, lhs: Value, rhs: Value, name: str = "add") -> Instruction:
        return self._binop(Opcode.ADD, Opcode.FADD, lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "sub") -> Instruction:
        return self._binop(Opcode.SUB, Opcode.FSUB, lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "mul") -> Instruction:
        return self._binop(Opcode.MUL, Opcode.FMUL, lhs, rhs, name)

    def div(self, lhs: Value, rhs: Value, name: str = "div") -> Instruction:
        return self._binop(Opcode.SDIV, Opcode.FDIV, lhs, rhs, name)

    def rem(self, lhs: Value, rhs: Value, name: str = "rem") -> Instruction:
        return self._emit(Opcode.SREM, lhs.dtype, [lhs, rhs], name)

    def fma(self, a: Value, b: Value, c: Value, name: str = "fma") -> Instruction:
        return self._emit(Opcode.FMA, a.dtype, [a, b, c], name)

    def neg(self, value: Value, name: str = "neg") -> Instruction:
        if is_float(value.dtype):
            return self._emit(Opcode.FNEG, value.dtype, [value], name)
        zero = self.const_int(0, value.dtype)
        return self._emit(Opcode.SUB, value.dtype, [zero, value], name)

    def binary(self, opcode: Opcode, lhs: Value, rhs: Value,
               name: str = "bin") -> Instruction:
        return self._emit(opcode, lhs.dtype, [lhs, rhs], name)

    def intrinsic(self, opcode: Opcode, operands: Sequence[Value],
                  dtype: Optional[DataType] = None,
                  name: str = "call") -> Instruction:
        dtype = dtype or operands[0].dtype
        return self._emit(opcode, dtype, operands, name)

    # ------------------------------------------------------------------
    # comparisons / select
    # ------------------------------------------------------------------
    def icmp(self, predicate: str, lhs: Value, rhs: Value,
             name: str = "cmp") -> Instruction:
        return self._emit(Opcode.ICMP, DataType.I1, [lhs, rhs], name,
                          metadata={"predicate": predicate})

    def fcmp(self, predicate: str, lhs: Value, rhs: Value,
             name: str = "fcmp") -> Instruction:
        return self._emit(Opcode.FCMP, DataType.I1, [lhs, rhs], name,
                          metadata={"predicate": predicate})

    def select(self, cond: Value, if_true: Value, if_false: Value,
               name: str = "sel") -> Instruction:
        return self._emit(Opcode.SELECT, if_true.dtype, [cond, if_true, if_false],
                          name)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def alloca(self, dtype: DataType, name: str = "stack") -> Instruction:
        from repro.ir.types import pointer_to

        return self._emit(Opcode.ALLOCA, pointer_to(dtype), [], name)

    def gep(self, base: Value, index: Value, name: str = "ptr") -> Instruction:
        if not is_pointer(base.dtype):
            raise ValueError(f"gep base must be a pointer, got {base.dtype}")
        return self._emit(Opcode.GEP, base.dtype, [base, index], name)

    def load(self, pointer: Value, name: str = "val") -> Instruction:
        if not is_pointer(pointer.dtype):
            raise ValueError(f"load pointer operand required, got {pointer.dtype}")
        return self._emit(Opcode.LOAD, pointee(pointer.dtype), [pointer], name)

    def store(self, value: Value, pointer: Value) -> Instruction:
        if not is_pointer(pointer.dtype):
            raise ValueError(f"store pointer operand required, got {pointer.dtype}")
        return self._emit(Opcode.STORE, DataType.VOID, [value, pointer])

    def atomic_add(self, pointer: Value, value: Value,
                   name: str = "old") -> Instruction:
        return self._emit(Opcode.ATOMIC_ADD, pointee(pointer.dtype),
                          [pointer, value], name)

    # ------------------------------------------------------------------
    # casts
    # ------------------------------------------------------------------
    def cast(self, opcode: Opcode, value: Value, dtype: DataType,
             name: str = "cast") -> Instruction:
        return self._emit(opcode, dtype, [value], name)

    def sext(self, value: Value, dtype: DataType = DataType.I64) -> Instruction:
        return self.cast(Opcode.SEXT, value, dtype, "sext")

    def sitofp(self, value: Value, dtype: DataType = DataType.F64) -> Instruction:
        return self.cast(Opcode.SITOFP, value, dtype, "conv")

    def fptosi(self, value: Value, dtype: DataType = DataType.I64) -> Instruction:
        return self.cast(Opcode.FPTOSI, value, dtype, "conv")

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    def br(self, target: BasicBlock) -> Instruction:
        return self._emit(Opcode.BR, DataType.VOID, [], metadata={"target": target})

    def cond_br(self, cond: Value, if_true: BasicBlock,
                if_false: BasicBlock) -> Instruction:
        return self._emit(Opcode.CONDBR, DataType.VOID, [cond],
                          metadata={"if_true": if_true, "if_false": if_false})

    def ret(self, value: Optional[Value] = None) -> Instruction:
        operands = [value] if value is not None else []
        return self._emit(Opcode.RET, DataType.VOID, operands)

    def phi(self, dtype: DataType, name: str = "phi") -> Instruction:
        return self._emit(Opcode.PHI, dtype, [], name, metadata={"incoming": []})

    @staticmethod
    def add_incoming(phi: Instruction, value: Value, block: BasicBlock) -> None:
        if phi.opcode != Opcode.PHI:
            raise ValueError("add_incoming requires a phi instruction")
        phi.operands.append(value)
        phi.metadata["incoming"].append(block)

    # ------------------------------------------------------------------
    # calls / parallel runtime
    # ------------------------------------------------------------------
    def call(self, callee_name: str, args: Sequence[Value],
             dtype: DataType = DataType.VOID, name: str = "ret") -> Instruction:
        return self._emit(Opcode.CALL, dtype, list(args),
                          name if dtype != DataType.VOID else "call",
                          metadata={"callee": callee_name})

    def omp_fork(self, outlined_name: str, args: Sequence[Value]) -> Instruction:
        return self._emit(Opcode.OMP_FORK, DataType.VOID, list(args),
                          metadata={"callee": outlined_name})

    def omp_barrier(self) -> Instruction:
        return self._emit(Opcode.OMP_BARRIER, DataType.VOID, [])

    def get_global_id(self, dim: int = 0, name: str = "gid") -> Instruction:
        return self._emit(Opcode.GET_GLOBAL_ID, DataType.I64,
                          [self.const_int(dim, DataType.I32)], name)

    def get_local_id(self, dim: int = 0, name: str = "lid") -> Instruction:
        return self._emit(Opcode.GET_LOCAL_ID, DataType.I64,
                          [self.const_int(dim, DataType.I32)], name)
