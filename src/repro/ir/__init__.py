"""Miniature LLVM-like SSA intermediate representation.

This package is the substrate that replaces Clang/LLVM in the reproduction.
It provides typed values, SSA instructions grouped into basic blocks and
functions, an :class:`IRBuilder` for construction, a verifier, a textual
printer and control-flow analyses.  The downstream code representations
(ProGraML-style graphs in :mod:`repro.graphs` and IR2Vec-style vectors in
:mod:`repro.embeddings`) consume only this IR.
"""

from repro.ir.types import DataType, is_float, is_int, is_pointer
from repro.ir.values import Argument, Constant, GlobalVariable, Value
from repro.ir.instructions import (
    CALL_OPCODES,
    COMMUTATIVE_OPCODES,
    CONTROL_OPCODES,
    MEMORY_OPCODES,
    Instruction,
    Opcode,
    TERMINATOR_OPCODES,
)
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.verifier import VerificationError, verify_function, verify_module
from repro.ir.printer import print_function, print_instruction, print_module
from repro.ir.analysis import (
    CFG,
    compute_dominators,
    instruction_histogram,
    module_statistics,
    natural_loops,
    reachable_blocks,
)

__all__ = [
    "DataType",
    "is_float",
    "is_int",
    "is_pointer",
    "Value",
    "Constant",
    "Argument",
    "GlobalVariable",
    "Opcode",
    "Instruction",
    "TERMINATOR_OPCODES",
    "MEMORY_OPCODES",
    "CONTROL_OPCODES",
    "CALL_OPCODES",
    "COMMUTATIVE_OPCODES",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "VerificationError",
    "verify_module",
    "verify_function",
    "print_module",
    "print_function",
    "print_instruction",
    "CFG",
    "compute_dominators",
    "natural_loops",
    "reachable_blocks",
    "module_statistics",
    "instruction_histogram",
]
