"""Control-flow and statistical analyses over the miniature IR.

These analyses feed three consumers:

* the ProGraML-style graph builder (control-flow successor relation),
* the IR2Vec-style encoder (instruction/flow statistics),
* the performance simulator (loop nesting depth, instruction mix).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.module import Module


class CFG:
    """Explicit control-flow graph of a function (blocks as nodes)."""

    def __init__(self, function: Function):
        self.function = function
        self.successors: Dict[BasicBlock, List[BasicBlock]] = {}
        self.predecessors: Dict[BasicBlock, List[BasicBlock]] = {
            b: [] for b in function.blocks
        }
        for block in function.blocks:
            succs = block.successors()
            self.successors[block] = succs
            for s in succs:
                self.predecessors.setdefault(s, []).append(block)

    @property
    def entry(self) -> BasicBlock:
        return self.function.entry_block

    def edges(self) -> List[Tuple[BasicBlock, BasicBlock]]:
        return [(src, dst) for src, dsts in self.successors.items() for dst in dsts]


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    if function.is_declaration:
        return set()
    seen: Set[BasicBlock] = set()
    stack = [function.entry_block]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(block.successors())
    return seen


def compute_dominators(function: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Classic iterative dominator computation.

    Returns a mapping ``block -> set of blocks dominating it`` (including the
    block itself).  Unreachable blocks dominate themselves only.
    """
    if function.is_declaration:
        return {}
    cfg = CFG(function)
    blocks = [b for b in function.blocks if b in reachable_blocks(function)]
    entry = function.entry_block
    dom: Dict[BasicBlock, Set[BasicBlock]] = {b: set(blocks) for b in blocks}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is entry:
                continue
            preds = [p for p in cfg.predecessors.get(block, []) if p in dom]
            if not preds:
                new = {block}
            else:
                new = set(blocks)
                for p in preds:
                    new &= dom[p]
                new |= {block}
            if new != dom[block]:
                dom[block] = new
                changed = True
    for block in function.blocks:
        if block not in dom:
            dom[block] = {block}
    return dom


def natural_loops(function: Function) -> List[Dict[str, object]]:
    """Detect natural loops via back edges (``latch -> header`` with header
    dominating latch).  Returns a list of ``{"header", "latch", "blocks"}``.
    """
    if function.is_declaration:
        return []
    dom = compute_dominators(function)
    cfg = CFG(function)
    loops: List[Dict[str, object]] = []
    for latch, succs in cfg.successors.items():
        for header in succs:
            if header in dom.get(latch, set()):
                body: Set[BasicBlock] = {header, latch}
                stack = [latch]
                while stack:
                    block = stack.pop()
                    if block is header:
                        continue
                    for pred in cfg.predecessors.get(block, []):
                        if pred not in body:
                            body.add(pred)
                            stack.append(pred)
                loops.append({"header": header, "latch": latch, "blocks": body})
    return loops


def loop_nest_depth(function: Function) -> int:
    """Maximum loop nesting depth (0 when the function has no loops)."""
    loops = natural_loops(function)
    if not loops:
        return 0
    depth = 0
    for loop in loops:
        nested = sum(
            1
            for other in loops
            if other is not loop and loop["header"] in other["blocks"]
        )
        depth = max(depth, nested + 1)
    return depth


def instruction_histogram(module: Module) -> Counter:
    """Opcode -> count over all instructions in the module."""
    hist: Counter = Counter()
    for inst in module.instructions():
        hist[inst.opcode] += 1
    return hist


def module_statistics(module: Module) -> Dict[str, float]:
    """Summary statistics used by tests and by the feature pipelines."""
    hist = instruction_histogram(module)
    total = sum(hist.values())
    n_mem = sum(c for op, c in hist.items()
                if op in (Opcode.LOAD, Opcode.STORE, Opcode.ATOMIC_ADD))
    n_float = sum(c for op, c in hist.items()
                  if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
                            Opcode.FMA, Opcode.SQRT, Opcode.EXP, Opcode.LOG,
                            Opcode.POW, Opcode.SIN, Opcode.COS))
    n_branch = sum(c for op, c in hist.items()
                   if op in (Opcode.BR, Opcode.CONDBR, Opcode.SWITCH))
    n_call = sum(c for op, c in hist.items()
                 if op in (Opcode.CALL, Opcode.OMP_FORK))
    max_depth = max((loop_nest_depth(f) for f in module.defined_functions()),
                    default=0)
    return {
        "num_instructions": float(total),
        "num_functions": float(len(module.functions)),
        "num_blocks": float(sum(len(f.blocks) for f in module.functions)),
        "num_memory_ops": float(n_mem),
        "num_float_ops": float(n_float),
        "num_branches": float(n_branch),
        "num_calls": float(n_call),
        "max_loop_depth": float(max_depth),
        "mem_ratio": n_mem / total if total else 0.0,
        "float_ratio": n_float / total if total else 0.0,
        "branch_ratio": n_branch / total if total else 0.0,
    }
