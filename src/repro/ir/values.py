"""Value hierarchy of the miniature IR.

Every operand of an instruction is a :class:`Value`.  Concrete values are
constants, function arguments, global variables (arrays) and instructions
(defined in :mod:`repro.ir.instructions`).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.ir.types import DataType, is_float, is_int, is_pointer

_value_counter = itertools.count()


class Value:
    """Base class for everything that can appear as an instruction operand."""

    __slots__ = ("name", "dtype", "uid")

    def __init__(self, name: str, dtype: DataType):
        self.name = name
        self.dtype = dtype
        self.uid = next(_value_counter)

    # Identity semantics: values are SSA definitions, two values are the same
    # operand only if they are the same object.
    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return self is other

    def short(self) -> str:
        """Short printable reference (``%name`` / literal / ``@name``)."""
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()}: {self.dtype}>"


class Constant(Value):
    """An immediate constant of integer or floating-point type."""

    __slots__ = ("value",)

    def __init__(self, value: float, dtype: DataType = DataType.I64):
        if not (is_int(dtype) or is_float(dtype)):
            raise ValueError(f"constants must be scalar, got {dtype}")
        super().__init__(name=str(value), dtype=dtype)
        self.value = float(value) if is_float(dtype) else int(value)

    def short(self) -> str:
        if is_float(self.dtype):
            return f"{self.value:.6e}"
        return str(int(self.value))


class Argument(Value):
    """A formal parameter of a :class:`repro.ir.function.Function`."""

    __slots__ = ("function", "index")

    def __init__(self, name: str, dtype: DataType, index: int = 0):
        super().__init__(name, dtype)
        self.function = None  # set by Function
        self.index = index


class GlobalVariable(Value):
    """A module-level array or scalar (always of pointer type).

    ``num_elements`` is symbolic array length metadata used by the frontend
    and the performance simulator (working-set estimation); it does not affect
    the IR semantics.
    """

    __slots__ = ("num_elements", "initializer")

    def __init__(
        self,
        name: str,
        dtype: DataType,
        num_elements: int = 1,
        initializer: Optional[float] = None,
    ):
        if not is_pointer(dtype):
            raise ValueError("global variables must have pointer type")
        super().__init__(name, dtype)
        self.num_elements = int(num_elements)
        self.initializer = initializer

    def short(self) -> str:
        return f"@{self.name}"
