"""Scalar and pointer types for the miniature IR.

The type system is intentionally small: it covers the types that appear in
the OpenMP / OpenCL loop kernels used by the paper (integer index arithmetic,
single/double precision floating point, pointers to arrays and ``void`` for
functions without a return value).
"""

from __future__ import annotations

import enum


class DataType(str, enum.Enum):
    """Value types understood by the IR.

    ``PTR_*`` types are typed pointers; :func:`pointee` recovers the element
    type which is what ``load``/``store`` instructions produce/consume.
    """

    VOID = "void"
    I1 = "i1"
    I32 = "i32"
    I64 = "i64"
    F32 = "float"
    F64 = "double"
    PTR_I32 = "i32*"
    PTR_I64 = "i64*"
    PTR_F32 = "float*"
    PTR_F64 = "double*"
    LABEL = "label"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_INT_TYPES = {DataType.I1, DataType.I32, DataType.I64}
_FLOAT_TYPES = {DataType.F32, DataType.F64}
_POINTER_TYPES = {
    DataType.PTR_I32,
    DataType.PTR_I64,
    DataType.PTR_F32,
    DataType.PTR_F64,
}

_POINTEE = {
    DataType.PTR_I32: DataType.I32,
    DataType.PTR_I64: DataType.I64,
    DataType.PTR_F32: DataType.F32,
    DataType.PTR_F64: DataType.F64,
}

_POINTER_TO = {v: k for k, v in _POINTEE.items()}

_SIZEOF = {
    DataType.I1: 1,
    DataType.I32: 4,
    DataType.I64: 8,
    DataType.F32: 4,
    DataType.F64: 8,
    DataType.PTR_I32: 8,
    DataType.PTR_I64: 8,
    DataType.PTR_F32: 8,
    DataType.PTR_F64: 8,
}


def is_int(dtype: DataType) -> bool:
    """Return ``True`` for integer scalar types (including ``i1``)."""
    return dtype in _INT_TYPES


def is_float(dtype: DataType) -> bool:
    """Return ``True`` for floating-point scalar types."""
    return dtype in _FLOAT_TYPES


def is_pointer(dtype: DataType) -> bool:
    """Return ``True`` for pointer types."""
    return dtype in _POINTER_TYPES


def is_scalar(dtype: DataType) -> bool:
    """Return ``True`` for non-pointer, non-void, non-label types."""
    return is_int(dtype) or is_float(dtype)


def pointee(dtype: DataType) -> DataType:
    """Element type of a pointer type.

    Raises
    ------
    ValueError
        If ``dtype`` is not a pointer type.
    """
    try:
        return _POINTEE[dtype]
    except KeyError as exc:
        raise ValueError(f"{dtype} is not a pointer type") from exc


def pointer_to(dtype: DataType) -> DataType:
    """Pointer type whose pointee is ``dtype``."""
    try:
        return _POINTER_TO[dtype]
    except KeyError as exc:
        raise ValueError(f"no pointer type for {dtype}") from exc


def sizeof(dtype: DataType) -> int:
    """Size in bytes of a value of type ``dtype``."""
    try:
        return _SIZEOF[dtype]
    except KeyError as exc:
        raise ValueError(f"{dtype} has no size") from exc
