"""Instruction set of the miniature IR.

The opcode set mirrors the subset of LLVM IR that loop-nest kernels compile
to: integer/floating arithmetic, comparisons, memory access through
``getelementptr``/``load``/``store``, control flow (``br``/``condbr``/``ret``),
``phi`` nodes, casts, calls and a handful of math intrinsics.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Sequence

from repro.ir.types import DataType
from repro.ir.values import Value


class Opcode(str, enum.Enum):
    """Operation codes.  String-valued so histograms/embeddings key on text."""

    # integer arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    SREM = "srem"
    SHL = "shl"
    LSHR = "lshr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    # floating point arithmetic
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FMA = "fma"
    # comparisons
    ICMP = "icmp"
    FCMP = "fcmp"
    # memory
    ALLOCA = "alloca"
    LOAD = "load"
    STORE = "store"
    GEP = "getelementptr"
    # control flow
    BR = "br"
    CONDBR = "condbr"
    RET = "ret"
    SWITCH = "switch"
    # ssa
    PHI = "phi"
    SELECT = "select"
    # casts
    SEXT = "sext"
    ZEXT = "zext"
    TRUNC = "trunc"
    SITOFP = "sitofp"
    FPTOSI = "fptosi"
    FPEXT = "fpext"
    FPTRUNC = "fptrunc"
    BITCAST = "bitcast"
    # calls and intrinsics
    CALL = "call"
    SQRT = "sqrt"
    EXP = "exp"
    LOG = "log"
    SIN = "sin"
    COS = "cos"
    POW = "pow"
    FABS = "fabs"
    MIN = "min"
    MAX = "max"
    # parallel runtime markers (OpenMP outlining / OpenCL work-item queries)
    OMP_FORK = "omp.fork"
    OMP_BARRIER = "omp.barrier"
    GET_GLOBAL_ID = "get_global_id"
    GET_LOCAL_ID = "get_local_id"
    ATOMIC_ADD = "atomic.add"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


TERMINATOR_OPCODES = frozenset({Opcode.BR, Opcode.CONDBR, Opcode.RET, Opcode.SWITCH})
MEMORY_OPCODES = frozenset(
    {Opcode.LOAD, Opcode.STORE, Opcode.ALLOCA, Opcode.GEP, Opcode.ATOMIC_ADD}
)
CONTROL_OPCODES = frozenset({Opcode.BR, Opcode.CONDBR, Opcode.SWITCH, Opcode.PHI})
CALL_OPCODES = frozenset({Opcode.CALL, Opcode.OMP_FORK})
COMMUTATIVE_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.MUL,
        Opcode.FADD,
        Opcode.FMUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.MIN,
        Opcode.MAX,
    }
)
FLOAT_ARITH_OPCODES = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG, Opcode.FMA}
)
INT_ARITH_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.SDIV,
        Opcode.SREM,
        Opcode.SHL,
        Opcode.LSHR,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
    }
)
MATH_INTRINSICS = frozenset(
    {
        Opcode.SQRT,
        Opcode.EXP,
        Opcode.LOG,
        Opcode.SIN,
        Opcode.COS,
        Opcode.POW,
        Opcode.FABS,
        Opcode.MIN,
        Opcode.MAX,
    }
)


class Instruction(Value):
    """A single SSA instruction.

    Parameters
    ----------
    opcode:
        The :class:`Opcode`.
    dtype:
        Result type (``VOID`` for instructions without a result such as
        ``store``/``br``).
    operands:
        Operand values in positional order.
    name:
        SSA result name.  Auto-named by the builder when omitted.
    metadata:
        Free-form dictionary; used for e.g. ``icmp`` predicates, callee names,
        phi incoming-block labels and OpenMP annotations.
    """

    __slots__ = ("opcode", "operands", "block", "metadata")

    def __init__(
        self,
        opcode: Opcode,
        dtype: DataType,
        operands: Sequence[Value] = (),
        name: str = "",
        metadata: Optional[dict] = None,
    ):
        super().__init__(name=name or opcode.value, dtype=dtype)
        self.opcode = opcode
        self.operands: List[Value] = list(operands)
        self.block = None  # set when appended to a BasicBlock
        self.metadata = dict(metadata or {})

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPCODES

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    @property
    def is_float_arith(self) -> bool:
        return self.opcode in FLOAT_ARITH_OPCODES or self.opcode in MATH_INTRINSICS

    @property
    def is_int_arith(self) -> bool:
        return self.opcode in INT_ARITH_OPCODES

    @property
    def is_call(self) -> bool:
        return self.opcode in CALL_OPCODES

    @property
    def has_result(self) -> bool:
        return self.dtype != DataType.VOID

    # ------------------------------------------------------------------
    # operand utilities
    # ------------------------------------------------------------------
    def operand_values(self) -> Iterable[Value]:
        return iter(self.operands)

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` with ``new``; return count."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def successors(self) -> List["object"]:
        """Successor basic blocks encoded in the terminator's metadata."""
        if self.opcode == Opcode.BR:
            return [self.metadata["target"]]
        if self.opcode == Opcode.CONDBR:
            return [self.metadata["if_true"], self.metadata["if_false"]]
        if self.opcode == Opcode.SWITCH:
            return list(self.metadata.get("targets", []))
        return []

    def __repr__(self) -> str:
        ops = ", ".join(op.short() for op in self.operands)
        if self.has_result:
            return f"<{self.short()} = {self.opcode} {ops}>"
        return f"<{self.opcode} {ops}>"
