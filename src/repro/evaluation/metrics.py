"""Speedup metrics used throughout the evaluation (§4.1.3)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (ignores non-positive values, which would be invalid
    speedups)."""
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[arr > 0]
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))


def speedups_from_times(reference: Sequence[float],
                        achieved: Sequence[float]) -> np.ndarray:
    """Element-wise ``reference / achieved`` (the paper's speedup definition:
    runtime_default / runtime_new)."""
    reference = np.asarray(reference, dtype=np.float64)
    achieved = np.asarray(achieved, dtype=np.float64)
    if reference.shape != achieved.shape:
        raise ValueError("shape mismatch between reference and achieved times")
    return reference / np.maximum(achieved, 1e-15)


def geomean_speedup(reference: Sequence[float],
                    achieved: Sequence[float]) -> float:
    """Geometric-mean speedup of ``achieved`` times over ``reference`` times."""
    return geometric_mean(speedups_from_times(reference, achieved))


def normalized_speedup(tuner_speedup: float, oracle_speedup: float) -> float:
    """Speedup normalised by the oracle speedup (the y-axis of Figs. 4, 6, 7)."""
    if oracle_speedup <= 0:
        return 0.0
    return float(tuner_speedup / oracle_speedup)
