"""Shared machinery of the experiment runners.

The OpenMP experiments all follow the same pattern: build a dataset on a
micro-architecture, split it, train DL tuners (MGA + unimodal baselines) on
the training part, let the search/Bayesian tuners explore the configuration
space of each validation sample within an evaluation budget, and report
geometric-mean speedups over the default configuration, normalised by the
oracle speedup.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.features import StaticFeatureExtractor
from repro.core.mga import ModalityConfig
from repro.core.tuner import MGATuner
from repro.datasets.openmp import (
    OpenMPDatasetBuilder,
    OpenMPTuningDataset,
    default_input_targets,
)
from repro.evaluation.metrics import geometric_mean
from repro.frontend.spec import KernelSpec
from repro.kernels import registry
from repro.simulator.microarch import MicroArch
from repro.tuners import (
    BLISSTuner,
    BlackBoxTuner,
    OpenTunerLike,
    SearchSpace,
    YtoptTuner,
)

#: canonical approach names used across figures
DL_APPROACHES: Dict[str, ModalityConfig] = {
    "MGA": ModalityConfig.mga(),
    "IR2Vec": ModalityConfig.ir2vec(),
    "PROGRAML": ModalityConfig.programl(),
}

DL_STATIC_APPROACHES: Dict[str, ModalityConfig] = {
    "MGA-Static": ModalityConfig.mga_static(),
    "IR2Vec-Static": ModalityConfig.ir2vec_static(),
    "PROGRAML-Static": ModalityConfig.programl_static(),
    "Dynamic Only": ModalityConfig.dynamic_only(),
}


def select_openmp_kernels(max_kernels: Optional[int] = None,
                          suites: Optional[Sequence[str]] = None
                          ) -> List[KernelSpec]:
    """Kernel selection used by the §4.1 experiments (45 loops in the paper)."""
    specs = registry.openmp_kernels(list(suites) if suites else None)
    if max_kernels is not None:
        specs = specs[:max_kernels]
    return specs


def build_openmp_dataset(arch: MicroArch, space: SearchSpace,
                         specs: Sequence[KernelSpec],
                         num_inputs: int = 10,
                         extractor: Optional[StaticFeatureExtractor] = None,
                         seed: int = 0) -> OpenMPTuningDataset:
    """Build the (loop × input × configuration) dataset for one experiment."""
    builder = OpenMPDatasetBuilder(arch, list(space), extractor=extractor,
                                   seed=seed)
    targets = default_input_targets(num=num_inputs)
    return builder.build(list(specs), targets)


# ----------------------------------------------------------------------
# per-sample speedups of the different approaches
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ApproachResult:
    """Geomean speedup over the default config, plus per-sample speedups."""

    name: str
    speedups: np.ndarray

    @property
    def geomean(self) -> float:
        return geometric_mean(self.speedups)


def dl_tuner_speedups(dataset: OpenMPTuningDataset, train_idx: Sequence[int],
                      val_idx: Sequence[int], modalities: ModalityConfig,
                      epochs: int = 40, seed: int = 0,
                      **model_kwargs) -> np.ndarray:
    """Train one DL tuner and return its per-sample speedups on ``val_idx``."""
    tuner = MGATuner(dataset.arch, dataset.configs, modalities=modalities,
                     seed=seed, **model_kwargs)
    tuner.fit(dataset, train_indices=train_idx, epochs=epochs)
    predictions = tuner.predict_indices(dataset, val_idx)
    return np.array([dataset.samples[i].speedup_of(int(p))
                     for i, p in zip(val_idx, predictions)])


def kernel_groups(dataset: OpenMPTuningDataset,
                  val_idx: Sequence[int]) -> List[tuple]:
    """``(kernel_uid, sample indices)`` groups of a validation set, sorted."""
    per_kernel: Dict[str, List[int]] = {}
    for i in val_idx:
        per_kernel.setdefault(dataset.samples[i].kernel_uid, []).append(i)
    return sorted(per_kernel.items())


def reference_times(dataset: OpenMPTuningDataset,
                    indices: Sequence[int]) -> np.ndarray:
    """``[refs, configs]`` time grid over a loop's small/median/large inputs.

    The tuner optimises the loop's overall runtime across representative
    input sizes, as a user-driven tuning session would; the resulting single
    configuration is then applied everywhere.
    """
    indices_sorted = sorted(indices, key=lambda i: dataset.samples[i].scale)
    ref_ids = sorted({indices_sorted[0], indices_sorted[len(indices_sorted) // 2],
                      indices_sorted[-1]})
    return np.stack([dataset.samples[i].times for i in ref_ids])


def assign_group_speedups(dataset: OpenMPTuningDataset,
                          val_idx: Sequence[int], groups: Sequence[tuple],
                          chosen: Sequence[int]) -> np.ndarray:
    """Per-sample speedups when each kernel group uses its chosen config."""
    speedups = np.zeros(len(val_idx))
    position = {i: pos for pos, i in enumerate(val_idx)}
    for (kernel, indices), config_index in zip(groups, chosen):
        for i in indices:
            speedups[position[i]] = dataset.samples[i].speedup_of(
                int(config_index))
    return speedups


def search_tuner_speedups(dataset: OpenMPTuningDataset, val_idx: Sequence[int],
                          tuner_factory, budget: int = 10,
                          seed: int = 0) -> np.ndarray:
    """Run a black-box tuner per validation *loop* (lookup objective).

    Search tuners explore the space by actually executing the loop, so (as in
    the paper) they tune each loop once — on a reference input — and the
    configuration they settle on is then used for every input size of that
    loop.  The per-input DL tuners predict a configuration per (loop, input).

    Each per-loop session is driven through a ``batch_size=1``
    :class:`~repro.tuners.campaign.TuningCampaign` over a
    :class:`~repro.tuners.campaign.LookupObjectiveSpec`, which walks the
    space exactly like the serial ``tuner.tune`` loop this function used to
    hand-roll — same proposals, same history, same chosen configuration.
    """
    from repro.tuners.campaign import LookupObjectiveSpec, TuningCampaign

    space = SearchSpace(dataset.configs)
    groups = kernel_groups(dataset, val_idx)
    chosen: List[int] = []
    for j, (kernel, indices) in enumerate(groups):
        tuner: BlackBoxTuner = tuner_factory(budget=budget, seed=seed + j)
        campaign = TuningCampaign(
            tuner, space, LookupObjectiveSpec(reference_times(dataset, indices)),
            workers=1, batch_size=1)
        result = campaign.run()
        chosen.append(space.index_of(result.best_config))
    return assign_group_speedups(dataset, val_idx, groups, chosen)


def oracle_speedups(dataset: OpenMPTuningDataset,
                    val_idx: Sequence[int]) -> np.ndarray:
    return np.array([dataset.samples[i].oracle_speedup for i in val_idx])


def default_speedups(val_idx: Sequence[int]) -> np.ndarray:
    return np.ones(len(val_idx))


def evaluate_fold(dataset: OpenMPTuningDataset, train_idx: Sequence[int],
                  val_idx: Sequence[int],
                  include_search: bool = True,
                  include_dl: Sequence[str] = ("MGA", "IR2Vec", "PROGRAML"),
                  epochs: int = 40, budget: int = 10,
                  seed: int = 0) -> Dict[str, ApproachResult]:
    """Evaluate every approach on one train/validation split."""
    results: Dict[str, ApproachResult] = {}
    results["Default"] = ApproachResult("Default", default_speedups(val_idx))
    if include_search:
        for name, factory in (("ytopt", YtoptTuner), ("OpenTuner", OpenTunerLike),
                              ("BLISS", BLISSTuner)):
            sp = search_tuner_speedups(dataset, val_idx, factory, budget=budget,
                                       seed=seed)
            results[name] = ApproachResult(name, sp)
    for name in include_dl:
        modalities = {**DL_APPROACHES, **DL_STATIC_APPROACHES}[name]
        sp = dl_tuner_speedups(dataset, train_idx, val_idx, modalities,
                               epochs=epochs, seed=seed)
        results[name] = ApproachResult(name, sp)
    results["Oracle"] = ApproachResult("Oracle", oracle_speedups(dataset, val_idx))
    return results


def normalized_table(fold_results: Sequence[Dict[str, ApproachResult]]
                     ) -> Dict[str, List[float]]:
    """Per-fold normalised speedups (w.r.t. the oracle) for every approach."""
    table: Dict[str, List[float]] = {}
    for fold in fold_results:
        oracle = fold["Oracle"].geomean
        for name, res in fold.items():
            table.setdefault(name, []).append(
                res.geomean / oracle if oracle > 0 else 0.0)
    return table


def format_normalized_table(table: Dict[str, List[float]]) -> str:
    """Human-readable rows: one line per approach, one column per fold."""
    lines = []
    num_folds = max(len(v) for v in table.values())
    header = "approach".ljust(16) + "".join(f"fold{i+1:>8}" for i in range(num_folds)) \
        + "   geomean"
    lines.append(header)
    for name, values in table.items():
        overall = geometric_mean([v for v in values if v > 0])
        row = name.ljust(16) + "".join(f"{v:8.3f}" for v in values) \
            + f"   {overall:7.3f}"
        lines.append(row)
    return "\n".join(lines)
