"""Figure 7 + Table 2: the larger search space (threads × schedule × chunk).

Leave-one-application-out validation over PolyBench + Rodinia + LULESH on the
Skylake 10c/20t system with the Table-2 search space.  Expected shape: MGA
normalised speedups ≥0.95 for most applications and above ytopt / OpenTuner /
BLISS for most applications; ``trisolv`` remains the worst case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.mga import ModalityConfig
from repro.evaluation.experiments.common import (
    build_openmp_dataset,
    dl_tuner_speedups,
    oracle_speedups,
    search_tuner_speedups,
)
from repro.evaluation.metrics import geometric_mean
from repro.kernels import registry
from repro.simulator.microarch import SKYLAKE_4114, MicroArch
from repro.tuners import BLISSTuner, OpenTunerLike, YtoptTuner
from repro.tuners.space import full_search_space


def default_applications(max_apps: Optional[int] = None) -> List[str]:
    """PolyBench + Rodinia subset + LULESH (30 applications in the paper)."""
    poly = [f"polybench/{name}" for name in
            ("2mm", "lu", "syrk", "convolution-2d", "correlation", "fdtd-2d",
             "seidel-2d", "jacobi-2d", "trmm", "fdtd-apml", "gemm", "trisolv",
             "doitgen", "mvt", "gemver", "covariance", "gesummv", "symm",
             "gramschmidt", "bicg", "durbin", "syr2k", "cholesky", "adi",
             "atax")]
    rodinia = [f"rodinia/{name}" for name in
               ("backprop", "nn", "kmeans", "streamcluster")]
    apps = poly + rodinia + ["lulesh/lulesh"]
    return apps[:max_apps] if max_apps else apps


def run(arch: MicroArch = SKYLAKE_4114, max_apps: Optional[int] = None,
        num_inputs: int = 6, epochs: int = 20, budget: int = 10,
        include_search: bool = True, seed: int = 0,
        chunks: Sequence[int] = (1, 8, 32, 64, 128, 256, 512),
        threads: Sequence[int] = (1, 2, 4, 8, 12, 16, 20)) -> Dict[str, object]:
    space = full_search_space(threads=threads, chunks=chunks,
                              max_threads=arch.max_threads)
    specs = [registry.get_kernel(uid) for uid in default_applications(max_apps)]
    dataset = build_openmp_dataset(arch, space, specs, num_inputs=num_inputs,
                                   seed=seed)
    per_app: Dict[str, Dict[str, float]] = {}
    for kernel, train_idx, val_idx in dataset.leave_one_application_out():
        oracle = geometric_mean(oracle_speedups(dataset, val_idx))
        row: Dict[str, float] = {"Oracle": oracle}
        row["MGA"] = geometric_mean(dl_tuner_speedups(
            dataset, train_idx, val_idx, ModalityConfig.mga(), epochs=epochs,
            seed=seed))
        if include_search:
            for name, factory in (("ytopt", YtoptTuner),
                                  ("OpenTuner", OpenTunerLike),
                                  ("BLISS", BLISSTuner)):
                row[name] = geometric_mean(search_tuner_speedups(
                    dataset, val_idx, factory, budget=budget, seed=seed))
        per_app[kernel] = row

    mga_norm = [row["MGA"] / row["Oracle"] for row in per_app.values()
                if row["Oracle"] > 0]
    summary = {
        "geomean_mga": geometric_mean([row["MGA"] for row in per_app.values()]),
        "geomean_oracle": geometric_mean([row["Oracle"]
                                          for row in per_app.values()]),
        "apps_above_095": sum(1 for v in mga_norm if v >= 0.95),
        "apps_above_085": sum(1 for v in mga_norm if v >= 0.85),
        "num_apps": len(per_app),
        "search_space_size": len(space),
    }
    return {"per_app": per_app, "summary": summary, "dataset": dataset}


def format_result(result: Dict[str, object]) -> str:
    lines = ["Figure 7 / Table 2: larger search space "
             f"({result['summary']['search_space_size']} configurations), "
             "leave-one-application-out"]
    header = f"  {'application':<28}" + "".join(
        f"{name:>11}" for name in next(iter(result["per_app"].values())))
    lines.append(header)
    for app, row in result["per_app"].items():
        lines.append(f"  {app:<28}" + "".join(f"{v:11.2f}" for v in row.values()))
    s = result["summary"]
    lines.append(f"  geomean: MGA {s['geomean_mga']:.2f}x vs oracle "
                 f"{s['geomean_oracle']:.2f}x; "
                 f"{s['apps_above_095']}/{s['num_apps']} apps ≥0.95 normalised, "
                 f"{s['apps_above_085']}/{s['num_apps']} ≥0.85")
    return "\n".join(lines)
