"""Figure 7 + Table 2: the larger search space (threads × schedule × chunk).

Leave-one-application-out validation over PolyBench + Rodinia + LULESH on the
Skylake 10c/20t system with the Table-2 search space.  Expected shape: MGA
normalised speedups ≥0.95 for most applications and above ytopt / OpenTuner /
BLISS for most applications; ``trisolv`` remains the worst case.

Declared as the ``fig7`` experiment spec; ``run()`` is a legacy shim.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.evaluation.experiments.common import oracle_speedups
from repro.evaluation.metrics import geometric_mean
from repro.pipeline.registry import register_experiment
from repro.pipeline.runner import run_legacy
from repro.pipeline.spec import (
    BuildDataset,
    ExperimentSpec,
    Report,
    TrainModels,
    TuneCandidates,
    ref,
    stage_impl,
)
from repro.pipeline.stages import SEARCH_DISPLAY_ORDER, resolve_splits

_SPLIT = {"type": "loao"}


def default_applications(max_apps: Optional[int] = None) -> List[str]:
    """PolyBench + Rodinia subset + LULESH (30 applications in the paper)."""
    poly = [f"polybench/{name}" for name in
            ("2mm", "lu", "syrk", "convolution-2d", "correlation", "fdtd-2d",
             "seidel-2d", "jacobi-2d", "trmm", "fdtd-apml", "gemm", "trisolv",
             "doitgen", "mvt", "gemver", "covariance", "gesummv", "symm",
             "gramschmidt", "bicg", "durbin", "syr2k", "cholesky", "adi",
             "atax")]
    rodinia = [f"rodinia/{name}" for name in
               ("backprop", "nn", "kmeans", "streamcluster")]
    apps = poly + rodinia + ["lulesh/lulesh"]
    return apps[:max_apps] if max_apps else apps


@stage_impl("fig7.report")
def _report(ctx, inputs, *, split, include_search):
    dataset = inputs["dataset"]
    search = inputs["search"]["speedups"]
    dl = inputs["dl"]["speedups"]
    labels, splits = resolve_splits(dataset, split)
    per_app: Dict[str, Dict[str, float]] = {}
    for fold, (kernel, (_, val_idx)) in enumerate(zip(labels, splits)):
        oracle = geometric_mean(oracle_speedups(dataset, val_idx))
        row: Dict[str, float] = {"Oracle": oracle}
        row["MGA"] = geometric_mean(dl["MGA"][fold])
        if include_search:
            for name in SEARCH_DISPLAY_ORDER:
                row[name] = geometric_mean(search[name][fold])
        per_app[kernel] = row

    mga_norm = [row["MGA"] / row["Oracle"] for row in per_app.values()
                if row["Oracle"] > 0]
    summary = {
        "geomean_mga": geometric_mean([row["MGA"] for row in per_app.values()]),
        "geomean_oracle": geometric_mean([row["Oracle"]
                                          for row in per_app.values()]),
        "apps_above_095": sum(1 for v in mga_norm if v >= 0.95),
        "apps_above_085": sum(1 for v in mga_norm if v >= 0.85),
        "num_apps": len(per_app),
        "search_space_size": dataset.num_configs,
    }
    return {"per_app": per_app, "summary": summary, "dataset": dataset}


SPEC = ExperimentSpec(
    name="fig7",
    title="Larger search space, leave-one-application-out (Fig. 7 / Table 2)",
    description="MGA vs the search tuners over the Table-2 "
                "threads × schedule × chunk space on Skylake.",
    params={
        "arch": "skylake_4114",
        "max_apps": None,
        "num_inputs": 6,
        "epochs": 20,
        "budget": 10,
        "include_search": True,
        "seed": 0,
        "chunks": [1, 8, 32, 64, 128, 256, 512],
        "threads": [1, 2, 4, 8, 12, 16, 20],
    },
    stages=(
        BuildDataset(impl="openmp.dataset", name="dataset", params={
            "arch": ref("arch"),
            "space": {"type": "full", "threads": ref("threads"),
                      "chunks": ref("chunks")},
            "kernels": {"select": "applications", "max": ref("max_apps")},
            "targets": {"num": ref("num_inputs")},
            "seed": ref("seed"),
        }),
        TuneCandidates(impl="openmp.search_speedups", name="search",
                       inputs=("dataset",), params={
                           "split": _SPLIT,
                           "budget": ref("budget"),
                           "seed": ref("seed"),
                           "enabled": ref("include_search"),
                       }),
        TrainModels(impl="openmp.dl_speedups", name="dl",
                    inputs=("dataset",), params={
                        "split": _SPLIT,
                        "approaches": ["MGA"],
                        "epochs": ref("epochs"),
                        "seed": ref("seed"),
                    }),
        Report(impl="fig7.report", name="report",
               inputs=("dataset", "search", "dl"), params={
                   "split": _SPLIT,
                   "include_search": ref("include_search"),
               }),
    ),
    quick={"max_apps": 4, "num_inputs": 2, "epochs": 4, "budget": 4},
)


def run(**overrides) -> Dict[str, object]:
    """Legacy shim: run the ``fig7`` spec (accepts its parameters as kwargs)."""
    return run_legacy("fig7", overrides)


def format_result(result: Dict[str, object]) -> str:
    lines = ["Figure 7 / Table 2: larger search space "
             f"({result['summary']['search_space_size']} configurations), "
             "leave-one-application-out"]
    header = f"  {'application':<28}" + "".join(
        f"{name:>11}" for name in next(iter(result["per_app"].values())))
    lines.append(header)
    for app, row in result["per_app"].items():
        lines.append(f"  {app:<28}" + "".join(f"{v:11.2f}" for v in row.values()))
    s = result["summary"]
    lines.append(f"  geomean: MGA {s['geomean_mga']:.2f}x vs oracle "
                 f"{s['geomean_oracle']:.2f}x; "
                 f"{s['apps_above_095']}/{s['num_apps']} apps ≥0.95 normalised, "
                 f"{s['apps_above_085']}/{s['num_apps']} ≥0.85")
    return "\n".join(lines)


register_experiment(SPEC, format_result)
