"""Figure 1: motivation.

(a) execution time of the Rodinia ``kmeans`` kernel at 1..8 threads on the
8-core Comet Lake system; (b) distribution of the best thread count over all
loops and input sizes (≈64% of combinations need a non-default thread count
in the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.evaluation.experiments.common import build_openmp_dataset, select_openmp_kernels
from repro.frontend.analysis import analyze_spec
from repro.frontend.openmp import OMPConfig
from repro.kernels import registry
from repro.simulator.microarch import COMET_LAKE_8C, MicroArch
from repro.simulator.openmp import OpenMPSimulator
from repro.tuners.space import thread_search_space


def run_fig1a(arch: MicroArch = COMET_LAKE_8C, scale: float = 2.0,
              max_threads: Optional[int] = None) -> Dict[int, float]:
    """Execution time of kmeans per thread count."""
    spec = registry.get_kernel("rodinia/kmeans")
    summary = analyze_spec(spec, scale)
    simulator = OpenMPSimulator(arch, noise=0.0)
    max_threads = max_threads or arch.max_threads
    return {t: simulator.run(summary, OMPConfig(t)).time_seconds
            for t in range(1, max_threads + 1)}


def run_fig1b(arch: MicroArch = COMET_LAKE_8C, max_kernels: int = 45,
              num_inputs: int = 10, seed: int = 0) -> Dict[str, object]:
    """Distribution of best thread counts across loops × inputs."""
    space = thread_search_space(arch)
    specs = select_openmp_kernels(max_kernels)
    dataset = build_openmp_dataset(arch, space, specs, num_inputs=num_inputs,
                                   seed=seed)
    best_threads = [dataset.configs[s.label].num_threads for s in dataset.samples]
    counts = {t: best_threads.count(t) for t in sorted(set(best_threads))}
    default = arch.max_threads
    non_default = sum(v for t, v in counts.items() if t != default)
    return {
        "histogram": counts,
        "percent_non_default": 100.0 * non_default / max(1, len(best_threads)),
        "num_combinations": len(best_threads),
    }


def format_result(fig1a: Dict[int, float], fig1b: Dict[str, object]) -> str:
    lines = ["Figure 1a: kmeans execution time per thread count"]
    best = min(fig1a.values())
    for t, time in fig1a.items():
        marker = " <-- best" if time == best else ""
        lines.append(f"  threads={t}: {time * 1e3:8.3f} ms{marker}")
    lines.append("Figure 1b: best-thread-count distribution")
    for t, count in fig1b["histogram"].items():
        lines.append(f"  best={t} threads: {count} combinations")
    lines.append(f"  non-default best configuration: "
                 f"{fig1b['percent_non_default']:.1f}% of combinations "
                 f"(paper: ~64%)")
    return "\n".join(lines)
