"""Figure 1: motivation.

(a) execution time of the Rodinia ``kmeans`` kernel at 1..8 threads on the
8-core Comet Lake system; (b) distribution of the best thread count over all
loops and input sizes (≈64% of combinations need a non-default thread count
in the paper).

Declared as the ``fig1`` experiment spec; ``run_fig1a``/``run_fig1b`` are
legacy shims kept for backward compatibility.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.pipeline.registry import register_experiment
from repro.pipeline.runner import run_legacy
from repro.pipeline.spec import BuildDataset, ExperimentSpec, Report, ref, stage_impl
from repro.simulator.microarch import COMET_LAKE_8C, MicroArch, microarch_from_config


def _fig1a(arch: MicroArch, scale: float,
           max_threads: Optional[int]) -> Dict[int, float]:
    from repro.frontend.analysis import analyze_spec
    from repro.frontend.openmp import OMPConfig
    from repro.kernels import registry
    from repro.simulator.openmp import OpenMPSimulator

    spec = registry.get_kernel("rodinia/kmeans")
    summary = analyze_spec(spec, scale)
    simulator = OpenMPSimulator(arch, noise=0.0)
    max_threads = max_threads or arch.max_threads
    return {t: simulator.run(summary, OMPConfig(t)).time_seconds
            for t in range(1, max_threads + 1)}


@stage_impl("fig1.report")
def _report(ctx, inputs, *, arch, scale, max_threads):
    arch = microarch_from_config(arch)
    dataset = inputs["dataset"]
    best_threads = [dataset.configs[s.label].num_threads
                    for s in dataset.samples]
    counts = {t: best_threads.count(t) for t in sorted(set(best_threads))}
    default = arch.max_threads
    non_default = sum(v for t, v in counts.items() if t != default)
    return {
        "fig1a": _fig1a(arch, scale, max_threads),
        "fig1b": {
            "histogram": counts,
            "percent_non_default":
                100.0 * non_default / max(1, len(best_threads)),
            "num_combinations": len(best_threads),
        },
    }


SPEC = ExperimentSpec(
    name="fig1",
    title="Motivation: kmeans thread sweep + best-thread distribution (Fig. 1)",
    description="Execution time of kmeans per thread count, and the "
                "distribution of oracle thread counts over loops × inputs.",
    params={
        "arch": "comet_lake",
        "scale": 2.0,
        "max_threads": None,
        "max_kernels": 45,
        "num_inputs": 10,
        "seed": 0,
    },
    stages=(
        BuildDataset(impl="openmp.dataset", name="dataset", params={
            "arch": ref("arch"),
            "space": {"type": "threads"},
            "kernels": {"select": "openmp", "max": ref("max_kernels")},
            "targets": {"num": ref("num_inputs")},
            "seed": ref("seed"),
        }),
        Report(impl="fig1.report", name="report", inputs=("dataset",),
               params={"arch": ref("arch"), "scale": ref("scale"),
                       "max_threads": ref("max_threads")}),
    ),
    quick={"max_kernels": 6, "num_inputs": 3},
)


# ----------------------------------------------------------------------
# legacy entry points (deprecated: use ``python -m repro run fig1``)
# ----------------------------------------------------------------------
def run_fig1a(arch: MicroArch = COMET_LAKE_8C, scale: float = 2.0,
              max_threads: Optional[int] = None) -> Dict[int, float]:
    """Execution time of kmeans per thread count."""
    return _fig1a(microarch_from_config(arch), scale, max_threads)


def run_fig1b(**overrides) -> Dict[str, object]:
    """Distribution of best thread counts across loops × inputs.

    Accepts the ``fig1`` spec parameters (``arch``, ``max_kernels``,
    ``num_inputs``, ``seed``, ...) as keyword overrides and delegates to the
    pipeline.
    """
    return run_legacy("fig1", overrides)["fig1b"]


def format_result(fig1a: Dict[int, float], fig1b: Dict[str, object]) -> str:
    lines = ["Figure 1a: kmeans execution time per thread count"]
    best = min(fig1a.values())
    for t, time in fig1a.items():
        marker = " <-- best" if time == best else ""
        lines.append(f"  threads={t}: {time * 1e3:8.3f} ms{marker}")
    lines.append("Figure 1b: best-thread-count distribution")
    for t, count in fig1b["histogram"].items():
        lines.append(f"  best={t} threads: {count} combinations")
    lines.append(f"  non-default best configuration: "
                 f"{fig1b['percent_non_default']:.1f}% of combinations "
                 f"(paper: ~64%)")
    return "\n".join(lines)


def _format_pipeline_result(result: Dict[str, object]) -> str:
    return format_result(result["fig1a"], result["fig1b"])


register_experiment(SPEC, _format_pipeline_result)
