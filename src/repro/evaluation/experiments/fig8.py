"""Figure 8: performance-counter comparison, default vs predicted config.

For the PolyBench ``2mm`` kernel on the Skylake system, the counters measured
under the default configuration (all threads, static scheduling) are compared
with the counters under the oracle/predicted configuration.  Expected shape:
the tuned configuration reduces cache misses and branch mispredictions.

Declared as the ``fig8`` experiment spec; the exhaustive sweep over the
Table-2 space runs as a :class:`~repro.tuners.campaign.TuningCampaign`
(``workers=N`` fans the simulated executions out over a process pool).
``run()`` is a legacy shim.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.pipeline.registry import register_experiment
from repro.pipeline.runner import run_legacy
from repro.pipeline.spec import ExperimentSpec, Report, TuneCandidates, ref, stage_impl
from repro.simulator.microarch import microarch_from_config

COUNTERS_OF_INTEREST = ("PAPI_L3_LDM", "PAPI_L1_DCM", "PAPI_BR_MSP",
                        "PAPI_L2_DCM", "PAPI_TOT_CYC", "PAPI_BR_INS")


@stage_impl("fig8.sweep")
def _sweep(ctx, inputs, *, arch, kernel_uid, target_bytes, seed):
    from repro.frontend.analysis import analyze_spec
    from repro.frontend.openmp import default_omp_config
    from repro.kernels import registry
    from repro.simulator.openmp import OpenMPSimulator
    from repro.tuners.campaign import SimObjectiveSpec, TuningCampaign
    from repro.tuners.exhaustive import ExhaustiveTuner
    from repro.tuners.space import full_search_space

    arch = microarch_from_config(arch)
    spec = registry.get_kernel(kernel_uid)
    scale = spec.scale_for_bytes(target_bytes)
    summary = analyze_spec(spec, scale)
    simulator = OpenMPSimulator(arch, noise=0.0)
    space = full_search_space(max_threads=arch.max_threads)

    default_config = default_omp_config(arch.max_threads)
    default_run = simulator.run(summary, default_config)

    # noise=0 makes every simulated execution deterministic, so the campaign
    # sweep is byte-identical to the serial enumeration at any worker count
    objective = SimObjectiveSpec(kernel_uid=kernel_uid, arch=arch,
                                 scale=scale, noise=0.0, seed=seed)
    campaign = TuningCampaign(ExhaustiveTuner(), space, objective,
                              workers=ctx.workers)
    result = campaign.run()
    best_config, best_time = result.best_config, result.best_time
    best_run = simulator.run(summary, best_config)

    return {
        "default_config": default_config,
        "predicted_config": best_config,
        "default_time": default_run.time_seconds,
        "predicted_time": best_time,
        "default_counters": dict(default_run.counters),
        "predicted_counters": dict(best_run.counters),
    }


@stage_impl("fig8.report")
def _report(ctx, inputs):
    sweep = inputs["sweep"]
    normalized: Dict[str, Tuple[float, float]] = {}
    for name in COUNTERS_OF_INTEREST:
        d = sweep["default_counters"][name]
        o = sweep["predicted_counters"][name]
        biggest = max(d, o, 1e-12)
        normalized[name] = (o / biggest, d / biggest)     # (optimal, default)
    return {
        "default_config": sweep["default_config"],
        "predicted_config": sweep["predicted_config"],
        "default_time": sweep["default_time"],
        "predicted_time": sweep["predicted_time"],
        "normalized_counters": normalized,
    }


SPEC = ExperimentSpec(
    name="fig8",
    title="Counters under default vs predicted config (Figure 8)",
    description="Normalised PAPI counters of 2mm on Skylake under the "
                "default and the oracle configuration of the Table-2 space.",
    params={
        "arch": "skylake_4114",
        "kernel_uid": "polybench/2mm",
        "target_bytes": 64e6,
        "seed": 0,
    },
    stages=(
        TuneCandidates(impl="fig8.sweep", name="sweep", params={
            "arch": ref("arch"),
            "kernel_uid": ref("kernel_uid"),
            "target_bytes": ref("target_bytes"),
            "seed": ref("seed"),
        }),
        Report(impl="fig8.report", name="report", inputs=("sweep",)),
    ),
    quick={"target_bytes": 16e6},
)


def run(**overrides) -> Dict[str, object]:
    """Legacy shim: run the ``fig8`` spec (accepts its parameters as kwargs)."""
    return run_legacy("fig8", overrides)


def format_result(result: Dict[str, object]) -> str:
    lines = [
        "Figure 8: normalised counters for 2mm (default vs predicted config)",
        f"  default   config: {result['default_config'].label()} "
        f"({result['default_time'] * 1e3:.2f} ms)",
        f"  predicted config: {result['predicted_config'].label()} "
        f"({result['predicted_time'] * 1e3:.2f} ms)",
        f"  {'counter':<16}{'optimal':>10}{'default':>10}   [lower is better]",
    ]
    for name, (optimal, default) in result["normalized_counters"].items():
        lines.append(f"  {name:<16}{optimal:10.3f}{default:10.3f}")
    return "\n".join(lines)


register_experiment(SPEC, format_result)
