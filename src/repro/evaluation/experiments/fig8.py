"""Figure 8: performance-counter comparison, default vs predicted config.

For the PolyBench ``2mm`` kernel on the Skylake system, the counters measured
under the default configuration (all threads, static scheduling) are compared
with the counters under the oracle/predicted configuration.  Expected shape:
the tuned configuration reduces cache misses and branch mispredictions.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.frontend.analysis import analyze_spec
from repro.frontend.openmp import OMPConfig, default_omp_config
from repro.kernels import registry
from repro.simulator.microarch import SKYLAKE_4114, MicroArch
from repro.simulator.openmp import OpenMPSimulator
from repro.tuners.space import full_search_space

COUNTERS_OF_INTEREST = ("PAPI_L3_LDM", "PAPI_L1_DCM", "PAPI_BR_MSP",
                        "PAPI_L2_DCM", "PAPI_TOT_CYC", "PAPI_BR_INS")


def run(arch: MicroArch = SKYLAKE_4114, kernel_uid: str = "polybench/2mm",
        target_bytes: float = 64e6, seed: int = 0
        ) -> Dict[str, object]:
    spec = registry.get_kernel(kernel_uid)
    scale = spec.scale_for_bytes(target_bytes)
    summary = analyze_spec(spec, scale)
    simulator = OpenMPSimulator(arch, noise=0.0)
    space = full_search_space(max_threads=arch.max_threads)

    default_config = default_omp_config(arch.max_threads)
    default_run = simulator.run(summary, default_config)

    times = [(config, simulator.run(summary, config).time_seconds)
             for config in space]
    best_config, best_time = min(times, key=lambda item: item[1])
    best_run = simulator.run(summary, best_config)

    normalized: Dict[str, Tuple[float, float]] = {}
    for name in COUNTERS_OF_INTEREST:
        d = default_run.counters[name]
        o = best_run.counters[name]
        biggest = max(d, o, 1e-12)
        normalized[name] = (o / biggest, d / biggest)     # (optimal, default)
    return {
        "default_config": default_config,
        "predicted_config": best_config,
        "default_time": default_run.time_seconds,
        "predicted_time": best_time,
        "normalized_counters": normalized,
    }


def format_result(result: Dict[str, object]) -> str:
    lines = [
        "Figure 8: normalised counters for 2mm (default vs predicted config)",
        f"  default   config: {result['default_config'].label()} "
        f"({result['default_time'] * 1e3:.2f} ms)",
        f"  predicted config: {result['predicted_config'].label()} "
        f"({result['predicted_time'] * 1e3:.2f} ms)",
        f"  {'counter':<16}{'optimal':>10}{'default':>10}   [lower is better]",
    ]
    for name, (optimal, default) in result["normalized_counters"].items():
        lines.append(f"  {name:<16}{optimal:10.3f}{default:10.3f}")
    return "\n".join(lines)
