"""Figure 5: impact of static and dynamic features (ablation study).

Models trained with both static and dynamic features (MGA, IR2Vec, PROGRAML)
are compared with their static-only variants, a dynamic-only model and the
search tuners, on a randomized 80/20 split.  Expected shape: static+dynamic >
static-only > dynamic-only, and all DL models above the search tuners.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.evaluation.experiments.common import (
    DL_APPROACHES,
    DL_STATIC_APPROACHES,
    build_openmp_dataset,
    dl_tuner_speedups,
    search_tuner_speedups,
    select_openmp_kernels,
)
from repro.evaluation.metrics import geometric_mean
from repro.simulator.microarch import COMET_LAKE_8C, MicroArch
from repro.tuners import BLISSTuner, OpenTunerLike, YtoptTuner
from repro.tuners.space import thread_search_space


def run(arch: MicroArch = COMET_LAKE_8C, max_kernels: int = 45,
        num_inputs: int = 10, epochs: int = 25, budget: int = 10,
        include_search: bool = True, holdout: float = 0.2,
        seed: int = 0) -> Dict[str, float]:
    """Return geometric-mean speedups of every approach on the 80/20 split."""
    space = thread_search_space(arch)
    specs = select_openmp_kernels(max_kernels)
    dataset = build_openmp_dataset(arch, space, specs, num_inputs=num_inputs,
                                   seed=seed)
    rng = np.random.default_rng(seed)
    indices = rng.permutation(len(dataset))
    n_val = max(1, int(round(len(dataset) * holdout)))
    val_idx, train_idx = list(indices[:n_val]), list(indices[n_val:])

    results: Dict[str, float] = {}
    if include_search:
        for name, factory in (("ytopt", YtoptTuner), ("OpenTuner", OpenTunerLike),
                              ("BLISS", BLISSTuner)):
            sp = search_tuner_speedups(dataset, val_idx, factory, budget=budget,
                                       seed=seed)
            results[name] = geometric_mean(sp)
    for name, modalities in {**DL_STATIC_APPROACHES, **DL_APPROACHES}.items():
        sp = dl_tuner_speedups(dataset, train_idx, val_idx, modalities,
                               epochs=epochs, seed=seed)
        results[name] = geometric_mean(sp)
    results["Oracle"] = geometric_mean(
        [dataset.samples[i].oracle_speedup for i in val_idx])
    return results


def format_result(result: Dict[str, float]) -> str:
    lines = ["Figure 5: static vs dynamic feature ablation "
             "(geomean speedup over default)"]
    for name, value in result.items():
        lines.append(f"  {name:<16} {value:6.2f}x")
    return "\n".join(lines)
