"""Figure 5: impact of static and dynamic features (ablation study).

Models trained with both static and dynamic features (MGA, IR2Vec, PROGRAML)
are compared with their static-only variants, a dynamic-only model and the
search tuners, on a randomized 80/20 split.  Expected shape: static+dynamic >
static-only > dynamic-only, and all DL models above the search tuners.

Declared as the ``fig5`` experiment spec; ``run()`` is a legacy shim.
"""

from __future__ import annotations

from typing import Dict

from repro.evaluation.metrics import geometric_mean
from repro.pipeline.registry import register_experiment
from repro.pipeline.runner import run_legacy
from repro.pipeline.spec import (
    BuildDataset,
    ExperimentSpec,
    Report,
    TrainModels,
    TuneCandidates,
    ref,
    stage_impl,
)
from repro.pipeline.stages import SEARCH_DISPLAY_ORDER, resolve_splits

#: static-only variants first, then full models — the paper's reading order
_DL_ORDER = ("MGA-Static", "IR2Vec-Static", "PROGRAML-Static", "Dynamic Only",
             "MGA", "IR2Vec", "PROGRAML")
_SPLIT = {"type": "holdout", "fraction": ref("holdout"), "seed": ref("seed")}


@stage_impl("fig5.report")
def _report(ctx, inputs, *, split, include_search):
    dataset = inputs["dataset"]
    search = inputs["search"]["speedups"]
    dl = inputs["dl"]["speedups"]
    _, splits = resolve_splits(dataset, split)
    _, val_idx = splits[0]
    results: Dict[str, float] = {}
    if include_search:
        for name in SEARCH_DISPLAY_ORDER:
            results[name] = geometric_mean(search[name][0])
    for name in _DL_ORDER:
        results[name] = geometric_mean(dl[name][0])
    results["Oracle"] = geometric_mean(
        [dataset.samples[i].oracle_speedup for i in val_idx])
    return results


SPEC = ExperimentSpec(
    name="fig5",
    title="Static vs dynamic feature ablation (Figure 5)",
    description="Geomean speedups of full, static-only and dynamic-only "
                "models plus the search tuners on an 80/20 split.",
    params={
        "arch": "comet_lake",
        "max_kernels": 45,
        "num_inputs": 10,
        "epochs": 25,
        "budget": 10,
        "include_search": True,
        "holdout": 0.2,
        "seed": 0,
    },
    stages=(
        BuildDataset(impl="openmp.dataset", name="dataset", params={
            "arch": ref("arch"),
            "space": {"type": "threads"},
            "kernels": {"select": "openmp", "max": ref("max_kernels")},
            "targets": {"num": ref("num_inputs")},
            "seed": ref("seed"),
        }),
        TuneCandidates(impl="openmp.search_speedups", name="search",
                       inputs=("dataset",), params={
                           "split": _SPLIT,
                           "budget": ref("budget"),
                           "seed": ref("seed"),
                           "enabled": ref("include_search"),
                       }),
        TrainModels(impl="openmp.dl_speedups", name="dl",
                    inputs=("dataset",), params={
                        "split": _SPLIT,
                        "approaches": list(_DL_ORDER),
                        "epochs": ref("epochs"),
                        "seed": ref("seed"),
                    }),
        Report(impl="fig5.report", name="report",
               inputs=("dataset", "search", "dl"), params={
                   "split": _SPLIT,
                   "include_search": ref("include_search"),
               }),
    ),
    quick={"max_kernels": 6, "num_inputs": 3, "epochs": 4, "budget": 4},
)


def run(**overrides) -> Dict[str, float]:
    """Legacy shim: run the ``fig5`` spec (accepts its parameters as kwargs)."""
    return run_legacy("fig5", overrides)


def format_result(result: Dict[str, float]) -> str:
    lines = ["Figure 5: static vs dynamic feature ablation "
             "(geomean speedup over default)"]
    for name, value in result.items():
        lines.append(f"  {name:<16} {value:6.2f}x")
    return "\n".join(lines)


register_experiment(SPEC, format_result)
