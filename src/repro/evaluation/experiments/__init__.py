"""Experiment specs regenerating every table and figure of the paper.

Each module declares one :class:`~repro.pipeline.spec.ExperimentSpec` —
typed stages (dataset build, DL training, black-box search, report) over
experiment-level parameters — and registers it with
:mod:`repro.pipeline.registry`, plus a ``format_result(...)`` helper that
prints the rows / series the paper reports.

The uniform entry point is ``python -m repro run <experiment>`` (or
:func:`repro.pipeline.run_experiment`), which adds stage caching and
multiprocess tuning fan-out.  The per-module ``run(**overrides)`` functions
are thin legacy shims over the same pipeline and will eventually go away.
"""

from repro.evaluation.experiments import common

__all__ = ["common"]
