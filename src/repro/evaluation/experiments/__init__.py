"""Experiment runners regenerating every table and figure of the paper.

Each module exposes a ``run(...)`` function whose keyword arguments control
the problem size (number of kernels, input sizes, training epochs, tuner
budgets) so the same code serves both quick benchmark runs and full
reproductions, and a ``format_result(...)`` helper that prints the rows /
series the paper reports.
"""

from repro.evaluation.experiments import common

__all__ = ["common"]
