"""Figure 4: OpenMP thread prediction, 5-fold cross-validation.

Per fold: geometric-mean speedup over the default configuration for Default /
ytopt / OpenTuner / BLISS / PROGRAML / IR2Vec / MGA / Oracle, normalised by
the oracle speedup.  Expected shape (paper): MGA is the closest to the oracle
(≥0.95 in most folds), followed by IR2Vec, PROGRAML, then the search tuners.

Declared as the ``fig4`` experiment spec (dataset → search → DL → report);
``run()`` is a legacy shim over the pipeline.
"""

from __future__ import annotations

from typing import Dict, List

from repro.evaluation.experiments.common import (
    ApproachResult,
    default_speedups,
    format_normalized_table,
    normalized_table,
    oracle_speedups,
)
from repro.pipeline.registry import register_experiment
from repro.pipeline.runner import run_legacy
from repro.pipeline.spec import (
    BuildDataset,
    ExperimentSpec,
    Report,
    TrainModels,
    TuneCandidates,
    ref,
    stage_impl,
)
from repro.pipeline.stages import SEARCH_DISPLAY_ORDER, resolve_splits

_DL_ORDER = ("MGA", "IR2Vec", "PROGRAML")
_SPLIT = {"type": "kfold_kernel", "k": ref("folds"), "seed": ref("seed")}


@stage_impl("fig4.report")
def _report(ctx, inputs, *, split, include_search):
    dataset = inputs["dataset"]
    search = inputs["search"]["speedups"]
    dl = inputs["dl"]["speedups"]
    _, splits = resolve_splits(dataset, split)
    fold_results: List[Dict[str, ApproachResult]] = []
    for fold, (_, val_idx) in enumerate(splits):
        result = {"Default": ApproachResult("Default",
                                            default_speedups(val_idx))}
        if include_search:
            for name in SEARCH_DISPLAY_ORDER:
                result[name] = ApproachResult(name, search[name][fold])
        for name in _DL_ORDER:
            result[name] = ApproachResult(name, dl[name][fold])
        result["Oracle"] = ApproachResult("Oracle",
                                          oracle_speedups(dataset, val_idx))
        fold_results.append(result)
    table = normalized_table(fold_results)
    absolute = {name: [fold[name].geomean for fold in fold_results]
                for name in fold_results[0]}
    return {
        "dataset": dataset,
        "fold_results": fold_results,
        "normalized": table,
        "absolute": absolute,
    }


SPEC = ExperimentSpec(
    name="fig4",
    title="OpenMP thread prediction, 5-fold cross-validation (Figure 4)",
    description="Normalised geomean speedups of every approach per "
                "unseen-loop fold on the Comet Lake thread space.",
    params={
        "arch": "comet_lake",
        "max_kernels": 45,
        "num_inputs": 10,
        "folds": 5,
        "epochs": 25,
        "budget": 10,
        "include_search": True,
        "seed": 0,
    },
    stages=(
        BuildDataset(impl="openmp.dataset", name="dataset", params={
            "arch": ref("arch"),
            "space": {"type": "threads"},
            "kernels": {"select": "openmp", "max": ref("max_kernels")},
            "targets": {"num": ref("num_inputs")},
            "seed": ref("seed"),
        }),
        TuneCandidates(impl="openmp.search_speedups", name="search",
                       inputs=("dataset",), params={
                           "split": _SPLIT,
                           "budget": ref("budget"),
                           "seed": ref("seed"),
                           "enabled": ref("include_search"),
                       }),
        TrainModels(impl="openmp.dl_speedups", name="dl",
                    inputs=("dataset",), params={
                        "split": _SPLIT,
                        "approaches": list(_DL_ORDER),
                        "epochs": ref("epochs"),
                        "seed": ref("seed"),
                    }),
        Report(impl="fig4.report", name="report",
               inputs=("dataset", "search", "dl"), params={
                   "split": _SPLIT,
                   "include_search": ref("include_search"),
               }),
    ),
    quick={"max_kernels": 6, "num_inputs": 3, "folds": 2, "epochs": 4,
           "budget": 4},
)


def run(**overrides) -> Dict[str, object]:
    """Legacy shim: run the ``fig4`` spec (accepts its parameters as kwargs)."""
    return run_legacy("fig4", overrides)


def format_result(result: Dict[str, object]) -> str:
    lines = ["Figure 4: thread prediction (normalised speedups per fold)"]
    lines.append(format_normalized_table(result["normalized"]))
    lines.append("")
    lines.append("Absolute geometric-mean speedups over the default (per fold):")
    for name, values in result["absolute"].items():
        row = ", ".join(f"{v:.2f}x" for v in values)
        lines.append(f"  {name:<12} {row}")
    return "\n".join(lines)


register_experiment(SPEC, format_result)
