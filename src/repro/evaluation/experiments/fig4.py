"""Figure 4: OpenMP thread prediction, 5-fold cross-validation.

Per fold: geometric-mean speedup over the default configuration for Default /
ytopt / OpenTuner / BLISS / PROGRAML / IR2Vec / MGA / Oracle, normalised by
the oracle speedup.  Expected shape (paper): MGA is the closest to the oracle
(≥0.95 in most folds), followed by IR2Vec, PROGRAML, then the search tuners.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.evaluation.experiments.common import (
    ApproachResult,
    build_openmp_dataset,
    evaluate_fold,
    format_normalized_table,
    normalized_table,
    select_openmp_kernels,
)
from repro.simulator.microarch import COMET_LAKE_8C, MicroArch
from repro.tuners.space import thread_search_space


def run(arch: MicroArch = COMET_LAKE_8C, max_kernels: int = 45,
        num_inputs: int = 10, folds: int = 5, epochs: int = 25,
        budget: int = 10, include_search: bool = True,
        seed: int = 0) -> Dict[str, object]:
    """Run the thread-prediction experiment; returns fold results and tables."""
    space = thread_search_space(arch)
    specs = select_openmp_kernels(max_kernels)
    dataset = build_openmp_dataset(arch, space, specs, num_inputs=num_inputs,
                                   seed=seed)
    fold_results: List[Dict[str, ApproachResult]] = []
    for train_idx, val_idx in dataset.kfold_by_kernel(k=folds, seed=seed):
        fold_results.append(evaluate_fold(dataset, train_idx, val_idx,
                                          include_search=include_search,
                                          epochs=epochs, budget=budget,
                                          seed=seed))
    table = normalized_table(fold_results)
    absolute = {name: [fold[name].geomean for fold in fold_results]
                for name in fold_results[0]}
    return {
        "dataset": dataset,
        "fold_results": fold_results,
        "normalized": table,
        "absolute": absolute,
    }


def format_result(result: Dict[str, object]) -> str:
    lines = ["Figure 4: thread prediction (normalised speedups per fold)"]
    lines.append(format_normalized_table(result["normalized"]))
    lines.append("")
    lines.append("Absolute geometric-mean speedups over the default (per fold):")
    for name, values in result["absolute"].items():
        row = ", ".join(f"{v:.2f}x" for v in values)
        lines.append(f"  {name:<12} {row}")
    return "\n".join(lines)
