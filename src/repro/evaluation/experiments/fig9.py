"""Figure 9: µ-architecture portability.

A model trained on Comet Lake data predicts thread counts for Broadwell and
Sandy Bridge systems: the target system is profiled under the default
configuration, its counters are rescaled by the cache-size ratios
(:func:`repro.profiling.rescale_counters`) and fed to the pre-trained model
without retraining.  Expected shape: predicted configurations achieve close
to the target system's oracle speedups for most PolyBench kernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.mga import ModalityConfig
from repro.core.tuner import MGATuner
from repro.datasets.openmp import OpenMPDatasetBuilder, default_input_targets
from repro.evaluation.metrics import geometric_mean
from repro.kernels import registry
from repro.profiling import rescale_counters
from repro.simulator.microarch import (
    BROADWELL_8C,
    COMET_LAKE_8C,
    MicroArch,
    SANDY_BRIDGE_8C,
)
from repro.tuners.space import thread_search_space


def run(train_arch: MicroArch = COMET_LAKE_8C,
        target_archs: Sequence[MicroArch] = (SANDY_BRIDGE_8C, BROADWELL_8C),
        max_kernels: int = 25, num_inputs: int = 4, epochs: int = 20,
        seed: int = 0) -> Dict[str, object]:
    space = thread_search_space(train_arch)
    specs = [registry.get_kernel(f"polybench/{name}")
             for name in list(registry.TABLE1["polybench"])[:max_kernels]]
    targets = default_input_targets(num=num_inputs, min_bytes=1e6,
                                    max_bytes=256e6)   # STANDARD / LARGE inputs

    builder = OpenMPDatasetBuilder(train_arch, list(space), seed=seed)
    train_dataset = builder.build(specs, targets)

    tuner = MGATuner(train_arch, list(space), modalities=ModalityConfig.mga(),
                     seed=seed)
    tuner.fit(train_dataset, epochs=epochs)

    results: Dict[str, Dict[str, List[float]]] = {}
    for target_arch in target_archs:
        target_space = thread_search_space(train_arch)   # same 8-core space
        target_builder = OpenMPDatasetBuilder(target_arch, list(target_space),
                                              seed=seed + 1)
        target_dataset = target_builder.build(specs, targets)
        predicted_speedups, oracle_speedups_list = [], []
        for i, sample in enumerate(target_dataset.samples):
            # rescale the target system's counters into the training system's
            # feature space (the paper's portability transformation)
            scaled = rescale_counters(sample.counters, source=train_arch,
                                      target=target_arch)
            sample.counters.update(scaled)
        predictions = tuner.predict_indices(target_dataset,
                                            list(range(len(target_dataset))))
        for sample, pred in zip(target_dataset.samples, predictions):
            predicted_speedups.append(sample.speedup_of(int(pred)))
            oracle_speedups_list.append(sample.oracle_speedup)
        results[target_arch.name] = {
            "predicted": predicted_speedups,
            "oracle": oracle_speedups_list,
        }
    return {"per_arch": results}


def format_result(result: Dict[str, object]) -> str:
    lines = ["Figure 9: µ-architecture portability "
             "(model trained on Comet Lake)"]
    for arch, data in result["per_arch"].items():
        pred = geometric_mean(data["predicted"])
        oracle = geometric_mean(data["oracle"])
        ratio = pred / oracle if oracle > 0 else 0.0
        lines.append(f"  {arch:<16} predicted {pred:5.2f}x vs oracle "
                     f"{oracle:5.2f}x (normalised {ratio:.3f})")
    return "\n".join(lines)
