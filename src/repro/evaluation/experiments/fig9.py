"""Figure 9: µ-architecture portability.

A model trained on Comet Lake data predicts thread counts for Broadwell and
Sandy Bridge systems: the target system is profiled under the default
configuration, its counters are rescaled by the cache-size ratios
(:func:`repro.profiling.rescale_counters`) and fed to the pre-trained model
without retraining.  Expected shape: predicted configurations achieve close
to the target system's oracle speedups for most PolyBench kernels.

Declared as the ``fig9`` experiment spec; ``run()`` is a legacy shim.
"""

from __future__ import annotations

from typing import Dict, List

from repro.evaluation.metrics import geometric_mean
from repro.pipeline.registry import register_experiment
from repro.pipeline.runner import run_legacy
from repro.pipeline.spec import (
    BuildDataset,
    ExperimentSpec,
    Report,
    TrainModels,
    ref,
    stage_impl,
)
from repro.simulator.microarch import microarch_from_config


@stage_impl("fig9.targets")
def _targets(ctx, inputs, *, train_arch, target_archs, max_kernels,
             num_inputs, seed):
    """Build the per-target-system datasets over the *training* space."""
    from repro.datasets.openmp import OpenMPDatasetBuilder, default_input_targets
    from repro.pipeline.stages import resolve_kernels
    from repro.tuners.space import thread_search_space

    train_arch = microarch_from_config(train_arch)
    specs = resolve_kernels({"select": "polybench", "max": max_kernels})
    targets = default_input_targets(num=num_inputs, min_bytes=1e6,
                                    max_bytes=256e6)   # STANDARD / LARGE inputs
    datasets = {}
    for arch_config in target_archs:
        target_arch = microarch_from_config(arch_config)
        target_space = thread_search_space(train_arch)   # same 8-core space
        builder = OpenMPDatasetBuilder(target_arch, list(target_space),
                                       seed=seed + 1)
        datasets[target_arch.name] = builder.build(specs, targets)
    return {"datasets": datasets}


@stage_impl("fig9.evaluate")
def _evaluate(ctx, inputs, *, train_arch, target_archs, epochs, seed):
    """Train on the source system, predict the rescaled target systems."""
    import dataclasses

    from repro.core.mga import ModalityConfig
    from repro.core.tuner import MGATuner
    from repro.datasets.openmp import OpenMPTuningDataset
    from repro.profiling import rescale_counters

    train_arch = microarch_from_config(train_arch)
    train_dataset = inputs["train_dataset"]
    tuner = MGATuner(train_arch, list(train_dataset.configs),
                     modalities=ModalityConfig.mga(), seed=seed)
    tuner.fit(train_dataset, epochs=epochs)

    results: Dict[str, Dict[str, List[float]]] = {}
    for arch_config in target_archs:
        target_arch = microarch_from_config(arch_config)
        measured = inputs["target_datasets"]["datasets"][target_arch.name]
        # rescale into a per-sample copy: the upstream stage output keeps the
        # target system's measured counters (what the cache holds, too)
        target_dataset = OpenMPTuningDataset(
            [dataclasses.replace(s, counters=dict(s.counters))
             for s in measured.samples],
            measured.configs, measured.arch, measured.counter_names)
        predicted_speedups, oracle_speedups_list = [], []
        for sample in target_dataset.samples:
            # rescale the target system's counters into the training system's
            # feature space (the paper's portability transformation)
            scaled = rescale_counters(sample.counters, source=train_arch,
                                      target=target_arch)
            sample.counters.update(scaled)
        predictions = tuner.predict_indices(target_dataset,
                                            list(range(len(target_dataset))))
        for sample, pred in zip(target_dataset.samples, predictions):
            predicted_speedups.append(sample.speedup_of(int(pred)))
            oracle_speedups_list.append(sample.oracle_speedup)
        results[target_arch.name] = {
            "predicted": predicted_speedups,
            "oracle": oracle_speedups_list,
        }
    return {"per_arch": results}


@stage_impl("fig9.report")
def _report(ctx, inputs):
    return {"per_arch": inputs["evaluate"]["per_arch"]}


SPEC = ExperimentSpec(
    name="fig9",
    title="Micro-architecture portability (Figure 9)",
    description="A Comet-Lake-trained model predicts thread counts for "
                "Sandy Bridge and Broadwell via counter rescaling.",
    params={
        "train_arch": "comet_lake",
        "target_archs": ["sandy_bridge", "broadwell"],
        "max_kernels": 25,
        "num_inputs": 4,
        "epochs": 20,
        "seed": 0,
    },
    stages=(
        BuildDataset(impl="openmp.dataset", name="train_dataset", params={
            "arch": ref("train_arch"),
            "space": {"type": "threads"},
            "kernels": {"select": "polybench", "max": ref("max_kernels")},
            "targets": {"num": ref("num_inputs"), "min_bytes": 1e6,
                        "max_bytes": 256e6},
            "seed": ref("seed"),
        }),
        BuildDataset(impl="fig9.targets", name="target_datasets", params={
            "train_arch": ref("train_arch"),
            "target_archs": ref("target_archs"),
            "max_kernels": ref("max_kernels"),
            "num_inputs": ref("num_inputs"),
            "seed": ref("seed"),
        }),
        TrainModels(impl="fig9.evaluate", name="evaluate",
                    inputs=("train_dataset", "target_datasets"), params={
                        "train_arch": ref("train_arch"),
                        "target_archs": ref("target_archs"),
                        "epochs": ref("epochs"),
                        "seed": ref("seed"),
                    }),
        Report(impl="fig9.report", name="report", inputs=("evaluate",)),
    ),
    quick={"max_kernels": 5, "num_inputs": 2, "epochs": 4},
)


def run(**overrides) -> Dict[str, object]:
    """Legacy shim: run the ``fig9`` spec (accepts its parameters as kwargs)."""
    return run_legacy("fig9", overrides)


def format_result(result: Dict[str, object]) -> str:
    lines = ["Figure 9: µ-architecture portability "
             "(model trained on Comet Lake)"]
    for arch, data in result["per_arch"].items():
        pred = geometric_mean(data["predicted"])
        oracle = geometric_mean(data["oracle"])
        ratio = pred / oracle if oracle > 0 else 0.0
        lines.append(f"  {arch:<16} predicted {pred:5.2f}x vs oracle "
                     f"{oracle:5.2f}x (normalised {ratio:.3f})")
    return "\n".join(lines)


register_experiment(SPEC, format_result)
