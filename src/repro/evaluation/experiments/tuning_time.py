"""§4.1.4 "Observations and Analysis": tuning wall-time comparison.

The paper reports, for tuning 2mm (LARGE) over the Table-2 space, roughly
90 s for the MGA tuner (profiling + prediction), 180 s for OpenTuner, 260 s
for ytopt and 220 s for BLISS, because the search tuners must execute the
kernel many times whereas MGA only needs the profiling run(s).

The reproduction reports the same quantity in *simulated seconds*: the summed
execution time of every kernel run each tuner performs, plus (for the DL
tuner) the measured model inference time.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.core.mga import ModalityConfig
from repro.core.tuner import MGATuner
from repro.datasets.openmp import OpenMPDatasetBuilder, default_input_targets
from repro.frontend.analysis import analyze_spec
from repro.frontend.openmp import default_omp_config
from repro.kernels import registry
from repro.simulator.microarch import SKYLAKE_4114, MicroArch
from repro.simulator.openmp import OpenMPSimulator
from repro.tuners import BLISSTuner, OpenTunerLike, SearchSpace, YtoptTuner, make_objective
from repro.tuners.space import full_search_space


def run(arch: MicroArch = SKYLAKE_4114, kernel_uid: str = "polybench/2mm",
        target_bytes: float = 256e6, budget: int = 10,
        train_kernels: int = 10, train_inputs: int = 4, epochs: int = 10,
        seed: int = 0) -> Dict[str, Dict[str, float]]:
    spec = registry.get_kernel(kernel_uid)
    scale = spec.scale_for_bytes(target_bytes)
    summary = analyze_spec(spec, scale)
    simulator = OpenMPSimulator(arch, noise=0.0)
    space = full_search_space(max_threads=arch.max_threads)

    results: Dict[str, Dict[str, float]] = {}

    # --- search tuners: cost = sum of simulated execution times -----------
    for name, factory in (("OpenTuner", OpenTunerLike), ("ytopt", YtoptTuner),
                          ("BLISS", BLISSTuner)):
        counter: Dict[str, int] = {}
        objective = make_objective(simulator, summary, counter)
        tuner = factory(budget=budget, seed=seed)
        result = tuner.tune(objective, space)
        simulated_cost = sum(t for _, t in result.history)
        results[name] = {
            "kernel_executions": float(counter.get("evals", 0)),
            "simulated_tuning_seconds": simulated_cost,
            "achieved_time": result.best_time,
        }

    # --- MGA tuner: cost = profiling runs + model inference ---------------
    train_specs = [s for s in registry.openmp_kernels()[:train_kernels]
                   if s.uid != kernel_uid]
    builder = OpenMPDatasetBuilder(arch, list(space), seed=seed)
    dataset = builder.build(train_specs,
                            default_input_targets(num=train_inputs))
    tuner = MGATuner(arch, list(space), modalities=ModalityConfig.mga(),
                     seed=seed)
    tuner.fit(dataset, epochs=epochs)
    # two profiling runs (the selected counters need two runs on real systems)
    profile_time = 2 * simulator.run(summary,
                                     default_omp_config(arch.cores)).time_seconds
    t0 = time.perf_counter()
    config, _ = tuner.tune(spec, scale=scale)
    inference_wall = time.perf_counter() - t0
    achieved = simulator.run(summary, config).time_seconds
    results["MGA"] = {
        "kernel_executions": 2.0,
        "simulated_tuning_seconds": profile_time,
        "inference_wall_seconds": inference_wall,
        "achieved_time": achieved,
    }
    return results


def format_result(results: Dict[str, Dict[str, float]]) -> str:
    lines = ["Tuning-cost comparison (2mm, Table-2 search space)"]
    lines.append(f"  {'tuner':<12}{'kernel execs':>14}{'tuning cost (s)':>18}"
                 f"{'achieved time (s)':>20}")
    for name, row in results.items():
        lines.append(f"  {name:<12}{row['kernel_executions']:14.0f}"
                     f"{row['simulated_tuning_seconds']:18.4f}"
                     f"{row['achieved_time']:20.5f}")
    lines.append("  (MGA needs only the profiling runs; search tuners pay one "
                 "kernel execution per evaluation)")
    return "\n".join(lines)
