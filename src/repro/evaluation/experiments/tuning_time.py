"""§4.1.4 "Observations and Analysis": tuning wall-time comparison.

The paper reports, for tuning 2mm (LARGE) over the Table-2 space, roughly
90 s for the MGA tuner (profiling + prediction), 180 s for OpenTuner, 260 s
for ytopt and 220 s for BLISS, because the search tuners must execute the
kernel many times whereas MGA only needs the profiling run(s).

The reproduction reports the same quantity in *simulated seconds*: the summed
execution time of every kernel run each tuner performs, plus (for the DL
tuner) the measured model inference time.

Declared as the ``tuning_time`` experiment spec: the search tuners run as
:class:`~repro.tuners.campaign.TuningCampaign` sessions (fanned out with
``workers=N``), the MGA tuner trains in a cached stage and only the
wall-clock inference measurement re-runs on a cache hit.  ``run()`` is a
legacy shim.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.pipeline.registry import register_experiment
from repro.pipeline.runner import run_legacy
from repro.pipeline.spec import (
    BuildDataset,
    ExperimentSpec,
    Report,
    TrainModels,
    TuneCandidates,
    ref,
    stage_impl,
)
from repro.simulator.microarch import microarch_from_config

#: the paper's comparison order
_SEARCH_ORDER = (("OpenTuner", "opentuner"), ("ytopt", "ytopt"),
                 ("BLISS", "bliss"))


@stage_impl("tuning_time.search")
def _search(ctx, inputs, *, arch, kernel_uid, target_bytes, budget, seed):
    from repro.kernels import registry
    from repro.tuners.campaign import (
        SearchSession,
        SimObjectiveSpec,
        run_search_sessions,
    )
    from repro.tuners.space import full_search_space

    arch = microarch_from_config(arch)
    spec = registry.get_kernel(kernel_uid)
    scale = spec.scale_for_bytes(target_bytes)
    space_config = full_search_space(max_threads=arch.max_threads).to_config()
    objective = SimObjectiveSpec(kernel_uid=kernel_uid, arch=arch,
                                 scale=scale, noise=0.0, seed=seed)
    sessions = [SearchSession(tuner_name=strategy,
                              tuner_config={"budget": budget, "seed": seed},
                              space=space_config, objective=objective)
                for _, strategy in _SEARCH_ORDER]
    outcomes = run_search_sessions(sessions, workers=ctx.workers,
                                   daemon=ctx.daemon)
    results: Dict[str, Dict[str, float]] = {}
    for (display, _), outcome in zip(_SEARCH_ORDER, outcomes):
        results[display] = {
            "kernel_executions": float(outcome.evaluations),
            # sequential sum, matching the serial accumulation of a real run
            "simulated_tuning_seconds": float(sum(outcome.times.tolist())),
            "achieved_time": outcome.best_time,
        }
    return {"results": results}


@stage_impl("tuning_time.train")
def _train(ctx, inputs, *, arch, epochs, seed):
    from repro.core.mga import ModalityConfig
    from repro.core.tuner import MGATuner

    arch = microarch_from_config(arch)
    dataset = inputs["dataset"]
    tuner = MGATuner(arch, list(dataset.configs),
                     modalities=ModalityConfig.mga(), seed=seed)
    tuner.fit(dataset, epochs=epochs)
    return {"tuner": tuner}


@stage_impl("tuning_time.report")
def _report(ctx, inputs, *, arch, kernel_uid, target_bytes):
    from repro.frontend.analysis import analyze_spec
    from repro.frontend.openmp import default_omp_config
    from repro.kernels import registry
    from repro.simulator.openmp import OpenMPSimulator

    arch = microarch_from_config(arch)
    spec = registry.get_kernel(kernel_uid)
    scale = spec.scale_for_bytes(target_bytes)
    summary = analyze_spec(spec, scale)
    simulator = OpenMPSimulator(arch, noise=0.0)
    tuner = inputs["train"]["tuner"]

    results: Dict[str, Dict[str, float]] = dict(inputs["search"]["results"])
    # two profiling runs (the selected counters need two runs on real systems)
    profile_time = 2 * simulator.run(summary,
                                     default_omp_config(arch.cores)).time_seconds
    t0 = time.perf_counter()
    config, _ = tuner.tune(spec, scale=scale)
    inference_wall = time.perf_counter() - t0
    achieved = simulator.run(summary, config).time_seconds
    results["MGA"] = {
        "kernel_executions": 2.0,
        "simulated_tuning_seconds": profile_time,
        "inference_wall_seconds": inference_wall,
        "achieved_time": achieved,
    }
    return results


SPEC = ExperimentSpec(
    name="tuning_time",
    title="Tuning-cost comparison over the Table-2 space (§4.1.4)",
    description="Simulated tuning seconds of the search tuners vs the "
                "profiling-only MGA tuner for one kernel.",
    params={
        "arch": "skylake_4114",
        "kernel_uid": "polybench/2mm",
        "target_bytes": 256e6,
        "budget": 10,
        "train_kernels": 10,
        "train_inputs": 4,
        "epochs": 10,
        "seed": 0,
    },
    stages=(
        TuneCandidates(impl="tuning_time.search", name="search", params={
            "arch": ref("arch"),
            "kernel_uid": ref("kernel_uid"),
            "target_bytes": ref("target_bytes"),
            "budget": ref("budget"),
            "seed": ref("seed"),
        }),
        BuildDataset(impl="openmp.dataset", name="dataset", params={
            "arch": ref("arch"),
            "space": {"type": "full"},
            "kernels": {"select": "openmp_excluding",
                        "max": ref("train_kernels"),
                        "exclude": ref("kernel_uid")},
            "targets": {"num": ref("train_inputs")},
            "seed": ref("seed"),
        }),
        TrainModels(impl="tuning_time.train", name="train",
                    inputs=("dataset",), params={
                        "arch": ref("arch"),
                        "epochs": ref("epochs"),
                        "seed": ref("seed"),
                    }),
        Report(impl="tuning_time.report", name="report",
               inputs=("search", "train"), params={
                   "arch": ref("arch"),
                   "kernel_uid": ref("kernel_uid"),
                   "target_bytes": ref("target_bytes"),
               }),
    ),
    quick={"budget": 4, "train_kernels": 4, "train_inputs": 2, "epochs": 3},
)


def run(**overrides) -> Dict[str, Dict[str, float]]:
    """Legacy shim: run the ``tuning_time`` spec (parameters as kwargs)."""
    return run_legacy("tuning_time", overrides)


def format_result(results: Dict[str, Dict[str, float]]) -> str:
    lines = ["Tuning-cost comparison (2mm, Table-2 search space)"]
    lines.append(f"  {'tuner':<12}{'kernel execs':>14}{'tuning cost (s)':>18}"
                 f"{'achieved time (s)':>20}")
    for name, row in results.items():
        lines.append(f"  {name:<12}{row['kernel_executions']:14.0f}"
                     f"{row['simulated_tuning_seconds']:18.4f}"
                     f"{row['achieved_time']:20.5f}")
    lines.append("  (MGA needs only the profiling runs; search tuners pay one "
                 "kernel execution per evaluation)")
    return "\n".join(lines)


register_experiment(SPEC, format_result)
