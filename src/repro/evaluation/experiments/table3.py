"""Table 3: OpenCL heterogeneous device mapping (accuracy, F1, speedups).

10-fold stratified cross-validation over the device-mapping dataset for each
GPU (AMD Tahiti 7970, NVIDIA GTX 970), comparing the MGA model against
Grewe et al., DeepTune, inst2vec, PROGRAML-only and IR2Vec-only baselines,
plus speedups over the static mapping.  Expected shape: MGA has the highest
accuracy (~98% in the paper) and the best speedup relative to the oracle.

Declared as the ``table3`` experiment spec; ``run()`` is a legacy shim.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.evaluation.metrics import geometric_mean
from repro.pipeline.registry import register_experiment
from repro.pipeline.runner import run_legacy
from repro.pipeline.spec import (
    BuildDataset,
    ExperimentSpec,
    Report,
    TrainModels,
    ref,
    stage_impl,
)
from repro.simulator.microarch import gpu_from_config

_DEFAULT_BASELINES = ["Static mapping", "Grewe et al.", "DeepTune",
                      "inst2vec", "IR2Vec", "PROGRAML"]


def _speedup_over_static(dataset, indices: Sequence[int],
                         predictions: np.ndarray, static_label: int) -> float:
    static_times = [dataset.samples[i].time_of(static_label) for i in indices]
    chosen_times = [dataset.samples[i].time_of(int(p))
                    for i, p in zip(indices, predictions)]
    return geometric_mean(np.array(static_times) / np.array(chosen_times))


def _make_approaches(include: Sequence[str], seed: int):
    from repro.core.mga import ModalityConfig
    from repro.core.tuner import DeviceMapper
    from repro.tuners.devmap_baselines import (
        DeepTuneBaseline,
        GreweBaseline,
        Inst2VecBaseline,
        StaticMappingBaseline,
        XGBoostLikeBaseline,
    )

    factories = {
        "Static mapping": lambda: StaticMappingBaseline(),
        "Grewe et al.": lambda: GreweBaseline(seed=seed),
        "DeepTune": lambda: DeepTuneBaseline(seed=seed),
        "inst2vec": lambda: Inst2VecBaseline(seed=seed),
        "IR2Vec": lambda: DeviceMapper(modalities=ModalityConfig.ir2vec(),
                                       seed=seed),
        "IR2Vec-GBT": lambda: XGBoostLikeBaseline(seed=seed),
        "PROGRAML": lambda: DeviceMapper(modalities=ModalityConfig.programl(),
                                         seed=seed),
        "MGA": lambda: DeviceMapper(modalities=ModalityConfig.mga(), seed=seed),
    }
    selected = {name: factories[name] for name in include if name in factories}
    selected["MGA"] = factories["MGA"]
    return selected


@stage_impl("table3.datasets")
def _datasets(ctx, inputs, *, gpus, max_kernels, points_per_kernel, seed):
    from repro.datasets.devmap import DevMapDatasetBuilder
    from repro.kernels import registry

    specs = registry.opencl_kernels()
    if max_kernels is not None:
        specs = specs[:max_kernels]
    datasets = {}
    for gpu_config in gpus:
        gpu = gpu_from_config(gpu_config)
        builder = DevMapDatasetBuilder(gpu, seed=seed)
        datasets[gpu.name] = builder.build(
            specs, points_per_kernel=points_per_kernel)
    return {"datasets": datasets}


@stage_impl("table3.evaluate")
def _evaluate(ctx, inputs, *, folds, epochs, seed, include_baselines):
    from repro.core.tuner import DeviceMapper
    from repro.nn import accuracy as accuracy_fn
    from repro.nn import f1_score

    raw: Dict[str, Dict[str, object]] = {}
    for gpu_name, dataset in inputs["datasets"]["datasets"].items():
        static_label = dataset.static_mapping_label()
        approaches = _make_approaches(include_baselines, seed)
        per_approach: Dict[str, Dict[str, List[float]]] = {
            name: {"acc": [], "f1": [], "speedup": []} for name in approaches}
        oracle_speedups: List[float] = []
        for train_idx, val_idx in dataset.stratified_kfold(k=folds, seed=seed):
            y_true = dataset.labels(dataset.subset(val_idx))
            for name, factory in approaches.items():
                model = factory()
                if isinstance(model, DeviceMapper):
                    model.fit(dataset, train_indices=train_idx, epochs=epochs)
                    preds = model.predict(dataset, val_idx)
                else:
                    model.fit(dataset, train_idx)
                    preds = model.predict(dataset, val_idx)
                per_approach[name]["acc"].append(accuracy_fn(preds, y_true))
                per_approach[name]["f1"].append(f1_score(preds, y_true))
                per_approach[name]["speedup"].append(
                    _speedup_over_static(dataset, val_idx, preds, static_label))
            oracle_speedups.append(_speedup_over_static(
                dataset, val_idx, y_true, static_label))
        raw[gpu_name] = {
            "per_approach": per_approach,
            "oracle_speedups": oracle_speedups,
            "num_points": float(len(dataset)),
            "gpu_fraction": float(dataset.labels().mean()),
        }
    return {"per_gpu": raw}


@stage_impl("table3.report")
def _report(ctx, inputs):
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for gpu_name, raw in inputs["evaluate"]["per_gpu"].items():
        results[gpu_name] = {
            name: {
                "accuracy": float(np.mean(vals["acc"]) * 100.0),
                "f1": float(np.mean(vals["f1"])),
                "speedup_over_static": geometric_mean(vals["speedup"]),
            }
            for name, vals in raw["per_approach"].items()
        }
        results[gpu_name]["Oracle"] = {
            "accuracy": 100.0, "f1": 1.0,
            "speedup_over_static": geometric_mean(raw["oracle_speedups"]),
        }
        results[gpu_name]["_meta"] = {
            "num_points": raw["num_points"],
            "gpu_fraction": raw["gpu_fraction"],
        }
    return results


SPEC = ExperimentSpec(
    name="table3",
    title="OpenCL heterogeneous device mapping (Table 3)",
    description="Stratified 10-fold CV of MGA vs the device-mapping "
                "baselines for each GPU.",
    params={
        "gpus": ["nvidia_gtx_970", "amd_tahiti_7970"],
        "max_kernels": None,
        "points_per_kernel": 3,
        "folds": 10,
        "epochs": 20,
        "seed": 0,
        "include_baselines": list(_DEFAULT_BASELINES),
    },
    stages=(
        BuildDataset(impl="table3.datasets", name="datasets", params={
            "gpus": ref("gpus"),
            "max_kernels": ref("max_kernels"),
            "points_per_kernel": ref("points_per_kernel"),
            "seed": ref("seed"),
        }),
        TrainModels(impl="table3.evaluate", name="evaluate",
                    inputs=("datasets",), params={
                        "folds": ref("folds"),
                        "epochs": ref("epochs"),
                        "seed": ref("seed"),
                        "include_baselines": ref("include_baselines"),
                    }),
        Report(impl="table3.report", name="report", inputs=("evaluate",)),
    ),
    quick={"max_kernels": 16, "points_per_kernel": 2, "folds": 2,
           "epochs": 4, "include_baselines": ["Static mapping",
                                              "Grewe et al."]},
)


def run(**overrides) -> Dict[str, object]:
    """Legacy shim: run the ``table3`` spec (accepts its parameters as kwargs)."""
    return run_legacy("table3", overrides)


def format_result(results: Dict[str, object]) -> str:
    lines = ["Table 3: heterogeneous device mapping"]
    for gpu, rows in results.items():
        meta = rows.get("_meta", {})
        lines.append(f"  device: {gpu} ({int(meta.get('num_points', 0))} points, "
                     f"{meta.get('gpu_fraction', 0.0) * 100:.0f}% GPU-labelled)")
        lines.append(f"    {'approach':<16}{'accuracy %':>12}{'F1':>8}"
                     f"{'speedup/static':>16}")
        for name, vals in rows.items():
            if name == "_meta":
                continue
            lines.append(f"    {name:<16}{vals['accuracy']:12.1f}"
                         f"{vals['f1']:8.2f}{vals['speedup_over_static']:16.2f}")
    return "\n".join(lines)


register_experiment(SPEC, format_result)
