"""Figure 6: thread prediction on unseen loops *and* unseen input sizes.

20% of the input sizes are held out together with the validation-fold loops;
the model must generalise across both axes.  Expected shape: MGA still close
to (but a little further from) the oracle than in Figure 4.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.mga import ModalityConfig
from repro.evaluation.experiments.common import (
    build_openmp_dataset,
    dl_tuner_speedups,
    oracle_speedups,
    select_openmp_kernels,
)
from repro.evaluation.metrics import geometric_mean
from repro.simulator.microarch import COMET_LAKE_8C, MicroArch
from repro.tuners.space import thread_search_space


def run(arch: MicroArch = COMET_LAKE_8C, max_kernels: int = 45,
        num_inputs: int = 10, folds: int = 5, epochs: int = 25,
        seed: int = 0) -> Dict[str, List[float]]:
    space = thread_search_space(arch)
    specs = select_openmp_kernels(max_kernels)
    dataset = build_openmp_dataset(arch, space, specs, num_inputs=num_inputs,
                                   seed=seed)
    mga_norm, mga_abs, oracle_abs = [], [], []
    for train_idx, val_idx in dataset.split_unseen_inputs(k=folds, seed=seed):
        sp = dl_tuner_speedups(dataset, train_idx, val_idx,
                               ModalityConfig.mga(), epochs=epochs, seed=seed)
        oracle = geometric_mean(oracle_speedups(dataset, val_idx))
        mga = geometric_mean(sp)
        mga_abs.append(mga)
        oracle_abs.append(oracle)
        mga_norm.append(mga / oracle if oracle > 0 else 0.0)
    return {"MGA": mga_abs, "Oracle": oracle_abs, "MGA_normalized": mga_norm}


def format_result(result: Dict[str, List[float]]) -> str:
    lines = ["Figure 6: unseen loops + unseen input sizes"]
    for fold, (m, o, n) in enumerate(zip(result["MGA"], result["Oracle"],
                                         result["MGA_normalized"]), start=1):
        lines.append(f"  fold {fold}: MGA {m:5.2f}x, oracle {o:5.2f}x, "
                     f"normalised {n:5.3f}")
    lines.append(f"  geomean MGA {sum(result['MGA']) / len(result['MGA']):.2f}x "
                 f"vs oracle {sum(result['Oracle']) / len(result['Oracle']):.2f}x")
    return "\n".join(lines)
