"""Figure 6: thread prediction on unseen loops *and* unseen input sizes.

20% of the input sizes are held out together with the validation-fold loops;
the model must generalise across both axes.  Expected shape: MGA still close
to (but a little further from) the oracle than in Figure 4.

Declared as the ``fig6`` experiment spec; ``run()`` is a legacy shim.
"""

from __future__ import annotations

from typing import Dict, List

from repro.evaluation.experiments.common import oracle_speedups
from repro.evaluation.metrics import geometric_mean
from repro.pipeline.registry import register_experiment
from repro.pipeline.runner import run_legacy
from repro.pipeline.spec import (
    BuildDataset,
    ExperimentSpec,
    Report,
    TrainModels,
    ref,
    stage_impl,
)
from repro.pipeline.stages import resolve_splits

_SPLIT = {"type": "unseen_inputs", "k": ref("folds"), "seed": ref("seed")}


@stage_impl("fig6.report")
def _report(ctx, inputs, *, split):
    dataset = inputs["dataset"]
    dl = inputs["dl"]["speedups"]
    _, splits = resolve_splits(dataset, split)
    mga_norm, mga_abs, oracle_abs = [], [], []
    for fold, (_, val_idx) in enumerate(splits):
        oracle = geometric_mean(oracle_speedups(dataset, val_idx))
        mga = geometric_mean(dl["MGA"][fold])
        mga_abs.append(mga)
        oracle_abs.append(oracle)
        mga_norm.append(mga / oracle if oracle > 0 else 0.0)
    return {"MGA": mga_abs, "Oracle": oracle_abs, "MGA_normalized": mga_norm}


SPEC = ExperimentSpec(
    name="fig6",
    title="Unseen loops + unseen input sizes (Figure 6)",
    description="MGA vs the oracle when both the validation loops and 20% "
                "of the input sizes are held out of training.",
    params={
        "arch": "comet_lake",
        "max_kernels": 45,
        "num_inputs": 10,
        "folds": 5,
        "epochs": 25,
        "seed": 0,
    },
    stages=(
        BuildDataset(impl="openmp.dataset", name="dataset", params={
            "arch": ref("arch"),
            "space": {"type": "threads"},
            "kernels": {"select": "openmp", "max": ref("max_kernels")},
            "targets": {"num": ref("num_inputs")},
            "seed": ref("seed"),
        }),
        TrainModels(impl="openmp.dl_speedups", name="dl",
                    inputs=("dataset",), params={
                        "split": _SPLIT,
                        "approaches": ["MGA"],
                        "epochs": ref("epochs"),
                        "seed": ref("seed"),
                    }),
        Report(impl="fig6.report", name="report", inputs=("dataset", "dl"),
               params={"split": _SPLIT}),
    ),
    quick={"max_kernels": 6, "num_inputs": 4, "folds": 2, "epochs": 4},
)


def run(**overrides) -> Dict[str, List[float]]:
    """Legacy shim: run the ``fig6`` spec (accepts its parameters as kwargs)."""
    return run_legacy("fig6", overrides)


def format_result(result: Dict[str, List[float]]) -> str:
    lines = ["Figure 6: unseen loops + unseen input sizes"]
    for fold, (m, o, n) in enumerate(zip(result["MGA"], result["Oracle"],
                                         result["MGA_normalized"]), start=1):
        lines.append(f"  fold {fold}: MGA {m:5.2f}x, oracle {o:5.2f}x, "
                     f"normalised {n:5.3f}")
    lines.append(f"  geomean MGA {sum(result['MGA']) / len(result['MGA']):.2f}x "
                 f"vs oracle {sum(result['Oracle']) / len(result['Oracle']):.2f}x")
    return "\n".join(lines)


register_experiment(SPEC, format_result)
