"""Evaluation harness: metrics and the per-figure/table experiment runners."""

from repro.evaluation.metrics import (
    geometric_mean,
    geomean_speedup,
    normalized_speedup,
    speedups_from_times,
)

__all__ = [
    "geometric_mean",
    "geomean_speedup",
    "normalized_speedup",
    "speedups_from_times",
]
