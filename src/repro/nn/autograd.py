"""Reverse-mode automatic differentiation over the ``xp`` backend seam.

This is the reproduction's replacement for PyTorch's autograd: a small
define-by-run :class:`Tensor` supporting the operations needed by the MGA
models (dense layers, gated graph convolutions, attention, autoencoders and
the fused classifier).  Gradients are verified against finite differences in
the test suite (``tests/nn/test_autograd.py``).

Performance notes
-----------------

The engine is tuned for the training fast path:

* tensors carry a float dtype (float32 or float64).  Incoming float arrays
  keep their dtype; everything else is coerced to the configurable default
  (:func:`set_default_dtype`).  Python scalars are "weak" operands, as in
  PyTorch: ``x * 0.5`` never promotes a float32 graph to float64.
* gradient accumulation is in place (``grad += g``) after the first
  contribution, instead of reallocating ``grad + g`` per edge.
* :meth:`Tensor.backward` uses an iterative topological sort, so deep graphs
  (e.g. a GGNN unrolled for many steps, or a 2000-op chain) cannot overflow
  the Python recursion limit.
* segment reductions (the message-passing primitives) can run over a
  precomputed :class:`SegmentLayout`: the index is sorted once and every
  scatter becomes a gather + ``xp.add_reduceat`` over contiguous runs,
  replacing the element-wise ``np.ufunc.at`` loop.  The naive ``xp.add_at``
  path is kept behind :func:`set_fast_segment_ops` as a numerical reference.
* every array operation routes through :data:`repro.nn.backend.xp`, the
  pluggable array-backend namespace.  The default numpy backend binds each
  ``xp`` entry to the numpy function itself, so this seam costs nothing and
  the numerics are bit-identical to direct numpy calls.

The process-global knobs here (:func:`set_default_dtype`,
:func:`set_fast_segment_ops`) are deprecated entry points; configure them
through :mod:`repro.nn.runtime`, which also owns backend selection.  Both
routes bump the config epoch, so cached tape plans can never replay state
recorded under a different configuration.
"""

from __future__ import annotations

import contextlib
import warnings
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

from . import backend as _backend
from .backend import xp

ArrayLike = Union[xp.ndarray, float, int, Sequence[float]]

_FLOAT_DTYPES = (xp.dtype(xp.float32), xp.dtype(xp.float64))

#: Dtype used when coercing non-float data into tensors and by the parameter
#: initialisers.  float64 preserves the seed numerics; training stacks opt
#: into float32 per model (``MGAModel(dtype="float32")``) for speed.
_DEFAULT_DTYPE = xp.dtype(xp.float64)

#: When True (default), segment reductions use the sorted
#: gather + ``xp.add_reduceat`` kernels; when False they fall back to the
#: original ``xp.add_at`` scatter, kept as a bit-for-bit seed reference.
_FAST_SEGMENT_OPS = True

#: Monotonic counter bumped whenever a process-global numeric knob
#: (:func:`set_default_dtype`, :func:`set_fast_segment_ops`) actually
#: changes value.  Memoised compiled state (tape plans) captures the epoch
#: at build time and treats a mismatch as a guard failure, so toggling a
#: global mid-process can never replay stale kernels.
_CONFIG_EPOCH = 0

#: Active tape recorder (see :mod:`repro.nn.tape`), or ``None`` when ops run
#: purely eagerly.  Set only via ``Tape.recording()``.
_TRACE = None


def config_epoch() -> int:
    """Current global-config epoch (see ``_CONFIG_EPOCH``)."""
    return _CONFIG_EPOCH


def _record(out: "Tensor", op: str, parents: Tuple["Tensor", ...],
            attrs: Optional[dict] = None) -> "Tensor":
    """Notify the active tape (if any) that ``out`` was produced by ``op``."""
    if _TRACE is not None and out.requires_grad:
        _TRACE.record(op, out, parents, attrs)
    return out


def _bump_config_epoch() -> None:
    global _CONFIG_EPOCH
    _CONFIG_EPOCH += 1


# a backend switch invalidates every compiled tape plan exactly like a
# dtype or segment-ops toggle does
_backend.add_change_hook(_bump_config_epoch)


def _set_default_dtype_impl(dtype) -> None:
    """Knob storage for the default dtype; called by :mod:`repro.nn.runtime`
    and the (non-deprecated) :func:`default_dtype` context manager."""
    global _DEFAULT_DTYPE
    dtype = xp.dtype(dtype)
    if dtype not in _FLOAT_DTYPES:
        raise ValueError("default dtype must be float32 or float64")
    if dtype != _DEFAULT_DTYPE:
        _bump_config_epoch()
    _DEFAULT_DTYPE = dtype


def set_default_dtype(dtype) -> None:
    """Set the dtype used for non-float inputs and parameter initialisation.

    .. deprecated:: use ``repro.nn.runtime.configure(default_dtype=...)``
       (this shim forwards there and will be removed one release after the
       runtime API landed).
    """
    warnings.warn(
        "set_default_dtype() is deprecated; use "
        "repro.nn.runtime.configure(default_dtype=...)",
        DeprecationWarning, stacklevel=2)
    from . import runtime
    runtime.configure(default_dtype=dtype)


def get_default_dtype() -> xp.dtype:
    """The current default float dtype (see :mod:`repro.nn.runtime`)."""
    return _DEFAULT_DTYPE


@contextlib.contextmanager
def default_dtype(dtype) -> Iterator[None]:
    """Context manager that temporarily overrides the default dtype."""
    previous = _DEFAULT_DTYPE
    _set_default_dtype_impl(dtype)
    try:
        yield
    finally:
        _set_default_dtype_impl(previous)


def _set_fast_segment_ops_impl(enabled: bool) -> None:
    """Knob storage for the segment-ops toggle; called by
    :mod:`repro.nn.runtime` and :func:`use_fast_segment_ops`."""
    global _FAST_SEGMENT_OPS
    enabled = bool(enabled)
    if enabled != _FAST_SEGMENT_OPS:
        _bump_config_epoch()
    _FAST_SEGMENT_OPS = enabled


def set_fast_segment_ops(enabled: bool) -> None:
    """Toggle the sorted-segment (reduceat) kernels globally.

    .. deprecated:: use ``repro.nn.runtime.configure(fast_segment_ops=...)``
       (this shim forwards there and will be removed one release after the
       runtime API landed).
    """
    warnings.warn(
        "set_fast_segment_ops() is deprecated; use "
        "repro.nn.runtime.configure(fast_segment_ops=...)",
        DeprecationWarning, stacklevel=2)
    from . import runtime
    runtime.configure(fast_segment_ops=enabled)


def fast_segment_ops_enabled() -> bool:
    return _FAST_SEGMENT_OPS


@contextlib.contextmanager
def use_fast_segment_ops(enabled: bool) -> Iterator[None]:
    """Context manager variant of the segment-ops toggle."""
    previous = _FAST_SEGMENT_OPS
    _set_fast_segment_ops_impl(enabled)
    try:
        yield
    finally:
        _set_fast_segment_ops_impl(previous)


# ----------------------------------------------------------------------
# sorted-segment reductions
# ----------------------------------------------------------------------
class SegmentLayout:
    """Precomputed sort order for repeated segment reductions over one index.

    Sorting ``index`` once (stable, so ties keep their original order) turns
    every subsequent scatter-add over it into ``data[order]`` followed by one
    ``xp.add_reduceat`` across the contiguous runs — a CSR-style layout that
    vectorises across feature columns instead of looping per element the way
    ``xp.add_at`` does.  Layouts are cached per batched graph, so the sort is
    paid once per batch, not once per operation per epoch.
    """

    __slots__ = ("index", "num_segments", "order", "starts", "segments",
                 "counts")

    def __init__(self, index: xp.ndarray, num_segments: int):
        index = xp.asarray(index, dtype=xp.int64)
        self.index = index
        self.num_segments = int(num_segments)
        order = xp.argsort(index, kind="stable")
        sorted_index = index[order]
        if sorted_index.size:
            run_start = xp.empty(sorted_index.size, dtype=bool)
            run_start[0] = True
            xp.not_equal(sorted_index[1:], sorted_index[:-1],
                         out=run_start[1:])
            starts = xp.flatnonzero(run_start)
            segments = sorted_index[starts]
        else:
            starts = xp.zeros(0, dtype=xp.int64)
            segments = xp.zeros(0, dtype=xp.int64)
        self.order = order
        self.starts = starts
        self.segments = segments
        self.counts = xp.bincount(index, minlength=self.num_segments)


def _segment_sum_data(data: xp.ndarray, index: xp.ndarray, num_segments: int,
                      layout: Optional[SegmentLayout]) -> xp.ndarray:
    """Sum rows of ``data`` into ``num_segments`` buckets given by ``index``."""
    data = xp.asarray(data)
    out = xp.zeros((num_segments,) + data.shape[1:], dtype=data.dtype)
    if index.size == 0:
        return out
    if _FAST_SEGMENT_OPS:
        if layout is None:
            layout = SegmentLayout(index, num_segments)
        if layout.starts.size:
            out[layout.segments] = xp.add_reduceat(
                data[layout.order], layout.starts, axis=0)
        return out
    xp.add_at(out, index, data)
    return out


def _unbroadcast(grad: xp.ndarray, shape: Tuple[int, ...]) -> xp.ndarray:
    """Sum ``grad`` back down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # sum over leading broadcast dimensions
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over axes that were 1 in the original shape
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with a gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "grad_arena", "_backward",
                 "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 parents: Tuple["Tensor", ...] = (),
                 backward: Optional[Callable[[xp.ndarray], None]] = None,
                 name: str = "", dtype=None):
        arr = xp.asarray(data)
        if dtype is not None:
            arr = arr.astype(xp.dtype(dtype), copy=False)
        elif arr.dtype not in _FLOAT_DTYPES:
            arr = arr.astype(_DEFAULT_DTYPE)
        self.data = arr
        self.grad: Optional[xp.ndarray] = None
        self.requires_grad = bool(requires_grad)
        #: True once a tape plan has pointed ``grad`` at a persistent arena
        #: buffer; :meth:`zero_grad` then clears in place instead of dropping
        #: the buffer, so its identity survives across steps.
        self.grad_arena = False
        self._backward = backward
        self._parents = parents
        self.name = name

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self) -> xp.dtype:
        return self.data.dtype

    def numpy(self) -> xp.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        """Clear the gradient.

        Ordinarily drops the array (the next backward's first contribution
        re-establishes ownership).  Once a tape plan has installed an arena
        buffer (``grad_arena``), the buffer is zeroed *in place* instead so
        its identity is stable across steps; eager ``_accumulate`` then adds
        into it, which is value-identical to the copy-on-first-write path.
        """
        if self.grad_arena and self.grad is not None \
                and self.grad.dtype == self.data.dtype \
                and self.grad.shape == self.data.shape:
            self.grad.fill(0.0)
        else:
            self.grad = None

    def _accumulate(self, grad: xp.ndarray) -> None:
        if self.grad is None:
            # always copy: the incoming array may be shared with another
            # parent's gradient (e.g. both operands of `a + a`)
            self.grad = xp.array(grad, dtype=self.data.dtype, copy=True)
        else:
            # in-place accumulation: no reallocation per contribution
            self.grad += grad

    def _accumulate_owned(self, grad: xp.ndarray) -> None:
        """Accumulate a gradient array the caller guarantees is fresh.

        Backward closures that just allocated ``grad`` (a matmul product, an
        element-wise product, a reduction ...) hand over ownership instead of
        paying :meth:`_accumulate`'s defensive copy.  Never pass an array
        that aliases the child's gradient or another tensor's buffer.
        """
        if self.grad is None:
            self.grad = grad
        else:
            self.grad += grad

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: xp.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[xp.ndarray], None]) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, parents=parents,
                     backward=backward if requires else None)
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            # weak scalar: keeps the tensor dtype, needs no graph node for
            # the constant and no unbroadcast in the backward pass
            def backward(grad: xp.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(grad)

            return _record(Tensor._make(self.data + other, (self,), backward),
                           "add_s", (self,), {"c": other})
        other = as_tensor(other)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                g = _unbroadcast(grad, self.shape)
                (self._accumulate if g is grad else self._accumulate_owned)(g)
            if other.requires_grad:
                g = _unbroadcast(grad, other.shape)
                (other._accumulate if g is grad else other._accumulate_owned)(g)

        return _record(Tensor._make(self.data + other.data, (self, other),
                                    backward), "add_t", (self, other))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(-grad)

        return _record(Tensor._make(-self.data, (self,), backward),
                       "neg", (self,))

    def __sub__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return self + (-other)
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            def backward(grad: xp.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate_owned(-grad)

            return _record(Tensor._make(other - self.data, (self,), backward),
                           "rsub_s", (self,), {"c": other})
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            scale = other

            def backward(grad: xp.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate_owned(grad * scale)

            return _record(Tensor._make(self.data * scale, (self,), backward),
                           "mul_s", (self,), {"c": scale})
        other = as_tensor(other)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(_unbroadcast(grad * other.data,
                                                    self.shape))
            if other.requires_grad:
                other._accumulate_owned(_unbroadcast(grad * self.data,
                                                     other.shape))

        return _record(Tensor._make(self.data * other.data, (self, other),
                                    backward), "mul_t", (self, other))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            def backward(grad: xp.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate_owned(grad / other)

            return _record(Tensor._make(self.data / other, (self,), backward),
                           "div_s", (self,), {"c": other})
        other = as_tensor(other)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(_unbroadcast(grad / other.data,
                                                    self.shape))
            if other.requires_grad:
                other._accumulate_owned(_unbroadcast(
                    -grad * self.data / (other.data ** 2), other.shape))

        return _record(Tensor._make(self.data / other.data, (self, other),
                                    backward), "div_t", (self, other))

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(
                    grad * exponent * self.data ** (exponent - 1.0))

        return _record(Tensor._make(self.data ** exponent, (self,), backward),
                       "pow", (self,), {"e": exponent})

    def matmul(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate_owned(self.data.T @ grad)

        return _record(Tensor._make(self.data @ other.data, (self, other),
                                    backward), "matmul", (self, other))

    __matmul__ = matmul

    def linear(self, weight: "Tensor",
               bias: Optional["Tensor"] = None) -> "Tensor":
        """Fused affine map ``self @ weight + bias`` (one graph node).

        Equivalent to ``self @ weight + bias`` but with a single backward
        closure; the bias is added in place on the freshly allocated matmul
        output, so the values are identical to the two-node form.
        """
        out = self.data @ weight.data
        if bias is not None:
            out += bias.data

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad @ weight.data.T)
            if weight.requires_grad:
                weight._accumulate_owned(self.data.T @ grad)
            if bias is not None and bias.requires_grad:
                bias._accumulate_owned(grad.sum(axis=0))

        parents = (self, weight) if bias is None else (self, weight, bias)
        return _record(Tensor._make(out, parents, backward), "linear", parents)

    # ------------------------------------------------------------------
    # reductions / shaping
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        def backward(grad: xp.ndarray) -> None:
            if not self.requires_grad:
                return
            g = xp.asarray(grad)
            if axis is None:
                self._accumulate_owned(xp.full(self.shape, float(g),
                                               dtype=self.data.dtype))
            else:
                if not keepdims:
                    g = xp.expand_dims(g, axis)
                self._accumulate_owned(xp.broadcast_to(g, self.shape).copy())

        return _record(Tensor._make(self.data.sum(axis=axis, keepdims=keepdims),
                                    (self,), backward),
                       "sum", (self,), {"axis": axis, "keepdims": keepdims})

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        old_shape = self.shape

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(old_shape))

        return _record(Tensor._make(self.data.reshape(*shape), (self,),
                                    backward),
                       "reshape", (self,), {"shape": shape, "old": old_shape})

    @property
    def T(self) -> "Tensor":
        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return _record(Tensor._make(self.data.T, (self,), backward),
                       "transpose", (self,))

    def slice_cols(self, start: int, stop: int) -> "Tensor":
        """Columns ``[start:stop)`` of a 2-D tensor (differentiable view)."""
        start, stop = int(start), int(stop)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                g = xp.zeros_like(self.data)
                g[:, start:stop] = grad
                self._accumulate_owned(g)

        return _record(Tensor._make(self.data[:, start:stop], (self,),
                                    backward),
                       "slice_cols", (self,), {"start": start, "stop": stop})

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad * mask)

        return _record(Tensor._make(self.data * mask, (self,), backward),
                       "relu", (self,))

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = xp.where(self.data > 0, 1.0, slope).astype(self.data.dtype)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad * mask)

        return _record(Tensor._make(self.data * mask, (self,), backward),
                       "leaky_relu", (self,), {"slope": slope})

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + xp.exp(-xp.clip(self.data, -60.0, 60.0)))

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad * out_data * (1.0 - out_data))

        return _record(Tensor._make(out_data, (self,), backward),
                       "sigmoid", (self,))

    def tanh(self) -> "Tensor":
        out_data = xp.tanh(self.data)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad * (1.0 - out_data ** 2))

        return _record(Tensor._make(out_data, (self,), backward),
                       "tanh", (self,))

    def exp(self) -> "Tensor":
        out_data = xp.exp(xp.clip(self.data, -60.0, 60.0))

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad * out_data)

        return _record(Tensor._make(out_data, (self,), backward),
                       "exp", (self,))

    def log(self) -> "Tensor":
        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad / xp.maximum(self.data, 1e-12))

        return _record(Tensor._make(xp.log(xp.maximum(self.data, 1e-12)),
                                    (self,), backward), "log", (self,))

    def sub_max(self, axis: Optional[int] = None,
                keepdims: bool = False) -> "Tensor":
        """``self - self.data.max(axis, keepdims)`` as one primitive.

        The max shift used to stabilise softmax-style expressions is a
        *data-dependent constant*: its VJP is the identity (the gradient of a
        constant shift vanishes almost everywhere), but its forward value
        must be recomputed from fresh activations every step.  Folding the
        shift into a primitive keeps it replayable on a tape, and is
        bit-for-bit the two-node form (IEEE: ``x + (-m) == x - m``).
        """
        m = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)

        return _record(Tensor._make(self.data - m, (self,), backward),
                       "sub_max", (self,),
                       {"axis": axis, "keepdims": keepdims})

    # ------------------------------------------------------------------
    # indexing / scatter-gather (the message-passing primitives)
    # ------------------------------------------------------------------
    def index_select(self, index: xp.ndarray,
                     layout: Optional[SegmentLayout] = None) -> "Tensor":
        """Gather rows: ``out[i] = self[index[i]]``.

        ``layout`` is an optional precomputed :class:`SegmentLayout` over
        ``index`` (with ``num_segments == len(self)``) used to vectorise the
        scatter in the backward pass.
        """
        index = xp.asarray(index, dtype=xp.int64)
        num_rows = self.data.shape[0]

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(_segment_sum_data(grad, index, num_rows,
                                                         layout))

        return _record(Tensor._make(self.data[index], (self,), backward),
                       "index_select", (self,),
                       {"index": index, "layout": layout,
                        "num_rows": num_rows})

    def scatter_add(self, index: xp.ndarray, num_rows: int,
                    layout: Optional[SegmentLayout] = None) -> "Tensor":
        """Scatter rows: ``out[index[i]] += self[i]`` with ``num_rows`` rows."""
        index = xp.asarray(index, dtype=xp.int64)
        out_data = _segment_sum_data(self.data, index, int(num_rows), layout)

        def backward(grad: xp.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(xp.asarray(grad)[index])

        return _record(Tensor._make(out_data, (self,), backward),
                       "scatter_add", (self,),
                       {"index": index, "layout": layout,
                        "num_rows": int(num_rows)})

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[xp.ndarray] = None) -> None:
        """Backpropagate from this tensor (must be scalar unless ``grad``)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar")
            grad = xp.ones_like(self.data)
        # iterative post-order DFS: same visit order as the recursive
        # version, but immune to RecursionError on deep graphs (a tensor
        # whose parents don't require grad heads a dead subgraph — skip it)
        topo: List[Tensor] = []
        visited = {id(self)}
        stack: List[Tuple[Tensor, int]] = [(self, 0)]
        while stack:
            node, next_parent = stack[-1]
            if next_parent < len(node._parents):
                stack[-1] = (node, next_parent + 1)
                parent = node._parents[next_parent]
                if parent.requires_grad and id(parent) not in visited:
                    visited.add(id(parent))
                    stack.append((parent, 0))
            else:
                topo.append(node)
                stack.pop()
        self._accumulate(xp.asarray(grad, dtype=self.data.dtype))
        # children appear after their parents in `topo`, so the reversed walk
        # guarantees a node's output gradient is complete before its
        # _backward distributes it to the parents
        for tensor in reversed(topo):
            if tensor._backward is not None and tensor.grad is not None:
                tensor._backward(tensor.grad)


def as_tensor(value: Union[Tensor, ArrayLike]) -> Tensor:
    """Coerce numbers / arrays to (constant) tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


# ----------------------------------------------------------------------
# free functions
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = xp.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = xp.cumsum([0] + sizes)

    def backward(grad: xp.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(grad[tuple(slicer)])

    return _record(Tensor._make(data, tuple(tensors), backward),
                   "concat", tuple(tensors),
                   {"axis": axis, "offsets": offsets})


def stack_rows(tensors: Sequence[Tensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor (row per input)."""
    tensors = [as_tensor(t) for t in tensors]
    data = xp.stack([t.data for t in tensors], axis=0)

    def backward(grad: xp.ndarray) -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(grad[i])

    return _record(Tensor._make(data, tuple(tensors), backward),
                   "stack_rows", tuple(tensors))


def segment_sum(x: Tensor, segment_ids: xp.ndarray, num_segments: int,
                layout: Optional[SegmentLayout] = None) -> Tensor:
    """Sum of rows of ``x`` grouped by ``segment_ids``."""
    return x.scatter_add(xp.asarray(segment_ids, dtype=xp.int64),
                         num_segments, layout=layout)


def segment_mean(x: Tensor, segment_ids: xp.ndarray, num_segments: int,
                 layout: Optional[SegmentLayout] = None) -> Tensor:
    """Mean of rows of ``x`` grouped by ``segment_ids`` (empty segments → 0)."""
    segment_ids = xp.asarray(segment_ids, dtype=xp.int64)
    if layout is not None:
        counts = layout.counts.astype(xp.float64)
    else:
        counts = xp.bincount(segment_ids, minlength=num_segments).astype(xp.float64)
    counts = xp.maximum(counts, 1.0)
    sums = x.scatter_add(segment_ids, num_segments, layout=layout)
    inv = Tensor((1.0 / counts[:, None]).astype(sums.data.dtype, copy=False))
    return sums * inv


def dropout(x: Tensor, rate: float, rng: xp.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout (one traced primitive).

    The mask is drawn from ``rng`` at every execution — including tape
    replays, which capture the generator object itself — so the rng stream
    advances exactly as in eager mode.  Values match the historical
    ``x * Tensor(mask)`` two-node form bit for bit.
    """
    if not training or rate <= 0.0:
        return x
    mask = (rng.random(x.shape) >= rate).astype(x.data.dtype) / (1.0 - rate)

    def backward(grad: xp.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(grad * mask)

    return _record(Tensor._make(x.data * mask, (x,), backward),
                   "dropout", (x,), {"rate": float(rate), "rng": rng})


def gradcheck(func: Callable[..., Tensor], inputs: Sequence[Tensor],
              eps: float = 1e-6, atol: float = 1e-4) -> bool:
    """Finite-difference gradient check of ``func`` w.r.t. ``inputs``.

    Inputs are promoted to float64 in place (finite differences with a 1e-6
    step are meaningless at float32 precision), and tensors created inside
    ``func`` default to float64 for the duration of the check.
    """
    inputs = list(inputs)
    for t in inputs:
        t.data = xp.asarray(t.data, dtype=xp.float64)
        t.zero_grad()
    with default_dtype(xp.float64):
        output = func(*inputs)
        output.backward()
        for tensor in inputs:
            if not tensor.requires_grad:
                continue
            analytic = tensor.grad if tensor.grad is not None else xp.zeros_like(tensor.data)
            numeric = xp.zeros_like(tensor.data)
            flat = tensor.data.reshape(-1)
            num_flat = numeric.reshape(-1)
            for i in range(flat.size):
                original = flat[i]
                flat[i] = original + eps
                plus = func(*inputs).data.sum()
                flat[i] = original - eps
                minus = func(*inputs).data.sum()
                flat[i] = original
                num_flat[i] = (plus - minus) / (2 * eps)
            if not xp.allclose(analytic, numeric, atol=atol, rtol=1e-3):
                return False
    return True
