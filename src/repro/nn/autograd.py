"""Reverse-mode automatic differentiation on numpy arrays.

This is the reproduction's replacement for PyTorch's autograd: a small
define-by-run :class:`Tensor` supporting the operations needed by the MGA
models (dense layers, gated graph convolutions, attention, autoencoders and
the fused classifier).  Gradients are verified against finite differences in
the test suite (``tests/nn/test_autograd.py``).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # sum over leading broadcast dimensions
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over axes that were 1 in the original shape
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with a gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 parents: Tuple["Tensor", ...] = (),
                 backward: Optional[Callable[[np.ndarray], None]] = None,
                 name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward = backward
        self._parents = parents
        self.name = name

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, parents=parents,
                     backward=backward if requires else None)
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(
                    -grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(self.data ** exponent, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # reductions / shaping
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is None:
                self._accumulate(np.full(self.shape, float(g)))
            else:
                if not keepdims:
                    g = np.expand_dims(g, axis)
                self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims),
                            (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        old_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(old_shape))

        return Tensor._make(self.data.reshape(*shape), (self,), backward)

    @property
    def T(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(self.data.T, (self,), backward)

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = np.where(self.data > 0, 1.0, slope)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / np.maximum(self.data, 1e-12))

        return Tensor._make(np.log(np.maximum(self.data, 1e-12)), (self,),
                            backward)

    # ------------------------------------------------------------------
    # indexing / scatter-gather (the message-passing primitives)
    # ------------------------------------------------------------------
    def index_select(self, index: np.ndarray) -> "Tensor":
        """Gather rows: ``out[i] = self[index[i]]``."""
        index = np.asarray(index, dtype=np.int64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                acc = np.zeros_like(self.data)
                np.add.at(acc, index, grad)
                self._accumulate(acc)

        return Tensor._make(self.data[index], (self,), backward)

    def scatter_add(self, index: np.ndarray, num_rows: int) -> "Tensor":
        """Scatter rows: ``out[index[i]] += self[i]`` with ``num_rows`` rows."""
        index = np.asarray(index, dtype=np.int64)
        out_data = np.zeros((num_rows,) + self.data.shape[1:], dtype=np.float64)
        np.add.at(out_data, index, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[index])

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (must be scalar unless ``grad``)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(t: Tensor) -> None:
            if id(t) in visited:
                return
            visited.add(id(t))
            for parent in t._parents:
                visit(parent)
            topo.append(t)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        # children appear after their parents in `topo`, so the reversed walk
        # guarantees a node's output gradient is complete before its
        # _backward distributes it to the parents
        for tensor in reversed(topo):
            if tensor._backward is not None and tensor.grad is not None:
                tensor._backward(tensor.grad)


def as_tensor(value: Union[Tensor, ArrayLike]) -> Tensor:
    """Coerce numbers / arrays to (constant) tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


# ----------------------------------------------------------------------
# free functions
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), backward)


def stack_rows(tensors: Sequence[Tensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor (row per input)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=0)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(grad[i])

    return Tensor._make(data, tuple(tensors), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows of ``x`` grouped by ``segment_ids`` (empty segments → 0)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    sums = x.scatter_add(segment_ids, num_segments)
    inv = Tensor(1.0 / counts[:, None])
    return sums * inv


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout."""
    if not training or rate <= 0.0:
        return x
    mask = (rng.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * Tensor(mask)


def gradcheck(func: Callable[..., Tensor], inputs: Sequence[Tensor],
              eps: float = 1e-6, atol: float = 1e-4) -> bool:
    """Finite-difference gradient check of ``func`` w.r.t. ``inputs``."""
    for t in inputs:
        t.zero_grad()
    output = func(*inputs)
    output.backward()
    for tensor in inputs:
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = np.zeros_like(tensor.data)
        flat = tensor.data.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = func(*inputs).data.sum()
            flat[i] = original - eps
            minus = func(*inputs).data.sum()
            flat[i] = original
            num_flat[i] = (plus - minus) / (2 * eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=1e-3):
            return False
    return True
