"""Losses, activations-as-functions and classification metrics."""

from __future__ import annotations

from typing import Union

from repro.nn.autograd import Tensor, as_tensor
from repro.nn.backend import xp


def softmax(logits: Tensor, axis: int = 1) -> Tensor:
    """Numerically-stable softmax along ``axis`` (differentiable)."""
    logits = as_tensor(logits)
    # sub_max is the same shift as `logits - Tensor(max)` bit for bit
    # (IEEE x + (-m) == x - m) but stays a single replayable primitive
    shifted = logits.sub_max(axis=axis, keepdims=True)
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = 1) -> Tensor:
    """log(softmax(x)) computed stably."""
    logits = as_tensor(logits)
    shifted = logits.sub_max(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: xp.ndarray,
                  class_weights: Union[xp.ndarray, None] = None) -> Tensor:
    """Mean categorical cross-entropy of integer ``targets``."""
    targets = xp.asarray(targets, dtype=xp.int64)
    n, c = logits.shape
    if targets.shape[0] != n:
        raise ValueError("logits and targets disagree on the batch size")
    if targets.min() < 0 or targets.max() >= c:
        raise ValueError("target class out of range")
    log_probs = log_softmax(logits, axis=1)
    onehot = xp.zeros((n, c), dtype=log_probs.data.dtype)
    onehot[xp.arange(n), targets] = 1.0
    if class_weights is not None:
        onehot *= xp.asarray(class_weights, dtype=onehot.dtype)[targets][:, None]
    picked = log_probs * Tensor(onehot)
    return -(picked.sum() * (1.0 / n))


def binary_cross_entropy(probs: Tensor, targets: xp.ndarray) -> Tensor:
    """Mean BCE of probabilities in (0, 1) against 0/1 targets."""
    targets = xp.asarray(targets, dtype=xp.float64).reshape(probs.shape)
    t = Tensor(targets)
    eps = 1e-7
    loss = -(t * (probs + eps).log() + (Tensor(1.0) - t) * (Tensor(1.0 + eps) - probs).log())
    return loss.mean()


def mse_loss(prediction: Tensor, target: Union[Tensor, xp.ndarray]) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


# ----------------------------------------------------------------------
# metrics (plain numpy, no gradients)
# ----------------------------------------------------------------------
def accuracy(predictions: xp.ndarray, targets: xp.ndarray) -> float:
    """Fraction of exact matches."""
    predictions = xp.asarray(predictions)
    targets = xp.asarray(targets)
    if predictions.size == 0:
        return 0.0
    return float(xp.mean(predictions == targets))


def f1_score(predictions: xp.ndarray, targets: xp.ndarray,
             average: str = "macro") -> float:
    """Macro- or binary-averaged F1 score."""
    predictions = xp.asarray(predictions)
    targets = xp.asarray(targets)
    classes = xp.unique(xp.concatenate([predictions, targets]))
    scores = []
    for cls in classes:
        tp = float(xp.sum((predictions == cls) & (targets == cls)))
        fp = float(xp.sum((predictions == cls) & (targets != cls)))
        fn = float(xp.sum((predictions != cls) & (targets == cls)))
        precision = tp / (tp + fp) if tp + fp > 0 else 0.0
        recall = tp / (tp + fn) if tp + fn > 0 else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall > 0 else 0.0)
        scores.append(f1)
    if average == "binary" and len(classes) == 2:
        return scores[1]
    return float(xp.mean(scores))
