"""Parameter initialisation schemes."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation (ReLU gain)."""
    fan_in = shape[0]
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation (used for GRU recurrent weights)."""
    a = rng.standard_normal(shape)
    q, r = np.linalg.qr(a if shape[0] >= shape[1] else a.T)
    q = q * np.sign(np.diag(r))
    return q if shape[0] >= shape[1] else q.T
