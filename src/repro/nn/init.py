"""Parameter initialisation schemes.

All initialisers draw in float64 (so seeded draws are reproducible across
dtype settings) and cast to the autograd default dtype
(:func:`repro.nn.autograd.set_default_dtype`); models with an explicit
``dtype`` argument cast again via ``Module.to_dtype``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.autograd import get_default_dtype


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(get_default_dtype(),
                                                         copy=False)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation (ReLU gain)."""
    fan_in = shape[0]
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(get_default_dtype(),
                                                         copy=False)


def orthogonal(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation (used for GRU recurrent weights)."""
    a = rng.standard_normal(shape)
    q, r = np.linalg.qr(a if shape[0] >= shape[1] else a.T)
    q = q * np.sign(np.diag(r))
    result = q if shape[0] >= shape[1] else q.T
    return result.astype(get_default_dtype(), copy=False)
