"""Parameter initialisation schemes.

All initialisers draw in float64 (so seeded draws are reproducible across
dtype settings) and cast to the autograd default dtype
(:func:`repro.nn.autograd.set_default_dtype`); models with an explicit
``dtype`` argument cast again via ``Module.to_dtype``.
"""

from __future__ import annotations

from typing import Tuple

from repro.nn.autograd import get_default_dtype
from repro.nn.backend import xp


def xavier_uniform(shape: Tuple[int, ...], rng: xp.Generator) -> xp.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = xp.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(get_default_dtype(),
                                                         copy=False)


def kaiming_uniform(shape: Tuple[int, ...], rng: xp.Generator) -> xp.ndarray:
    """He/Kaiming uniform initialisation (ReLU gain)."""
    fan_in = shape[0]
    limit = xp.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(get_default_dtype(),
                                                         copy=False)


def orthogonal(shape: Tuple[int, int], rng: xp.Generator) -> xp.ndarray:
    """Orthogonal initialisation (used for GRU recurrent weights)."""
    a = rng.standard_normal(shape)
    q, r = xp.qr(a if shape[0] >= shape[1] else a.T)
    q = q * xp.sign(xp.diag(r))
    result = q if shape[0] >= shape[1] else q.T
    return result.astype(get_default_dtype(), copy=False)
