"""Deep-learning stack (autograd, layers, optimisers, scalers).

Replaces PyTorch in the reproduction.  See :mod:`repro.nn.autograd` for the
reverse-mode engine, :mod:`repro.nn.layers` for the module system and
:mod:`repro.nn.optim` for SGD / Adam / AdamW (the paper trains with AdamW).
Array operations route through the pluggable backend seam in
:mod:`repro.nn.backend` (numpy reference, instrumented ``checked``,
optional cupy/torch adapters); configure it — together with the default
dtype and segment-ops knobs — via :mod:`repro.nn.runtime`.
"""

from repro.nn import backend, runtime
from repro.nn.autograd import (
    SegmentLayout,
    Tensor,
    as_tensor,
    concat,
    config_epoch,
    default_dtype,
    dropout,
    fast_segment_ops_enabled,
    get_default_dtype,
    gradcheck,
    segment_mean,
    segment_sum,
    set_default_dtype,
    set_fast_segment_ops,
    stack_rows,
    use_fast_segment_ops,
)
from repro.nn.functional import (
    accuracy,
    binary_cross_entropy,
    cross_entropy,
    f1_score,
    log_softmax,
    mse_loss,
    softmax,
)
from repro.nn.layers import (
    Dropout,
    Linear,
    Module,
    MLP,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.backend import xp
from repro.nn.optim import SGD, Adam, AdamW, Optimizer
from repro.nn.scalers import GaussRankScaler, MinMaxScaler, StandardScaler
from repro.nn.tape import TapeRunner, TapeUnsupported
from repro.nn.training import (
    EarlyStopping,
    iterate_minibatches,
    set_seed,
    train_epoch,
)

__all__ = [
    "backend",
    "runtime",
    "xp",
    "Tensor",
    "SegmentLayout",
    "as_tensor",
    "concat",
    "stack_rows",
    "segment_mean",
    "segment_sum",
    "dropout",
    "gradcheck",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "fast_segment_ops_enabled",
    "set_fast_segment_ops",
    "use_fast_segment_ops",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy",
    "mse_loss",
    "accuracy",
    "f1_score",
    "Module",
    "Linear",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "StandardScaler",
    "MinMaxScaler",
    "GaussRankScaler",
    "EarlyStopping",
    "iterate_minibatches",
    "set_seed",
    "config_epoch",
    "TapeRunner",
    "TapeUnsupported",
    "train_epoch",
]
