"""Unified runtime configuration for the nn/gnn stack.

One coherent surface for the process-global numeric knobs that were
previously scattered free functions:

* ``default_dtype`` — dtype for non-float inputs and parameter init
  (was :func:`repro.nn.autograd.set_default_dtype`),
* ``fast_segment_ops`` — sorted-run ``reduceat`` segment kernels vs the
  ``add_at`` reference scatter (was ``set_fast_segment_ops``),
* ``backend`` — the active array backend behind the ``xp`` seam
  (:mod:`repro.nn.backend`; new with this API).

Use :func:`configure` for permanent changes, :func:`use` to scope a change
to a ``with`` block, :func:`config` for the current snapshot.  Every
*actual* change (setting a knob to its current value is a no-op) bumps the
tape config epoch, so compiled tape plans recorded under a different
configuration guard-fail and re-record instead of replaying stale kernels.

The legacy free functions remain as thin shims that emit
``DeprecationWarning`` and forward here; the context managers
``default_dtype`` / ``use_fast_segment_ops`` are unchanged, undeprecated
conveniences over the same storage.

Example::

    from repro.nn import runtime

    runtime.configure(backend="checked")
    with runtime.use(default_dtype="float32", fast_segment_ops=False):
        model.fit(...)
    print(runtime.describe())
"""

from __future__ import annotations

import contextlib
from typing import Iterator, NamedTuple, Optional

from . import autograd as _ag
from . import backend as _backend
from .backend import xp


class RuntimeConfig(NamedTuple):
    """Immutable snapshot of the three global knobs."""

    default_dtype: "xp.dtype"
    fast_segment_ops: bool
    backend: str


def config() -> RuntimeConfig:
    """The current runtime configuration (a snapshot, not a live view)."""
    return RuntimeConfig(
        default_dtype=_ag.get_default_dtype(),
        fast_segment_ops=_ag.fast_segment_ops_enabled(),
        backend=_backend.active_backend_name(),
    )


def configure(*, default_dtype=None, fast_segment_ops: Optional[bool] = None,
              backend: Optional[str] = None) -> RuntimeConfig:
    """Set any subset of the runtime knobs; returns the new snapshot.

    Arguments left as ``None`` are untouched.  Each knob that actually
    changes value bumps the tape config epoch exactly once; re-asserting
    the current value is free.  ``backend`` must name a registered,
    available backend (:class:`repro.nn.backend.BackendUnavailable` is
    raised when the library is missing, ``KeyError`` for unknown names).
    """
    if backend is not None:
        _backend.set_active_backend(backend)
    if default_dtype is not None:
        _ag._set_default_dtype_impl(default_dtype)
    if fast_segment_ops is not None:
        _ag._set_fast_segment_ops_impl(fast_segment_ops)
    return config()


@contextlib.contextmanager
def use(*, default_dtype=None, fast_segment_ops: Optional[bool] = None,
        backend: Optional[str] = None) -> Iterator[RuntimeConfig]:
    """Scoped :func:`configure`: restores the previous values on exit.

    Yields the in-scope snapshot.  Restoration bumps the epoch again for
    every knob that changed, so plans compiled inside the scope cannot
    leak out of it.
    """
    previous = config()
    applied = configure(default_dtype=default_dtype,
                        fast_segment_ops=fast_segment_ops,
                        backend=backend)
    try:
        yield applied
    finally:
        configure(default_dtype=previous.default_dtype,
                  fast_segment_ops=previous.fast_segment_ops,
                  backend=previous.backend)


def describe() -> dict:
    """Diagnostic dict: current knobs, config epoch, backend availability."""
    snapshot = config()
    active = _backend.active_backend()
    return {
        "default_dtype": str(snapshot.default_dtype),
        "fast_segment_ops": snapshot.fast_segment_ops,
        "backend": active.describe(),
        "available_backends": _backend.available_backends(),
        "config_epoch": _ag.config_epoch(),
    }
