"""Pluggable array backends for the nn/gnn stack.

Every array operation on the training and serving hot paths routes through
``xp`` — a process-global namespace object bound to the *active*
:class:`ArrayBackend`.  The contract is the ~45 operations the codebase
actually uses (ufuncs with ``out=``, the segment primitives ``add_at`` /
``add_reduceat``, ``take``, constructors, dtype objects, RNG), plus the
numpy ndarray method/operator surface (``.sum``, ``.astype``, ``@``,
fancy indexing) that backend arrays must provide.

Backends:

``numpy``
    The reference implementation.  Every namespace entry *is* the numpy
    function object itself — zero wrapper overhead, and therefore
    bit-identical to calling numpy directly (the seam is a rename, not a
    reimplementation).

``checked``
    Numpy wrapped in instrumentation, used in CI: counts op calls,
    explicit array constructions and out-of-place temporaries, and asserts
    the ``out=`` aliasing contract (a routed call given ``out=`` must
    return that exact buffer).  Numerically it calls the same numpy
    functions, so results stay bitwise identical to the ``numpy`` backend.

``cupy`` / ``torch``
    Optional device adapters, feature-detected at import of the library
    (never at import of this module) and skipped cleanly when absent.
    ``cupy`` arrays are ndarray-method compatible, so the full Tensor /
    tape stack can run on them; parity with numpy is *to tolerance*, not
    bitwise (different kernels, different reduction orders).  The
    ``torch`` adapter covers the functional ``xp`` namespace (ufuncs,
    segment ops, constructors) for kernel-level use; the autograd Tensor
    stack additionally needs numpy's ndarray method surface, which torch
    tensors do not provide — selecting it for training raises.

Switching the active backend bumps the global config epoch (the hooks are
registered by :mod:`repro.nn.autograd`), so cached tape plans recorded
against another backend guard-fail and re-record instead of replaying
stale kernels.  Select a backend with
``repro.nn.runtime.configure(backend=...)`` or the ``REPRO_BACKEND``
environment variable (read once at import).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

import numpy as _np


class BackendUnavailable(RuntimeError):
    """The requested backend's library is not importable here."""


#: Namespace entries that are plain attributes (types, dtype constructors,
#: RNG factories) rather than counted operations.
_ATTRS = (
    "ndarray", "dtype", "float32", "float64", "int64", "bool_",
    "integer", "floating", "Generator",
)

#: Explicit array constructors: the ``checked`` backend counts these as
#: ``constructions`` — the metric the steady-state tape-replay test pins
#: to zero.
_CONSTRUCTORS = (
    "array", "empty", "empty_like", "zeros", "zeros_like", "ones",
    "ones_like", "full", "full_like", "arange",
)

#: Operations that accept ``out=`` and allocate a fresh result without it.
_OUT_OPS = (
    "add", "subtract", "multiply", "divide", "negative", "exp", "log",
    "log1p", "tanh", "sqrt", "sign", "maximum", "minimum", "clip",
    "power", "greater", "not_equal", "matmul", "sum", "mean", "take",
    "cumsum", "add_reduceat",
)

#: Remaining operations: in-place/side-effect (``copyto``, ``add_at``,
#: ``global_seed``), views (``broadcast_to``, ``expand_dims``), or host
#: utilities whose allocations are off the steady-state hot path.
_MISC_OPS = (
    "asarray", "ascontiguousarray", "copyto", "add_at", "concatenate",
    "stack", "where", "broadcast_to", "expand_dims", "argsort", "sort",
    "searchsorted", "flatnonzero", "bincount", "unique", "allclose",
    "diag", "qr", "default_rng", "global_seed", "to_host",
)

#: ``where``/``concatenate``/``stack``/``argsort``/``bincount`` and
#: friends allocate their result; tracked as temporaries when counted.
_ALLOCATING_MISC = frozenset((
    "concatenate", "stack", "where", "argsort", "sort", "bincount",
    "unique", "flatnonzero",
))

ALL_NAMES = _ATTRS + _CONSTRUCTORS + _OUT_OPS + _MISC_OPS


def _numpy_namespace() -> Dict[str, object]:
    """The reference binding: every entry is the numpy object itself."""
    ns: Dict[str, object] = {}
    for name in ALL_NAMES:
        ns[name] = getattr(_np, name, None)
    ns["Generator"] = _np.random.Generator
    ns["default_rng"] = _np.random.default_rng
    ns["global_seed"] = _np.random.seed
    ns["add_at"] = _np.add.at
    ns["add_reduceat"] = _np.add.reduceat
    ns["qr"] = _np.linalg.qr
    ns["to_host"] = _np.asarray
    missing = [k for k, v in ns.items() if v is None]
    if missing:  # pragma: no cover - numpy always provides these
        raise RuntimeError(f"numpy lacks expected attributes: {missing}")
    return ns


class ArrayBackend:
    """One array implementation behind the ``xp`` seam.

    A backend is a bag of callables/attributes covering :data:`ALL_NAMES`.
    Subclasses fill ``self.ns`` in :meth:`__init__`; anything they leave
    out is reported loudly at registration time rather than failing deep
    inside a thunk.
    """

    #: registry name; subclasses override
    name = "abstract"
    #: False for namespace-only adapters that cannot run the Tensor stack
    supports_tensor_stack = True

    def __init__(self) -> None:
        self.ns: Dict[str, object] = {}

    def namespace(self) -> Dict[str, object]:
        missing = [n for n in ALL_NAMES if n not in self.ns]
        if missing:
            raise RuntimeError(
                f"backend {self.name!r} is missing namespace entries: "
                f"{missing}")
        return dict(self.ns)

    def describe(self) -> Dict[str, object]:
        return {"name": self.name,
                "supports_tensor_stack": self.supports_tensor_stack}


class NumpyBackend(ArrayBackend):
    """Reference backend: the namespace *is* numpy."""

    name = "numpy"

    def __init__(self) -> None:
        super().__init__()
        self.ns = _numpy_namespace()


class CheckedBackend(ArrayBackend):
    """Numpy plus instrumentation; bitwise identical to ``numpy``.

    Counters (all monotonic, reset with :meth:`reset_counters`):

    ``op_calls``
        every routed operation (constructors included).
    ``constructions``
        calls to the explicit array constructors (``empty``, ``zeros``,
        ``full`` ...).  Steady-state tape replay must keep this at zero —
        pooled buffers mean the plan never constructs an array per step.
    ``temp_results``
        ``out=``-capable ops called *without* ``out=`` (they allocate a
        fresh result), plus the allocating host utilities.  Native ndarray
        methods and operators are invisible to the seam and are not
        counted; the counters measure exactly the traffic that crosses it.
    ``out_calls``
        ops that did pass ``out=`` — each one is asserted to return the
        very buffer it was given (the aliasing contract every replay
        thunk relies on).
    """

    name = "checked"

    def __init__(self) -> None:
        super().__init__()
        ref = _numpy_namespace()
        self.op_calls = 0
        self.constructions = 0
        self.temp_results = 0
        self.out_calls = 0
        ns: Dict[str, object] = {}
        for name in _ATTRS:
            ns[name] = ref[name]
        for name in _CONSTRUCTORS:
            ns[name] = self._wrap_constructor(name, ref[name])
        for name in _OUT_OPS:
            ns[name] = self._wrap_out_op(name, ref[name])
        for name in _MISC_OPS:
            ns[name] = self._wrap_misc(name, ref[name])
        self.ns = ns

    # ------------------------------------------------------------------
    def _wrap_constructor(self, name: str, fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            self.op_calls += 1
            self.constructions += 1
            return fn(*args, **kwargs)
        wrapper.__name__ = f"checked_{name}"
        return wrapper

    def _wrap_out_op(self, name: str, fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            self.op_calls += 1
            out = kwargs.get("out")
            result = fn(*args, **kwargs)
            if out is None:
                self.temp_results += 1
            else:
                self.out_calls += 1
                buf = out[0] if isinstance(out, tuple) else out
                if result is not buf:
                    raise AssertionError(
                        f"backend op {name!r} violated the out= aliasing "
                        f"contract: returned a different array than the "
                        f"provided buffer")
            return result
        wrapper.__name__ = f"checked_{name}"
        return wrapper

    def _wrap_misc(self, name: str, fn: Callable) -> Callable:
        allocating = name in _ALLOCATING_MISC

        def wrapper(*args, **kwargs):
            self.op_calls += 1
            if allocating:
                self.temp_results += 1
            return fn(*args, **kwargs)
        wrapper.__name__ = f"checked_{name}"
        return wrapper

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {"op_calls": self.op_calls,
                "constructions": self.constructions,
                "temp_results": self.temp_results,
                "out_calls": self.out_calls}

    def reset_counters(self) -> None:
        self.op_calls = 0
        self.constructions = 0
        self.temp_results = 0
        self.out_calls = 0

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["counters"] = self.counters()
        return info


class CupyBackend(ArrayBackend):
    """CUDA adapter over cupy (feature-detected; parity to tolerance).

    cupy arrays expose the ndarray method surface the Tensor stack needs
    (``astype``, ``fill``, ``@``, reductions, fancy indexing), so the full
    autograd/tape path can run device-resident.  ``add_reduceat`` has no
    cupy kernel and is emulated with an exclusive-prefix-sum difference —
    value-equivalent to numpy's reduceat for the sorted-run layouts the
    segment ops use, but not bitwise (different summation order), which is
    exactly the stated non-numpy parity contract.
    """

    name = "cupy"

    def __init__(self) -> None:
        super().__init__()
        try:
            import cupy as cp
            import cupyx
        except ImportError as exc:  # pragma: no cover - env without cupy
            raise BackendUnavailable("cupy is not installed") from exc
        ns: Dict[str, object] = {}
        for name in ALL_NAMES:
            ns[name] = getattr(cp, name, None)
        ns["Generator"] = cp.random.Generator
        ns["default_rng"] = cp.random.default_rng
        ns["global_seed"] = cp.random.seed
        ns["qr"] = cp.linalg.qr
        ns["to_host"] = cp.asnumpy

        def add_at(a, indices, values):
            cupyx.scatter_add(a, indices, values)
        ns["add_at"] = add_at

        def add_reduceat(data, starts, axis=0, out=None):
            # inclusive-prefix differences: segment i covers
            # [starts[i], starts[i+1]) with the final segment running to
            # the end of ``data``.  Value-equivalent to numpy reduceat for
            # the sorted-run layouts the segment ops build, not bitwise
            # (different summation order).
            if axis != 0:  # pragma: no cover - seam only reduces rows
                raise NotImplementedError("cupy add_reduceat: axis 0 only")
            csum = cp.cumsum(data, axis=0)
            upper = cp.concatenate(
                [starts[1:], cp.asarray([data.shape[0]], dtype=starts.dtype)])
            hi = csum[upper - 1]
            lo = cp.zeros_like(hi)
            positive = starts > 0
            lo[positive] = csum[starts[positive] - 1]
            result = hi - lo
            if out is not None:
                out[...] = result
                return out
            return result
        ns["add_reduceat"] = add_reduceat
        missing = [k for k in ALL_NAMES if ns.get(k) is None]
        if missing:  # pragma: no cover - depends on cupy version
            raise BackendUnavailable(
                f"installed cupy lacks required operations: {missing}")
        self.ns = ns


class TorchBackend(ArrayBackend):
    """Torch adapter for the functional ``xp`` namespace (experimental).

    Covers the routed operations (ufuncs with ``out=``, segment ops,
    constructors) over ``torch.Tensor`` operands so kernel-level code can
    target torch devices through the same seam.  It does **not** provide
    numpy's ndarray method surface, so the autograd Tensor stack cannot
    run on it (``supports_tensor_stack`` is False and
    :func:`set_active_backend` refuses it for that reason).
    """

    name = "torch"
    supports_tensor_stack = False

    def __init__(self) -> None:
        super().__init__()
        try:
            import torch
        except ImportError as exc:  # pragma: no cover - env without torch
            raise BackendUnavailable("torch is not installed") from exc
        t = torch
        ns: Dict[str, object] = {}
        ns.update({
            "ndarray": t.Tensor, "dtype": t.dtype,
            "float32": t.float32, "float64": t.float64,
            "int64": t.int64, "bool_": t.bool,
            "integer": t.int64, "floating": t.float64,
            "Generator": t.Generator,
        })

        def _as(x):
            return x if isinstance(x, t.Tensor) else t.as_tensor(x)

        def _wrap(fn, unary=False):
            if unary:
                def op(x, out=None, **kw):
                    return fn(_as(x), out=out, **kw) if out is not None \
                        else fn(_as(x), **kw)
            else:
                def op(*args, out=None, **kw):
                    args = tuple(_as(a) for a in args)
                    return fn(*args, out=out, **kw) if out is not None \
                        else fn(*args, **kw)
            return op

        binary = {"add": t.add, "subtract": t.subtract,
                  "multiply": t.multiply, "divide": t.divide,
                  "maximum": t.maximum, "minimum": t.minimum,
                  "power": t.pow, "greater": t.gt, "not_equal": t.ne,
                  "matmul": t.matmul}
        unary = {"negative": t.negative, "exp": t.exp, "log": t.log,
                 "log1p": t.log1p, "tanh": t.tanh, "sqrt": t.sqrt,
                 "sign": t.sign}
        for name, fn in binary.items():
            ns[name] = _wrap(fn)
        for name, fn in unary.items():
            ns[name] = _wrap(fn, unary=True)
        ns["clip"] = lambda x, lo, hi, out=None: (
            t.clamp(_as(x), lo, hi, out=out) if out is not None
            else t.clamp(_as(x), lo, hi))

        def _reduce(fn):
            def op(x, axis=None, out=None, keepdims=False):
                x = _as(x)
                if axis is None:
                    result = fn(x)
                else:
                    result = fn(x, dim=axis, keepdim=keepdims)
                if out is not None:
                    out.copy_(result)
                    return out
                return result
            return op
        ns["sum"] = _reduce(t.sum)
        ns["mean"] = _reduce(t.mean)
        ns["cumsum"] = lambda x, axis=0: t.cumsum(_as(x), dim=axis)
        ns["take"] = lambda x, idx, axis=0, out=None: (
            t.index_select(_as(x), axis, _as(idx), out=out)
            if out is not None else t.index_select(_as(x), axis, _as(idx)))

        ns["array"] = lambda x, dtype=None, copy=True: (
            t.tensor(x, dtype=dtype) if copy else t.as_tensor(x, dtype=dtype))
        ns["asarray"] = lambda x, dtype=None: t.as_tensor(x, dtype=dtype)
        ns["ascontiguousarray"] = lambda x: _as(x).contiguous()
        ns["empty"] = t.empty
        ns["empty_like"] = t.empty_like
        ns["zeros"] = t.zeros
        ns["zeros_like"] = t.zeros_like
        ns["ones"] = t.ones
        ns["ones_like"] = t.ones_like
        ns["full"] = t.full
        ns["full_like"] = t.full_like
        ns["arange"] = t.arange
        ns["copyto"] = lambda dst, src: dst.copy_(_as(src))
        ns["concatenate"] = lambda xs, axis=0: t.cat([_as(x) for x in xs],
                                                     dim=axis)
        ns["stack"] = lambda xs, axis=0: t.stack([_as(x) for x in xs],
                                                 dim=axis)
        ns["where"] = lambda c, a, b: t.where(_as(c), _as(a), _as(b))
        ns["broadcast_to"] = lambda x, shape: t.broadcast_to(_as(x), shape)
        ns["expand_dims"] = lambda x, axis: t.unsqueeze(_as(x), axis)
        ns["argsort"] = lambda x, kind=None: t.argsort(_as(x), stable=True)
        ns["sort"] = lambda x: t.sort(_as(x)).values
        ns["searchsorted"] = lambda a, v, side="left": t.searchsorted(
            _as(a), _as(v), right=(side == "right"))
        ns["flatnonzero"] = lambda x: t.nonzero(_as(x).reshape(-1)).reshape(-1)
        ns["bincount"] = lambda x, minlength=0: t.bincount(
            _as(x), minlength=minlength)
        ns["unique"] = lambda x: t.unique(_as(x))
        ns["allclose"] = lambda a, b, **kw: t.allclose(_as(a), _as(b), **kw)
        ns["diag"] = lambda x: t.diag(_as(x))
        ns["qr"] = lambda x: tuple(t.linalg.qr(_as(x)))
        ns["default_rng"] = lambda seed=None: _np.random.default_rng(seed)
        ns["global_seed"] = t.manual_seed
        ns["to_host"] = lambda x: (_as(x).detach().cpu().numpy())

        def add_at(a, indices, values):
            a.index_add_(0, _as(indices), _as(values))
        ns["add_at"] = add_at

        def add_reduceat(data, starts, axis=0, out=None):
            if axis != 0:  # pragma: no cover - seam only reduces rows
                raise NotImplementedError("torch add_reduceat: axis 0 only")
            data, starts = _as(data), _as(starts)
            csum = t.cumsum(data, dim=0)
            upper = t.cat([starts[1:],
                           t.as_tensor([data.shape[0]], dtype=starts.dtype)])
            hi = csum[upper - 1]
            lo = t.zeros_like(hi)
            positive = starts > 0
            lo[positive] = csum[starts[positive] - 1]
            result = hi - lo
            if out is not None:
                out.copy_(result)
                return out
            return result
        ns["add_reduceat"] = add_reduceat
        self.ns = ns


# ----------------------------------------------------------------------
# registry + active-backend state
# ----------------------------------------------------------------------
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
_ACTIVE: Optional[ArrayBackend] = None
_CHANGE_HOOKS: List[Callable[[], None]] = []


class _Namespace:
    """The ``xp`` proxy: its ``__dict__`` is rebound on backend switch.

    Attribute access is therefore a plain instance-dict lookup — the same
    cost as ``np.add`` — with no per-call indirection on the hot path.
    """

    __slots__ = ("__dict__",)


xp = _Namespace()


def register_backend(name: str,
                     factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory (instantiated lazily, cached)."""
    _FACTORIES[name] = factory


def available_backends() -> Dict[str, bool]:
    """Registered names mapped to whether they can be instantiated here."""
    out = {}
    for name in sorted(_FACTORIES):
        try:
            get_backend(name)
            out[name] = True
        except BackendUnavailable:
            out[name] = False
    return out


def backend_available(name: str) -> bool:
    try:
        get_backend(name)
        return True
    except (BackendUnavailable, KeyError):
        return False


def get_backend(name: str) -> ArrayBackend:
    """The (cached) backend instance for ``name``.

    Raises ``KeyError`` for unknown names and :class:`BackendUnavailable`
    when the backing library is missing — callers skip cleanly on the
    latter.
    """
    inst = _INSTANCES.get(name)
    if inst is None:
        if name not in _FACTORIES:
            raise KeyError(
                f"unknown array backend {name!r}; registered: "
                f"{sorted(_FACTORIES)}")
        inst = _FACTORIES[name]()
        _INSTANCES[name] = inst
    return inst


def active_backend() -> ArrayBackend:
    return _ACTIVE


def active_backend_name() -> str:
    return _ACTIVE.name


def add_change_hook(hook: Callable[[], None]) -> None:
    """Run ``hook`` after every backend switch (used to bump the tape
    config epoch so plans recorded against the old backend re-record)."""
    _CHANGE_HOOKS.append(hook)


def set_active_backend(name: str) -> ArrayBackend:
    """Activate ``name`` and rebind ``xp``; no-op when already active."""
    global _ACTIVE
    backend = get_backend(name)
    if not backend.supports_tensor_stack:
        raise ValueError(
            f"backend {name!r} covers the functional xp namespace only "
            f"and cannot run the Tensor stack; it is selectable per-call "
            f"via get_backend({name!r}).namespace()")
    if _ACTIVE is backend:
        return backend
    _ACTIVE = backend
    ns = backend.namespace()
    xp.__dict__.clear()
    xp.__dict__.update(ns)
    for hook in _CHANGE_HOOKS:
        hook()
    return backend


register_backend("numpy", NumpyBackend)
register_backend("checked", CheckedBackend)
register_backend("cupy", CupyBackend)
register_backend("torch", TorchBackend)

#: initial selection: REPRO_BACKEND env var, defaulting to numpy.  A typo
#: or an unavailable library fails loudly here rather than silently
#: training on the wrong backend.
set_active_backend(os.environ.get("REPRO_BACKEND", "numpy"))
