"""Module system and basic layers (Linear / Dropout / activations / MLP)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.nn import init
from repro.nn.backend import xp
from repro.nn.autograd import Tensor, dropout as dropout_fn, get_default_dtype


class Module:
    """Base class: tracks parameters and sub-modules, supports train/eval."""

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        seen = set()
        for value in self.__dict__.values():
            params.extend(_collect_parameters(value, seen))
        return params

    def named_parameters(self, prefix: str = "") -> Dict[str, Tensor]:
        named: Dict[str, Tensor] = {}
        for name, value in self.__dict__.items():
            _collect_named(value, f"{prefix}{name}", named)
        return named

    def named_modules(self, prefix: str = "") -> Dict[str, "Module"]:
        """All sub-modules (including ``self`` under ``prefix``), by path."""
        named: Dict[str, Module] = {prefix: self}
        for name, value in self.__dict__.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            _collect_named_modules(value, child_prefix, named)
        return named

    def zero_grad(self) -> None:
        # Tensor.zero_grad clears tape-arena gradient buffers in place so
        # ``id(p.grad)`` stays stable across replayed steps; non-arena
        # gradients are dropped to None as before.
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for value in self.__dict__.values():
            for module in _collect_modules(value):
                module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter to ``dtype`` (float32 / float64) in place."""
        dtype = xp.dtype(dtype)
        for p in self.parameters():
            p.data = p.data.astype(dtype, copy=False)
        return self

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def extra_state(self) -> Dict[str, xp.ndarray]:
        """Non-parameter arrays (fitted scalers, flags) to persist.

        Subclasses override this (and :meth:`load_extra_state`) so that
        ``state_dict`` captures everything a save→load round trip needs for
        bit-identical predictions, not just the trainable weights.
        """
        return {}

    def load_extra_state(self, state: Dict[str, xp.ndarray]) -> None:
        """Restore what :meth:`extra_state` produced; ignore unknown keys."""

    def state_dict(self) -> Dict[str, xp.ndarray]:
        state = {name: p.data.copy()
                 for name, p in self.named_parameters().items()}
        for prefix, module in self.named_modules().items():
            for key, value in module.extra_state().items():
                full = f"{prefix}.{key}" if prefix else key
                state[full] = xp.asarray(value)
        return state

    def load_state_dict(self, state: Dict[str, xp.ndarray]) -> None:
        named = self.named_parameters()
        missing = set(named) - set(state)
        if missing:
            raise KeyError(f"missing parameters in state dict: {sorted(missing)}")
        for name, param in named.items():
            value = xp.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}")
            # keep the module's declared dtype (e.g. loading a float64
            # artifact into a float32 model casts rather than promotes)
            param.data = value.astype(param.data.dtype, copy=True)
        # route the non-parameter keys to the deepest module whose path
        # prefixes them (the module that produced them in extra_state)
        modules = self.named_modules()
        extra: Dict[str, Dict[str, xp.ndarray]] = {}
        for key in set(state) - set(named):
            owner, rest = "", key
            for prefix in modules:
                if prefix and key.startswith(prefix + ".") \
                        and len(prefix) > len(owner):
                    owner, rest = prefix, key[len(prefix) + 1:]
            extra.setdefault(owner, {})[rest] = state[key]
        for prefix, sub in extra.items():
            modules[prefix].load_extra_state(sub)


def _collect_parameters(value, seen) -> List[Tensor]:
    params: List[Tensor] = []
    if isinstance(value, Tensor) and value.requires_grad:
        if id(value) not in seen:
            seen.add(id(value))
            params.append(value)
    elif isinstance(value, Module):
        for p in value.parameters():
            if id(p) not in seen:
                seen.add(id(p))
                params.append(p)
    elif isinstance(value, (list, tuple)):
        for item in value:
            params.extend(_collect_parameters(item, seen))
    elif isinstance(value, dict):
        for item in value.values():
            params.extend(_collect_parameters(item, seen))
    return params


def _collect_named(value, prefix: str, out: Dict[str, Tensor]) -> None:
    if isinstance(value, Tensor) and value.requires_grad:
        out[prefix] = value
    elif isinstance(value, Module):
        for name, p in value.named_parameters(prefix=prefix + ".").items():
            out[name] = p
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _collect_named(item, f"{prefix}.{i}", out)
    elif isinstance(value, dict):
        for key, item in value.items():
            _collect_named(item, f"{prefix}.{key}", out)


def _collect_named_modules(value, prefix: str, out: Dict[str, "Module"]) -> None:
    if isinstance(value, Module):
        out.update(value.named_modules(prefix=prefix))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _collect_named_modules(item, f"{prefix}.{i}", out)
    elif isinstance(value, dict):
        for key, item in value.items():
            _collect_named_modules(item, f"{prefix}.{key}", out)


def _collect_modules(value) -> List["Module"]:
    modules: List[Module] = []
    if isinstance(value, Module):
        modules.append(value)
        for sub in value.__dict__.values():
            modules.extend(_collect_modules(sub))
    elif isinstance(value, (list, tuple)):
        for item in value:
            modules.extend(_collect_modules(item))
    elif isinstance(value, dict):
        for item in value.values():
            modules.extend(_collect_modules(item))
    return modules


# ----------------------------------------------------------------------
# layers
# ----------------------------------------------------------------------
class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or xp.default_rng(0)
        self.weight = Tensor(init.xavier_uniform((in_features, out_features), rng),
                             requires_grad=True, name="weight")
        self.bias = (Tensor(xp.zeros(out_features, dtype=get_default_dtype()),
                            requires_grad=True, name="bias") if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        return x.linear(self.weight, self.bias)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; inactive in eval mode."""

    def __init__(self, rate: float = 0.1, seed: int = 0):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = xp.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.rate, self._rng, training=self.training)


class Sequential(Module):
    """Apply sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and activation.

    The paper's fused classifier uses a single hidden layer ("we have
    consciously designed a small network"); this class is also used for the
    DAE encoder/decoder stacks.
    """

    def __init__(self, in_features: int, hidden: Sequence[int], out_features: int,
                 activation: str = "relu", dropout: float = 0.0,
                 rng: Optional[xp.Generator] = None):
        super().__init__()
        rng = rng or xp.default_rng(0)
        acts = {"relu": ReLU, "sigmoid": Sigmoid, "tanh": Tanh}
        if activation not in acts:
            raise ValueError(f"unknown activation {activation!r}")
        layers: List[Module] = []
        sizes = [in_features] + list(hidden)
        for a, b in zip(sizes, sizes[1:]):
            layers.append(Linear(a, b, rng=rng))
            layers.append(acts[activation]())
            if dropout > 0:
                layers.append(Dropout(dropout))
        layers.append(Linear(sizes[-1], out_features, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
