"""Feature scalers: standard, min-max and Gaussian-rank.

The paper scales the IR2Vec code vectors with Gaussian rank scaling before
the denoising autoencoder, and normalises performance counters / transfer and
workgroup sizes into [0, 1] before fusion.

Every scaler exposes ``get_state`` / ``set_state`` returning plain numpy
arrays so fitted scalers can travel inside model state dicts and the
:mod:`repro.serve.artifacts` on-disk format.
"""

from __future__ import annotations

from typing import Dict, Optional

from scipy.special import erfinv

from repro.nn.backend import xp


class StandardScaler:
    """Zero-mean / unit-variance per feature."""

    def __init__(self) -> None:
        self.mean_: Optional[xp.ndarray] = None
        self.std_: Optional[xp.ndarray] = None

    def fit(self, x: xp.ndarray) -> "StandardScaler":
        x = xp.asarray(x, dtype=xp.float64)
        self.mean_ = x.mean(axis=0)
        self.std_ = x.std(axis=0)
        self.std_ = xp.where(self.std_ < 1e-12, 1.0, self.std_)
        return self

    def transform(self, x: xp.ndarray) -> xp.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return (xp.asarray(x, dtype=xp.float64) - self.mean_) / self.std_

    def fit_transform(self, x: xp.ndarray) -> xp.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: xp.ndarray) -> xp.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return xp.asarray(x) * self.std_ + self.mean_

    def get_state(self) -> Dict[str, xp.ndarray]:
        if self.mean_ is None:
            return {}
        return {"mean": self.mean_.copy(), "std": self.std_.copy()}

    def set_state(self, state: Dict[str, xp.ndarray]) -> None:
        if "mean" in state:
            self.mean_ = xp.asarray(state["mean"], dtype=xp.float64)
            self.std_ = xp.asarray(state["std"], dtype=xp.float64)


class MinMaxScaler:
    """Scale each feature into [0, 1] (constant features map to 0)."""

    def __init__(self) -> None:
        self.min_: Optional[xp.ndarray] = None
        self.range_: Optional[xp.ndarray] = None

    def fit(self, x: xp.ndarray) -> "MinMaxScaler":
        x = xp.asarray(x, dtype=xp.float64)
        self.min_ = x.min(axis=0)
        rng = x.max(axis=0) - self.min_
        self.range_ = xp.where(rng < 1e-12, 1.0, rng)
        return self

    def transform(self, x: xp.ndarray) -> xp.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
        out = (xp.asarray(x, dtype=xp.float64) - self.min_) / self.range_
        return xp.clip(out, 0.0, 1.0)

    def fit_transform(self, x: xp.ndarray) -> xp.ndarray:
        return self.fit(x).transform(x)

    def get_state(self) -> Dict[str, xp.ndarray]:
        if self.min_ is None:
            return {}
        return {"min": self.min_.copy(), "range": self.range_.copy()}

    def set_state(self, state: Dict[str, xp.ndarray]) -> None:
        if "min" in state:
            self.min_ = xp.asarray(state["min"], dtype=xp.float64)
            self.range_ = xp.asarray(state["range"], dtype=xp.float64)


class GaussRankScaler:
    """Gaussian rank scaling (Jahrer's Porto-Seguro winning trick).

    Each feature is mapped to the quantiles of a standard normal via its rank
    in the training data; unseen values are interpolated between the training
    values' ranks.
    """

    def __init__(self, epsilon: float = 1e-3):
        self.epsilon = float(epsilon)
        self.sorted_: Optional[list] = None

    def fit(self, x: xp.ndarray) -> "GaussRankScaler":
        x = xp.asarray(x, dtype=xp.float64)
        if x.ndim != 2:
            raise ValueError("GaussRankScaler expects a 2-D matrix")
        self.sorted_ = [xp.sort(x[:, j]) for j in range(x.shape[1])]
        return self

    def transform(self, x: xp.ndarray) -> xp.ndarray:
        if self.sorted_ is None:
            raise RuntimeError("scaler is not fitted")
        x = xp.asarray(x, dtype=xp.float64)
        out = xp.empty_like(x)
        for j, ref in enumerate(self.sorted_):
            n = len(ref)
            # rank of each value among the training values, in (0, 1)
            ranks = xp.searchsorted(ref, x[:, j], side="left").astype(xp.float64)
            frac = xp.clip(ranks / max(n - 1, 1), self.epsilon, 1.0 - self.epsilon)
            out[:, j] = xp.sqrt(2.0) * erfinv(2.0 * frac - 1.0)
        return out

    def fit_transform(self, x: xp.ndarray) -> xp.ndarray:
        return self.fit(x).transform(x)

    def get_state(self) -> Dict[str, xp.ndarray]:
        if self.sorted_ is None:
            return {}
        # the per-column reference arrays all have the training-set length,
        # so the whole fitted state stacks into one [n_features, n] matrix
        return {"sorted": xp.stack(self.sorted_, axis=0)}

    def set_state(self, state: Dict[str, xp.ndarray]) -> None:
        if "sorted" in state:
            matrix = xp.asarray(state["sorted"], dtype=xp.float64)
            self.sorted_ = [matrix[j].copy() for j in range(matrix.shape[0])]
