"""First-order optimisers: SGD (+momentum), Adam and AdamW.

The paper optimises the MGA model with AdamW (decoupled weight decay).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.autograd import Tensor


class Optimizer:
    """Base optimiser over a fixed parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = self._velocity[id(p)] = grad.copy()
                else:
                    v *= self.momentum
                    v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction; ``decoupled=False`` applies L2 to the grad."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, decoupled: bool = False):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = float(weight_decay)
        self.decoupled = decoupled
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay and not self.decoupled:
                grad = grad + self.weight_decay * p.data
            # allocate state only on the first step for each parameter, then
            # update the moment buffers in place
            m = self._m.get(id(p))
            if m is None:
                m = self._m[id(p)] = np.zeros_like(p.data)
            v = self._v.get(id(p))
            if v is None:
                v = self._v[id(p)] = np.zeros_like(p.data)
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad ** 2
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            np.sqrt(v_hat, out=v_hat)
            v_hat += self.eps
            update = m_hat
            update /= v_hat
            if self.weight_decay and self.decoupled:
                update += self.weight_decay * p.data
            p.data -= self.lr * update


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 1e-2):
        super().__init__(parameters, lr=lr, betas=betas, eps=eps,
                         weight_decay=weight_decay, decoupled=True)
