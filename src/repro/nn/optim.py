"""First-order optimisers: SGD (+momentum), Adam and AdamW.

The paper optimises the MGA model with AdamW (decoupled weight decay).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.nn.autograd import Tensor
from repro.nn.backend import xp


class Optimizer:
    """Base optimiser over a fixed parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        # delegates to Tensor.zero_grad, which clears tape-arena gradient
        # buffers in place (identity-stable) instead of dropping them
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, xp.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = self._velocity[id(p)] = grad.copy()
                else:
                    v *= self.momentum
                    v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction; ``decoupled=False`` applies L2 to the grad."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, decoupled: bool = False):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = float(weight_decay)
        self.decoupled = decoupled
        self._m: Dict[int, xp.ndarray] = {}
        self._v: Dict[int, xp.ndarray] = {}
        #: per-parameter scratch buffers so a step allocates nothing after
        #: the first call (gradients may live in tape arena buffers; the
        #: update math never writes into them)
        self._upd: Dict[int, xp.ndarray] = {}
        self._tmp: Dict[int, xp.ndarray] = {}
        self._t = 0

    def _state(self, store: Dict[int, xp.ndarray], p: Tensor) -> xp.ndarray:
        buf = store.get(id(p))
        if buf is None or buf.shape != p.data.shape \
                or buf.dtype != p.data.dtype:
            buf = store[id(p)] = xp.zeros_like(p.data)
        return buf

    def step(self) -> None:
        self._t += 1
        for p in self.parameters:
            if p.grad is None:
                continue
            grad = p.grad
            upd = self._state(self._upd, p)
            tmp = self._state(self._tmp, p)
            if self.weight_decay and not self.decoupled:
                # == grad + weight_decay * p.data (scalar multiply commutes)
                xp.multiply(p.data, self.weight_decay, out=upd)
                xp.add(grad, upd, out=upd)
                grad = upd
            m = self._state(self._m, p)
            v = self._state(self._v, p)
            m *= self.beta1
            xp.multiply(grad, 1 - self.beta1, out=tmp)
            m += tmp
            v *= self.beta2
            xp.multiply(grad, grad, out=tmp)      # == grad ** 2
            tmp *= 1 - self.beta2
            v += tmp
            xp.divide(m, 1 - self.beta1 ** self._t, out=upd)   # m_hat
            xp.divide(v, 1 - self.beta2 ** self._t, out=tmp)   # v_hat
            xp.sqrt(tmp, out=tmp)
            tmp += self.eps
            upd /= tmp
            if self.weight_decay and self.decoupled:
                xp.multiply(p.data, self.weight_decay, out=tmp)
                upd += tmp
            upd *= self.lr
            p.data -= upd


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 1e-2):
        super().__init__(parameters, lr=lr, betas=betas, eps=eps,
                         weight_decay=weight_decay, decoupled=True)
