"""Autograd tape capture + replay for fixed-shape training steps.

The define-by-run engine in :mod:`repro.nn.autograd` rebuilds the backward
graph — one :class:`~repro.nn.autograd.Tensor`, one closure, one DFS visit
per op — on *every* training step, even though the MGA training loop runs
the identical (shape, dtype) graph thousands of times once batch partitions
are frozen.  This module records that graph once and compiles it into a
:class:`TapePlan`: a flat list of zero-arg forward thunks plus a flat list
of VJP thunks in the exact reverse-topological order eager execution uses,
dispatched with zero per-node Python graph construction.

Bit-for-bit equivalence with eager mode is the design constraint, not an
afterthought:

* the recording step *is* a normal eager step — recording only appends
  (op, parents, attrs) descriptors;
* every replay thunk mirrors its eager closure's numpy expression exactly
  (same ufuncs, same operand order, same temporaries), relying only on
  identities numpy guarantees (``out=`` variants of a ufunc compute the
  same values; ``x @ y`` and ``xp.matmul(x, y, out=...)`` agree);
* the backward thunk order replicates the eager iterative DFS post-order
  over the same graph, and within one node the per-parent contribution
  order replicates the closure body, so gradient accumulation — float
  addition is commutative but not associative — happens in the same order;
* data-dependent values inside a step (dropout masks, softmax max-shifts)
  are traced primitives whose thunks recompute them from fresh activations
  (and the *captured rng object*, keeping the random stream aligned).

Gradients for graph leaves (parameters and any ``requires_grad`` inputs)
land in preallocated arena buffers owned by the :class:`TapeRunner` and
shared by every plan, so ``id(p.grad)`` is stable across replayed steps and
no per-step ``xp.zeros`` is paid: the first contribution to a buffer is a
"set" (``out=`` or ``copyto``), later ones are in-place ``+=``.  Adjacent
identity-VJP nodes (scalar adds, max-shifts) are fused away entirely: when
such a node's parent receives no other contribution, the parent's gradient
slot aliases the child's and no thunk is emitted.

Plans carry guards — the global config epoch (bumped by
:func:`~repro.nn.autograd.set_default_dtype` /
:func:`~repro.nn.autograd.set_fast_segment_ops`), leaf array identity, and
an optional caller fingerprint — and fall back to eager re-recording when
any of them fails.  A graph containing an op the compiler does not know
raises :class:`TapeUnsupported`, permanently pinning that step key to the
eager path.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.nn import autograd
from repro.nn.autograd import (
    SegmentLayout,
    Tensor,
    _segment_sum_data,
    _unbroadcast,
)
from repro.nn.backend import xp


class TapeUnsupported(RuntimeError):
    """The recorded graph contains an op the tape compiler cannot replay."""


class _Rec:
    """One recorded op application."""

    __slots__ = ("op", "out", "parents", "attrs")

    def __init__(self, op: str, out: Tensor, parents: Tuple[Tensor, ...],
                 attrs: Optional[dict]):
        self.op = op
        self.out = out
        self.parents = parents
        self.attrs = attrs or {}


class Tape:
    """Recorder attached to the autograd trace hook."""

    def __init__(self) -> None:
        self.records: List[_Rec] = []
        self.by_id: Dict[int, _Rec] = {}

    def record(self, op: str, out: Tensor, parents: Tuple[Tensor, ...],
               attrs: Optional[dict]) -> None:
        rec = _Rec(op, out, parents, attrs)
        self.records.append(rec)
        self.by_id[id(out)] = rec

    @contextlib.contextmanager
    def recording(self) -> Iterator["Tape"]:
        if autograd._TRACE is not None:
            raise RuntimeError("tape recording cannot be nested")
        autograd._TRACE = self
        try:
            yield self
        finally:
            autograd._TRACE = None


# ----------------------------------------------------------------------
# op registry
# ----------------------------------------------------------------------
#: op -> forward emitter: ``fwd(rec, ctx) -> thunk | None``
_FWD: Dict[str, Callable] = {}
#: op -> backward emitter:
#: ``bwd(rec, ctx) -> (pre_thunk | None, [(parent, kind, value_fn, set_into)])``
#: where ``kind`` is "id" (contribution is exactly the child grad, alias
#: eligible), "view" (aliases the child grad / vals — copy on set) or
#: "owned" (freshly allocated array).  ``set_into(buf)``, when given, writes
#: the set-mode contribution directly into an arena buffer.
_BWD: Dict[str, Callable] = {}


def register_op(name: str, fwd: Callable, bwd: Callable) -> None:
    """Register replay emitters for a custom traced primitive.

    Used by modules that define hand-derived single-node ops (the fused GRU
    cell and the mean aggregator in :mod:`repro.gnn.conv`).
    """
    _FWD[name] = fwd
    _BWD[name] = bwd


def _op(name):
    def deco(pair_fn):
        fwd, bwd = pair_fn()
        register_op(name, fwd, bwd)
        return pair_fn
    return deco


class _Ctx:
    """Compile-time context handed to emitters."""

    __slots__ = ("vals", "gv", "_slots", "_gslot", "_cells", "_pool",
                 "_cursor")

    def __init__(self, pool: Optional[Dict] = None) -> None:
        self.vals: List[Optional[xp.ndarray]] = []
        self.gv: List[Optional[xp.ndarray]] = []
        self._slots: Dict[int, int] = {}
        self._gslot: Dict[int, int] = {}
        self._cells: Dict[int, dict] = {}
        self._pool: Dict = pool if pool is not None else {}
        self._cursor: Dict = {}

    def vslot(self, t: Tensor) -> int:
        s = self._slots.get(id(t))
        if s is None:
            s = len(self.vals)
            self._slots[id(t)] = s
            self.vals.append(t.data)
        return s

    def g(self, t: Tensor) -> int:
        """Resolved grad slot of ``t`` (set up by the compiler)."""
        return self._gslot[id(t)]

    def cell(self, rec: _Rec) -> dict:
        """Per-record scratch dict shared by a record's fwd/bwd thunks."""
        c = self._cells.get(id(rec))
        if c is None:
            c = self._cells[id(rec)] = {}
        return c

    def buf(self, shape, dtype) -> xp.ndarray:
        """Step-scratch array leased from the runner-wide buffer pool.

        Buffers are keyed by (shape, dtype) plus an occurrence counter, so
        within one plan every lease is a distinct array, while *different*
        plans with the same shapes alias the same memory.  Only one plan
        replays at a time and nothing leased here outlives its step (leaf
        gradients live in the separate persistent arena), so sharing is
        safe — and it keeps the replay working set at one step's worth of
        arrays instead of one per cached plan, which matters when several
        plans rotate through a cache-sized model.
        """
        key = (tuple(shape), xp.dtype(dtype).str)
        i = self._cursor.get(key, 0)
        self._cursor[key] = i + 1
        slot = self._pool.setdefault(key, [])
        while len(slot) <= i:
            slot.append(xp.empty(key[0], dtype=xp.dtype(dtype)))
        return slot[i]

    def obuf(self, rec: _Rec) -> xp.ndarray:
        """Forward output buffer matching the recorded output (pooled)."""
        return self.buf(rec.out.data.shape, rec.out.data.dtype)

    def scratch(self, shape, dtype, i: int = 0) -> xp.ndarray:
        """Thunk-local scratch: freely aliased ACROSS thunks and plans.

        Unlike :meth:`buf` there is no occurrence cursor — every thunk that
        asks for the same (shape, dtype, i) gets the *same* array, so the
        hot footprint stays one thunk's worth of temporaries no matter how
        many nodes or plans exist (mimicking malloc's recycling of freshly
        freed blocks, without the allocator round-trips).  Only valid for
        values whose lifetime ends with the thunk (or, for a backward
        emitter, with that node's contiguous pre+specs block); anything
        stored into ``vals``/``gv`` or read by a *different* node's thunk
        must use :meth:`buf`.  Distinguish concurrent uses within one thunk
        via ``i``.
        """
        key = (tuple(shape), xp.dtype(dtype).str, i)
        buf = self._pool.get(key)
        if buf is None:
            buf = self._pool[key] = xp.empty(key[0], dtype=xp.dtype(dtype))
        return buf


# ---- forward/backward emitters for the built-in autograd ops ----------

@_op("add_s")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        c, buf = rec.attrs["c"], ctx.obuf(rec)

        def run():
            xp.add(vals[x], c, out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        return None, [(rec.parents[0], "id", None, None)]
    return fwd, bwd


@_op("add_t")
def _():
    def fwd(rec, ctx):
        vals = ctx.vals
        a, b = ctx.vslot(rec.parents[0]), ctx.vslot(rec.parents[1])
        o, buf = ctx.vslot(rec.out), ctx.obuf(rec)

        def run():
            xp.add(vals[a], vals[b], out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, gs = ctx.gv, ctx.g(rec.out)
        out_shape = rec.out.shape
        specs = []
        for p in rec.parents:
            if not p.requires_grad:
                continue
            if p.shape == out_shape:
                specs.append((p, "id", None, None))
            else:
                shape = p.shape
                specs.append((p, "owned",
                              (lambda shape=shape:
                               _unbroadcast(gv[gs], shape)), None))
        return None, specs
    return fwd, bwd


@_op("neg")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        buf = ctx.obuf(rec)

        def run():
            xp.negative(vals[x], out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, gs = ctx.gv, ctx.g(rec.out)
        return None, [(rec.parents[0], "owned", lambda: -gv[gs],
                       lambda buf: xp.negative(gv[gs], out=buf))]
    return fwd, bwd


@_op("rsub_s")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        c, buf = rec.attrs["c"], ctx.obuf(rec)

        def run():
            xp.subtract(c, vals[x], out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, gs = ctx.gv, ctx.g(rec.out)
        return None, [(rec.parents[0], "owned", lambda: -gv[gs],
                       lambda buf: xp.negative(gv[gs], out=buf))]
    return fwd, bwd


@_op("mul_s")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        c, buf = rec.attrs["c"], ctx.obuf(rec)

        def run():
            xp.multiply(vals[x], c, out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, gs, c = ctx.gv, ctx.g(rec.out), rec.attrs["c"]
        return None, [(rec.parents[0], "owned", lambda: gv[gs] * c,
                       lambda buf: xp.multiply(gv[gs], c, out=buf))]
    return fwd, bwd


@_op("mul_t")
def _():
    def fwd(rec, ctx):
        vals = ctx.vals
        a, b = ctx.vslot(rec.parents[0]), ctx.vslot(rec.parents[1])
        o, buf = ctx.vslot(rec.out), ctx.obuf(rec)

        def run():
            xp.multiply(vals[a], vals[b], out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, vals, gs = ctx.gv, ctx.vals, ctx.g(rec.out)
        out_shape = rec.out.shape
        specs = []
        pa, pb = rec.parents
        for p, other in ((pa, pb), (pb, pa)):
            if not p.requires_grad:
                continue
            ov, shape = ctx.vslot(other), p.shape
            if shape == out_shape:
                specs.append((p, "owned",
                              (lambda ov=ov: gv[gs] * vals[ov]),
                              (lambda buf, ov=ov:
                               xp.multiply(gv[gs], vals[ov], out=buf))))
            else:
                specs.append((p, "owned",
                              (lambda ov=ov, shape=shape:
                               _unbroadcast(gv[gs] * vals[ov], shape)), None))
        return None, specs
    return fwd, bwd


@_op("div_s")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        c, buf = rec.attrs["c"], ctx.obuf(rec)

        def run():
            xp.divide(vals[x], c, out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, gs, c = ctx.gv, ctx.g(rec.out), rec.attrs["c"]
        return None, [(rec.parents[0], "owned", lambda: gv[gs] / c,
                       lambda buf: xp.divide(gv[gs], c, out=buf))]
    return fwd, bwd


@_op("div_t")
def _():
    def fwd(rec, ctx):
        vals = ctx.vals
        a, b = ctx.vslot(rec.parents[0]), ctx.vslot(rec.parents[1])
        o, buf = ctx.vslot(rec.out), ctx.obuf(rec)

        def run():
            xp.divide(vals[a], vals[b], out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, vals, gs = ctx.gv, ctx.vals, ctx.g(rec.out)
        pa, pb = rec.parents
        a, b = ctx.vslot(pa), ctx.vslot(pb)
        specs = []
        if pa.requires_grad:
            specs.append((pa, "owned",
                          (lambda shape=pa.shape:
                           _unbroadcast(gv[gs] / vals[b], shape)),
                          None))
        if pb.requires_grad:
            specs.append((pb, "owned",
                          (lambda shape=pb.shape: _unbroadcast(
                              -gv[gs] * vals[a] / (vals[b] ** 2), shape)),
                          None))
        return None, specs
    return fwd, bwd


@_op("pow")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        e = rec.attrs["e"]

        def run():
            vals[o] = vals[x] ** e
        return run

    def bwd(rec, ctx):
        gv, vals, gs = ctx.gv, ctx.vals, ctx.g(rec.out)
        x, e = ctx.vslot(rec.parents[0]), rec.attrs["e"]
        return None, [(rec.parents[0], "owned",
                       lambda: gv[gs] * e * vals[x] ** (e - 1.0), None)]
    return fwd, bwd


def _leased_matmul(ctx, parent, a_of, b_of):
    """``(value_fn, set_into)`` computing ``a @ b`` without allocating.

    ``set_into`` serves the leaf-arena first write; ``value_fn`` (non-leaf
    assigns and ``+=`` accumulations) writes into a step lease, which is
    safe to hand to ``gv`` because every lease is distinct within a plan
    and nothing pooled outlives its step.
    """
    out_buf = ctx.buf(parent.data.shape, parent.data.dtype)

    def value():
        xp.matmul(a_of(), b_of(), out=out_buf)
        return out_buf
    return value, lambda buf: xp.matmul(a_of(), b_of(), out=buf)


@_op("matmul")
def _():
    def fwd(rec, ctx):
        vals = ctx.vals
        a, b = ctx.vslot(rec.parents[0]), ctx.vslot(rec.parents[1])
        o, buf = ctx.vslot(rec.out), ctx.obuf(rec)

        def run():
            xp.matmul(vals[a], vals[b], out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, vals, gs = ctx.gv, ctx.vals, ctx.g(rec.out)
        pa, pb = rec.parents
        a, b = ctx.vslot(pa), ctx.vslot(pb)
        specs = []
        if pa.requires_grad:
            specs.append((pa, "owned") + _leased_matmul(
                ctx, pa, lambda: gv[gs], lambda: vals[b].T))
        if pb.requires_grad:
            specs.append((pb, "owned") + _leased_matmul(
                ctx, pb, lambda: vals[a].T, lambda: gv[gs]))
        return None, specs
    return fwd, bwd


@_op("linear")
def _():
    def fwd(rec, ctx):
        vals = ctx.vals
        x, w = ctx.vslot(rec.parents[0]), ctx.vslot(rec.parents[1])
        bi = ctx.vslot(rec.parents[2]) if len(rec.parents) == 3 else None
        o, buf = ctx.vslot(rec.out), ctx.obuf(rec)

        if bi is None:
            def run():
                xp.matmul(vals[x], vals[w], out=buf)
                vals[o] = buf
        else:
            def run():
                xp.matmul(vals[x], vals[w], out=buf)
                xp.add(buf, vals[bi], out=buf)  # == eager's in-place `+=`
                vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, vals, gs = ctx.gv, ctx.vals, ctx.g(rec.out)
        px, pw = rec.parents[0], rec.parents[1]
        x, w = ctx.vslot(px), ctx.vslot(pw)
        specs = []
        if px.requires_grad:
            specs.append((px, "owned") + _leased_matmul(
                ctx, px, lambda: gv[gs], lambda: vals[w].T))
        if pw.requires_grad:
            specs.append((pw, "owned") + _leased_matmul(
                ctx, pw, lambda: vals[x].T, lambda: gv[gs]))
        if len(rec.parents) == 3 and rec.parents[2].requires_grad:
            pb = rec.parents[2]
            db_buf = ctx.buf(pb.data.shape, pb.data.dtype)

            def db_value():
                xp.sum(gv[gs], axis=0, out=db_buf)
                return db_buf
            specs.append((pb, "owned", db_value,
                          lambda buf: xp.sum(gv[gs], axis=0, out=buf)))
        return None, specs
    return fwd, bwd


@_op("sum")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        axis, keepdims = rec.attrs["axis"], rec.attrs["keepdims"]

        def run():
            vals[o] = vals[x].sum(axis=axis, keepdims=keepdims)
        return run

    def bwd(rec, ctx):
        gv, gs = ctx.gv, ctx.g(rec.out)
        p = rec.parents[0]
        axis, keepdims = rec.attrs["axis"], rec.attrs["keepdims"]
        shape, dtype = p.shape, p.data.dtype
        # the broadcast-up gradient goes into a pooled step buffer either
        # way (fill == np.full's fill; copyto broadcasts == broadcast_to +
        # copy), so steady-state replay allocates nothing here
        buf = ctx.buf(shape, dtype)
        if axis is None:
            def value():
                buf.fill(float(gv[gs]))
                return buf
            return None, [(p, "owned", value,
                           lambda target: target.fill(float(gv[gs])))]

        def expanded():
            g = gv[gs]
            if not keepdims:
                g = xp.expand_dims(g, axis)
            return g

        def value():
            xp.copyto(buf, expanded())
            return buf
        return None, [(p, "owned", value,
                       lambda target: xp.copyto(target, expanded()))]
    return fwd, bwd


@_op("reshape")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        shape = rec.attrs["shape"]

        def run():
            vals[o] = vals[x].reshape(*shape)
        return run

    def bwd(rec, ctx):
        gv, gs, old = ctx.gv, ctx.g(rec.out), rec.attrs["old"]
        return None, [(rec.parents[0], "view",
                       lambda: gv[gs].reshape(old), None)]
    return fwd, bwd


@_op("transpose")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)

        def run():
            vals[o] = vals[x].T
        return run

    def bwd(rec, ctx):
        gv, gs = ctx.gv, ctx.g(rec.out)
        return None, [(rec.parents[0], "view", lambda: gv[gs].T, None)]
    return fwd, bwd


@_op("slice_cols")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        start, stop = rec.attrs["start"], rec.attrs["stop"]

        def run():
            vals[o] = vals[x][:, start:stop]
        return run

    def bwd(rec, ctx):
        gv, gs = ctx.gv, ctx.g(rec.out)
        p = rec.parents[0]
        start, stop = rec.attrs["start"], rec.attrs["stop"]
        shape, dtype = p.shape, p.data.dtype

        def value():
            g = xp.zeros(shape, dtype=dtype)
            g[:, start:stop] = gv[gs]
            return g

        def set_into(buf):
            buf.fill(0.0)
            buf[:, start:stop] = gv[gs]
        return None, [(p, "owned", value, set_into)]
    return fwd, bwd


@_op("relu")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        buf, cell = ctx.obuf(rec), ctx.cell(rec)

        def run():
            mask = (vals[x] > 0).astype(buf.dtype)
            cell["mask"] = mask
            xp.multiply(vals[x], mask, out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, gs, cell = ctx.gv, ctx.g(rec.out), ctx.cell(rec)
        return None, [(rec.parents[0], "owned",
                       lambda: gv[gs] * cell["mask"],
                       lambda buf: xp.multiply(gv[gs], cell["mask"],
                                               out=buf))]
    return fwd, bwd


@_op("leaky_relu")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        slope, buf, cell = rec.attrs["slope"], ctx.obuf(rec), ctx.cell(rec)

        def run():
            mask = xp.where(vals[x] > 0, 1.0, slope).astype(buf.dtype)
            cell["mask"] = mask
            xp.multiply(vals[x], mask, out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, gs, cell = ctx.gv, ctx.g(rec.out), ctx.cell(rec)
        return None, [(rec.parents[0], "owned",
                       lambda: gv[gs] * cell["mask"],
                       lambda buf: xp.multiply(gv[gs], cell["mask"],
                                               out=buf))]
    return fwd, bwd


@_op("sigmoid")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)

        def run():
            vals[o] = 1.0 / (1.0 + xp.exp(-xp.clip(vals[x], -60.0, 60.0)))
        return run

    def bwd(rec, ctx):
        gv, vals, gs = ctx.gv, ctx.vals, ctx.g(rec.out)
        o = ctx.vslot(rec.out)
        return None, [(rec.parents[0], "owned",
                       lambda: gv[gs] * vals[o] * (1.0 - vals[o]), None)]
    return fwd, bwd


@_op("tanh")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        buf = ctx.obuf(rec)

        def run():
            xp.tanh(vals[x], out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, vals, gs = ctx.gv, ctx.vals, ctx.g(rec.out)
        o = ctx.vslot(rec.out)
        return None, [(rec.parents[0], "owned",
                       lambda: gv[gs] * (1.0 - vals[o] ** 2), None)]
    return fwd, bwd


@_op("exp")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)

        def run():
            vals[o] = xp.exp(xp.clip(vals[x], -60.0, 60.0))
        return run

    def bwd(rec, ctx):
        gv, vals, gs = ctx.gv, ctx.vals, ctx.g(rec.out)
        o = ctx.vslot(rec.out)
        return None, [(rec.parents[0], "owned",
                       lambda: gv[gs] * vals[o],
                       lambda buf: xp.multiply(gv[gs], vals[o], out=buf))]
    return fwd, bwd


@_op("log")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)

        def run():
            vals[o] = xp.log(xp.maximum(vals[x], 1e-12))
        return run

    def bwd(rec, ctx):
        gv, vals, gs = ctx.gv, ctx.vals, ctx.g(rec.out)
        x = ctx.vslot(rec.parents[0])
        return None, [(rec.parents[0], "owned",
                       lambda: gv[gs] / xp.maximum(vals[x], 1e-12), None)]
    return fwd, bwd


@_op("sub_max")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        axis, keepdims = rec.attrs["axis"], rec.attrs["keepdims"]
        buf = ctx.obuf(rec)

        def run():
            m = vals[x].max(axis=axis, keepdims=keepdims)
            xp.subtract(vals[x], m, out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        return None, [(rec.parents[0], "id", None, None)]
    return fwd, bwd


@_op("dropout")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        rate, rng = rec.attrs["rate"], rec.attrs["rng"]
        shape, buf, cell = rec.parents[0].shape, ctx.obuf(rec), ctx.cell(rec)

        def run():
            mask = (rng.random(shape) >= rate).astype(buf.dtype) / (1.0 - rate)
            cell["mask"] = mask
            xp.multiply(vals[x], mask, out=buf)
            vals[o] = buf
        return run

    def bwd(rec, ctx):
        gv, gs, cell = ctx.gv, ctx.g(rec.out), ctx.cell(rec)
        return None, [(rec.parents[0], "owned",
                       lambda: gv[gs] * cell["mask"],
                       lambda buf: xp.multiply(gv[gs], cell["mask"],
                                               out=buf))]
    return fwd, bwd


@_op("index_select")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        index = rec.attrs["index"]

        def run():
            vals[o] = vals[x][index]
        return run

    def bwd(rec, ctx):
        gv, gs = ctx.gv, ctx.g(rec.out)
        index = rec.attrs["index"]
        layout: Optional[SegmentLayout] = rec.attrs["layout"]
        num_rows = rec.attrs["num_rows"]

        def value():
            return _segment_sum_data(gv[gs], index, num_rows, layout)

        def set_into(buf):
            buf.fill(0.0)
            if index.size == 0:
                return
            if autograd._FAST_SEGMENT_OPS:
                lay = layout if layout is not None \
                    else SegmentLayout(index, num_rows)
                if lay.starts.size:
                    buf[lay.segments] = xp.add_reduceat(
                        gv[gs][lay.order], lay.starts, axis=0)
                return
            xp.add_at(buf, index, gv[gs])
        return None, [(rec.parents[0], "owned", value, set_into)]
    return fwd, bwd


@_op("scatter_add")
def _():
    def fwd(rec, ctx):
        vals, x, o = ctx.vals, ctx.vslot(rec.parents[0]), ctx.vslot(rec.out)
        index = rec.attrs["index"]
        layout, num_rows = rec.attrs["layout"], rec.attrs["num_rows"]

        def run():
            vals[o] = _segment_sum_data(vals[x], index, num_rows, layout)
        return run

    def bwd(rec, ctx):
        gv, gs = ctx.gv, ctx.g(rec.out)
        index = rec.attrs["index"]
        return None, [(rec.parents[0], "owned", lambda: gv[gs][index], None)]
    return fwd, bwd


@_op("concat")
def _():
    def fwd(rec, ctx):
        vals = ctx.vals
        slots = [ctx.vslot(p) for p in rec.parents]
        o, axis = ctx.vslot(rec.out), rec.attrs["axis"]

        def run():
            vals[o] = xp.concatenate([vals[s] for s in slots], axis=axis)
        return run

    def bwd(rec, ctx):
        gv, gs = ctx.gv, ctx.g(rec.out)
        axis, offsets = rec.attrs["axis"], rec.attrs["offsets"]
        ndim = rec.out.ndim
        specs = []
        for p, start, stop in zip(rec.parents, offsets[:-1], offsets[1:]):
            if not p.requires_grad:
                continue
            slicer = [slice(None)] * ndim
            slicer[axis] = slice(start, stop)
            slicer = tuple(slicer)
            specs.append((p, "view",
                          (lambda slicer=slicer: gv[gs][slicer]), None))
        return None, specs
    return fwd, bwd


@_op("stack_rows")
def _():
    def fwd(rec, ctx):
        vals = ctx.vals
        slots = [ctx.vslot(p) for p in rec.parents]
        o = ctx.vslot(rec.out)

        def run():
            vals[o] = xp.stack([vals[s] for s in slots], axis=0)
        return run

    def bwd(rec, ctx):
        gv, gs = ctx.gv, ctx.g(rec.out)
        specs = []
        for i, p in enumerate(rec.parents):
            if not p.requires_grad:
                continue
            specs.append((p, "view", (lambda i=i: gv[gs][i]), None))
        return None, specs
    return fwd, bwd


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def _eager_topo(loss: Tensor) -> List[Tensor]:
    """Exactly the post-order DFS :meth:`Tensor.backward` uses."""
    topo: List[Tensor] = []
    visited = {id(loss)}
    stack: List[Tuple[Tensor, int]] = [(loss, 0)]
    while stack:
        node, next_parent = stack[-1]
        if next_parent < len(node._parents):
            stack[-1] = (node, next_parent + 1)
            parent = node._parents[next_parent]
            if parent.requires_grad and id(parent) not in visited:
                visited.add(id(parent))
                stack.append((parent, 0))
        else:
            topo.append(node)
            stack.pop()
    return topo


def graph_leaves(loss: Tensor) -> List[Tensor]:
    """``requires_grad`` leaves (no backward closure) reachable from ``loss``."""
    return [t for t in _eager_topo(loss) if t._backward is None]


class TapePlan:
    """A compiled forward + backward schedule for one step shape."""

    __slots__ = ("vals", "fwd", "bwd", "loss_slot", "leaf_assigns",
                 "leaf_guards", "leaf_ids", "absent", "config_epoch",
                 "fingerprint", "num_nodes", "num_bwd_thunks")

    def replay(self) -> float:
        """Run one step from the precompiled thunk lists; returns the loss."""
        for p in self.absent:
            p.grad = None
        for f in self.fwd:
            f()
        loss = float(self.vals[self.loss_slot])
        for b in self.bwd:
            b()
        for t, buf in self.leaf_assigns:
            t.grad = buf
            t.grad_arena = True
        return loss

    def guards_ok(self) -> bool:
        if self.config_epoch != autograd.config_epoch():
            return False
        vals = self.vals
        for t, slot in self.leaf_guards:
            if t.data is not vals[slot]:
                return False
        return True


def compile_plan(tape: Tape, loss: Tensor, arena: Dict[int, xp.ndarray],
                 arena_refs: Dict[int, Tensor],
                 wrt: Sequence[Tensor] = (),
                 fingerprint=None, pool: Optional[Dict] = None) -> TapePlan:
    """Compile a recorded step into a :class:`TapePlan`.

    ``arena``/``arena_refs`` are the runner's persistent per-leaf gradient
    buffers (keyed by ``id``); compiling against a shared arena is what
    keeps ``id(p.grad)`` stable across every plan of a runner.  ``pool``
    is the runner's shared step-scratch buffer pool (see :meth:`_Ctx.buf`).
    """
    if loss.data.size != 1:
        raise TapeUnsupported("tape loss must be scalar")
    by_id = tape.by_id
    topo = _eager_topo(loss)
    if id(loss) not in by_id:
        raise TapeUnsupported("loss tensor was not produced under recording")

    ctx = _Ctx(pool)
    recs: List[Optional[_Rec]] = []
    for node in topo:
        if node._backward is None:
            recs.append(None)  # leaf
            continue
        rec = by_id.get(id(node))
        if rec is None:
            raise TapeUnsupported("untraced op in graph (requires_grad "
                                  "tensor with an unknown backward closure)")
        if rec.op not in _BWD:
            raise TapeUnsupported(f"no tape emitter for op {rec.op!r}")
        recs.append(rec)

    # value slots for every node and every recorded parent (constants)
    for node, rec in zip(topo, recs):
        ctx.vslot(node)
        if rec is not None:
            for p in rec.parents:
                ctx.vslot(p)

    # ---- contribution counting + identity-alias fusion -----------------
    counts: Dict[int, int] = {}
    ident_from: Dict[int, _Rec] = {}
    for node, rec in zip(reversed(topo), reversed(recs)):
        if rec is None:
            continue
        op, out_shape = rec.op, rec.out.shape
        for p in rec.parents:
            if not p.requires_grad:
                continue
            counts[id(p)] = counts.get(id(p), 0) + 1
            if op in ("add_s", "sub_max") or \
                    (op == "add_t" and p.shape == out_shape):
                ident_from[id(p)] = rec
    aliased: Dict[int, Tensor] = {}
    for node, rec in zip(topo, recs):
        if rec is not None and counts.get(id(node)) == 1 \
                and id(node) in ident_from:
            aliased[id(node)] = ident_from[id(node)].out

    # resolved grad slot per topo node (leaves get their slot too; their
    # gv entry is the arena buffer)
    def resolve(t: Tensor) -> int:
        while id(t) in aliased:
            t = aliased[id(t)]
        return ctx.vslot(t)

    for node in topo:
        ctx._gslot[id(node)] = resolve(node)

    ctx.gv = [None] * len(ctx.vals)

    # ---- leaves: arena buffers ----------------------------------------
    leaf_assigns: List[Tuple[Tensor, xp.ndarray]] = []
    leaf_guards: List[Tuple[Tensor, int]] = []
    leaf_slots: Dict[int, xp.ndarray] = {}
    for node, rec in zip(topo, recs):
        if rec is not None:
            continue
        buf = arena.get(id(node))
        if buf is None or buf.shape != node.data.shape \
                or buf.dtype != node.data.dtype:
            buf = xp.empty_like(node.data)
            arena[id(node)] = buf
            arena_refs[id(node)] = node
        slot = ctx.vslot(node)
        ctx.gv[slot] = buf
        leaf_slots[slot] = buf
        leaf_assigns.append((node, buf))
        leaf_guards.append((node, slot))

    # ---- forward schedule (recorded execution order, needed nodes only)
    needed = {id(n) for n, r in zip(topo, recs) if r is not None}
    fwd: List[Callable[[], None]] = []
    for rec in tape.records:
        if id(rec.out) in needed:
            fwd.append(_FWD[rec.op](rec, ctx))

    # ---- backward schedule --------------------------------------------
    gv = ctx.gv
    loss_slot = ctx.vslot(loss)
    seed = xp.ones_like(loss.data)
    bwd: List[Callable[[], None]] = []
    bwd.append(lambda: gv.__setitem__(loss_slot, seed))
    written = {loss_slot}
    for node, rec in zip(reversed(topo), reversed(recs)):
        if rec is None:
            continue
        pre, specs = _BWD[rec.op](rec, ctx)
        if pre is not None:
            bwd.append(pre)
        gs = ctx._gslot[id(node)]
        for parent, kind, value_fn, set_into in specs:
            if id(parent) in aliased:
                continue  # fused away: parent grad slot aliases this one
            slot = ctx._gslot[id(parent)]
            first = slot not in written
            written.add(slot)
            buf = leaf_slots.get(slot)
            if kind == "id":
                value_fn = (lambda gs=gs: gv[gs])
            if buf is not None:  # leaf: arena buffer target
                if first:
                    if set_into is not None:
                        bwd.append(lambda set_into=set_into, buf=buf:
                                   set_into(buf))
                    else:
                        bwd.append(lambda buf=buf, value_fn=value_fn:
                                   xp.copyto(buf, value_fn()))
                else:
                    bwd.append(lambda buf=buf, value_fn=value_fn:
                               buf.__iadd__(value_fn()))
            elif first:
                if kind in ("id", "view"):
                    # eager _accumulate copies shared arrays on first write
                    bwd.append(lambda slot=slot, value_fn=value_fn:
                               gv.__setitem__(slot, value_fn().copy()))
                else:
                    bwd.append(lambda slot=slot, value_fn=value_fn:
                               gv.__setitem__(slot, value_fn()))
            else:
                bwd.append(lambda slot=slot, value_fn=value_fn:
                           gv[slot].__iadd__(value_fn()))

    plan = TapePlan()
    plan.vals = ctx.vals
    plan.fwd = fwd
    plan.bwd = bwd
    plan.loss_slot = loss_slot
    plan.leaf_assigns = leaf_assigns
    plan.leaf_guards = leaf_guards
    plan.leaf_ids = frozenset(id(t) for t, _ in leaf_assigns)
    plan.absent = [p for p in wrt if id(p) not in plan.leaf_ids]
    plan.config_epoch = autograd.config_epoch()
    plan.fingerprint = fingerprint
    plan.num_nodes = len(needed)
    plan.num_bwd_thunks = len(bwd)
    return plan


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
class TapeRunner:
    """Record-once / replay-forever driver for a training loop.

    One runner owns the gradient arena and a plan cache keyed by the
    caller's step key (e.g. the minibatch index).  ``step`` runs the
    forward closure under recording the first time a key is seen — that
    step is a *normal eager step* — compiles a plan, and replays it on
    every subsequent call whose guards and fingerprint still match.
    Unsupported graphs permanently pin their key to the eager path.
    """

    def __init__(self, wrt: Optional[Sequence[Tensor]] = None,
                 max_plans: int = 256):
        self.wrt: List[Tensor] = list(wrt) if wrt is not None else []
        self.max_plans = int(max_plans)
        self.plans: Dict[object, TapePlan] = {}
        self.unsupported: set = set()
        self.arena: Dict[int, xp.ndarray] = {}
        self._arena_refs: Dict[int, Tensor] = {}
        #: step-scratch buffers shared by every plan of this runner
        self.pool: Dict = {}
        self.replays = 0
        self.records = 0
        self.eager_steps = 0
        self.guard_failures = 0

    # ------------------------------------------------------------------
    def step(self, key, forward_fn: Callable[[], Tensor],
             fingerprint=None) -> float:
        """One training step: forward + backward; returns ``float(loss)``.

        Gradients land on the leaf tensors (``p.grad``); the caller runs
        the optimiser.  Parameters in ``wrt`` that do not participate in
        this step's graph get ``grad = None``, exactly as an eager
        ``optimizer.zero_grad()`` would leave them.
        """
        plan = self.plans.get(key)
        if plan is not None:
            if plan.fingerprint == fingerprint and plan.guards_ok():
                self.replays += 1
                return plan.replay()
            del self.plans[key]
            self.guard_failures += 1
        if key in self.unsupported:
            self.eager_steps += 1
            return self._eager_step(forward_fn)
        return self._record_step(key, forward_fn, fingerprint)

    # ------------------------------------------------------------------
    def _backward_eagerly(self, loss: Tensor) -> float:
        for p in self.wrt:
            p.grad = None
        for t in graph_leaves(loss):
            t.grad = None
        loss.backward()
        return float(loss.data)

    def _eager_step(self, forward_fn: Callable[[], Tensor]) -> float:
        return self._backward_eagerly(forward_fn())

    def _record_step(self, key, forward_fn, fingerprint) -> float:
        tape = Tape()
        with tape.recording():
            loss = forward_fn()
        try:
            plan = compile_plan(tape, loss, self.arena, self._arena_refs,
                                wrt=self.wrt, fingerprint=fingerprint,
                                pool=self.pool)
        except TapeUnsupported:
            self.unsupported.add(key)
            self.eager_steps += 1
            return self._backward_eagerly(loss)
        if len(self.plans) >= self.max_plans:
            self.plans.pop(next(iter(self.plans)))
        self.plans[key] = plan
        self.records += 1
        # the recording step is itself a normal eager step
        return self._backward_eagerly(loss)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"replays": self.replays, "records": self.records,
                "eager_steps": self.eager_steps,
                "guard_failures": self.guard_failures,
                "plans": len(self.plans)}
