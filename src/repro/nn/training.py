"""Training-loop utilities: seeding, mini-batches, early stopping."""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional, Sequence, Tuple

from repro.nn.autograd import Tensor
from repro.nn.backend import xp


def set_seed(seed: int) -> xp.Generator:
    """Seed Python and numpy RNGs; return a fresh generator for local use."""
    random.seed(seed)
    xp.global_seed(seed % (2 ** 32))
    return xp.default_rng(seed)


def iterate_minibatches(num_samples: int, batch_size: int,
                        rng: Optional[xp.Generator] = None,
                        shuffle: bool = True) -> Iterator[xp.ndarray]:
    """Yield index arrays covering ``range(num_samples)`` in batches."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    indices = xp.arange(num_samples)
    if shuffle:
        rng = rng or xp.default_rng(0)
        rng.shuffle(indices)
    for start in range(0, num_samples, batch_size):
        yield indices[start:start + batch_size]


def train_epoch(batches: Sequence,
                make_batch_loss: Callable[[object], Tensor],
                optimizer,
                tape=None,
                keys: Optional[Sequence] = None,
                fingerprints: Optional[Sequence] = None) -> Tuple[float, int]:
    """One epoch over ``batches``; returns ``(mean_loss, num_batches)``.

    With ``tape=None`` this is the classic eager loop: forward,
    ``zero_grad``, ``backward``, ``step``.  Passing a
    :class:`~repro.nn.tape.TapeRunner` routes each batch through
    ``tape.step`` instead — the first visit of a key records the graph and
    runs eagerly, later visits replay the compiled plan.  Both paths produce
    bit-identical losses and parameter trajectories; ``keys`` (default: the
    batch position) must identify a fixed (shape, values) batch and
    ``fingerprints`` can carry a cheap shape signature to force re-recording
    when a key's batch changes shape.
    """
    total = 0.0
    count = 0
    for i, batch in enumerate(batches):
        if tape is None:
            loss = make_batch_loss(batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            total += float(loss.data)
        else:
            key = keys[i] if keys is not None else i
            fp = fingerprints[i] if fingerprints is not None else None
            total += tape.step(key, lambda b=batch: make_batch_loss(b),
                               fingerprint=fp)
            optimizer.step()
        count += 1
    return (total / count if count else 0.0), count


class EarlyStopping:
    """Stop training when the monitored loss stops improving."""

    def __init__(self, patience: int = 10, min_delta: float = 1e-5):
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best: Optional[float] = None
        self.counter = 0

    def step(self, value: float) -> bool:
        """Record a new loss value; return True when training should stop."""
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.counter = 0
            return False
        self.counter += 1
        return self.counter >= self.patience
