"""Training-loop utilities: seeding, mini-batches, early stopping."""

from __future__ import annotations

import random
from typing import Iterator, Optional

import numpy as np


def set_seed(seed: int) -> np.random.Generator:
    """Seed Python and numpy RNGs; return a fresh generator for local use."""
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))
    return np.random.default_rng(seed)


def iterate_minibatches(num_samples: int, batch_size: int,
                        rng: Optional[np.random.Generator] = None,
                        shuffle: bool = True) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(num_samples)`` in batches."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    indices = np.arange(num_samples)
    if shuffle:
        rng = rng or np.random.default_rng(0)
        rng.shuffle(indices)
    for start in range(0, num_samples, batch_size):
        yield indices[start:start + batch_size]


class EarlyStopping:
    """Stop training when the monitored loss stops improving."""

    def __init__(self, patience: int = 10, min_delta: float = 1e-5):
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best: Optional[float] = None
        self.counter = 0

    def step(self, value: float) -> bool:
        """Record a new loss value; return True when training should stop."""
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.counter = 0
            return False
        self.counter += 1
        return self.counter >= self.patience
