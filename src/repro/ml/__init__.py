"""Classical ML models built from scratch (decision trees and ensembles).

Used by the baselines: Grewe et al. device mapping (decision tree), the
IR2Vec-style gradient-boosted alternative, and the BLISS-like tuner's pool of
lightweight surrogate models (random forest regressor).
"""

from repro.ml.trees import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    RandomForestRegressor,
)

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GradientBoostingClassifier",
]
