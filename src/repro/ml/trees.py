"""CART decision trees, random forests and gradient boosting from scratch."""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np


@dataclasses.dataclass
class _Node:
    """One tree node: internal (feature/threshold) or leaf (value)."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: Optional[np.ndarray] = None        # class distribution or mean

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _BaseTree:
    """Shared CART machinery (greedy best-split on a random feature subset)."""

    def __init__(self, max_depth: int = 6, min_samples_split: int = 4,
                 max_features: Optional[float] = None, seed: int = 0):
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self.root: Optional[_Node] = None
        self.n_features_: int = 0

    # subclasses provide leaf-value and impurity functions -------------
    def _leaf_value(self, y: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _impurity(self, y: np.ndarray) -> float:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be [n, d] with matching y")
        self.n_features_ = x.shape[1]
        self.root = self._grow(x, y, depth=0)
        return self

    def _candidate_features(self) -> np.ndarray:
        d = self.n_features_
        if self.max_features is None:
            return np.arange(d)
        k = max(1, int(round(d * float(self.max_features))))
        return self._rng.choice(d, size=min(k, d), replace=False)

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=self._leaf_value(y))
        if (depth >= self.max_depth or x.shape[0] < self.min_samples_split
                or self._impurity(y) <= 1e-12):
            return node
        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        parent_impurity = self._impurity(y)
        n = x.shape[0]
        for feature in self._candidate_features():
            values = x[:, feature]
            thresholds = np.unique(np.quantile(values, np.linspace(0.1, 0.9, 9)))
            for threshold in thresholds:
                mask = values <= threshold
                n_left = int(mask.sum())
                if n_left == 0 or n_left == n:
                    continue
                gain = parent_impurity - (
                    n_left / n * self._impurity(y[mask])
                    + (n - n_left) / n * self._impurity(y[~mask]))
                if gain > best_gain + 1e-12:
                    best_gain, best_feature, best_threshold = gain, feature, threshold
        if best_feature < 0:
            return node
        mask = x[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = float(best_threshold)
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def _predict_value(self, row: np.ndarray) -> np.ndarray:
        node = self.root
        if node is None:
            raise RuntimeError("tree is not fitted")
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self.root)


class DecisionTreeClassifier(_BaseTree):
    """CART classifier with Gini impurity."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        y = np.asarray(y, dtype=np.int64)
        self.classes_ = np.unique(y)
        self._class_index = {c: i for i, c in enumerate(self.classes_)}
        return super().fit(x, np.vectorize(self._class_index.get)(y))

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=len(self.classes_)).astype(np.float64)
        return counts / max(1.0, counts.sum())

    def _impurity(self, y: np.ndarray) -> float:
        if y.size == 0:
            return 0.0
        p = np.bincount(y, minlength=len(self.classes_)) / y.size
        return float(1.0 - np.sum(p ** 2))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.stack([self._predict_value(row) for row in x])

    def predict(self, x: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]


class DecisionTreeRegressor(_BaseTree):
    """CART regressor with variance reduction."""

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([float(np.mean(y))]) if y.size else np.array([0.0])

    def _impurity(self, y: np.ndarray) -> float:
        return float(np.var(y)) if y.size else 0.0

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.array([self._predict_value(row)[0] for row in x])


class RandomForestRegressor:
    """Bagged ensemble of randomized regression trees."""

    def __init__(self, n_estimators: int = 20, max_depth: int = 6,
                 max_features: float = 0.7, seed: int = 0):
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed
        self.trees_: List[DecisionTreeRegressor] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        for i in range(self.n_estimators):
            idx = rng.integers(0, x.shape[0], size=x.shape[0])
            tree = DecisionTreeRegressor(max_depth=self.max_depth,
                                         max_features=self.max_features,
                                         seed=self.seed + i)
            tree.fit(x[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        return np.mean([t.predict(x) for t in self.trees_], axis=0)

    def predict_std(self, x: np.ndarray) -> np.ndarray:
        """Ensemble standard deviation (uncertainty proxy for BLISS-like BO)."""
        preds = np.stack([t.predict(x) for t in self.trees_])
        return preds.std(axis=0)


class GradientBoostingClassifier:
    """Binary gradient boosting with logistic loss on regression stumps."""

    def __init__(self, n_estimators: int = 50, learning_rate: float = 0.2,
                 max_depth: int = 3, seed: int = 0):
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.seed = seed
        self.trees_: List[DecisionTreeRegressor] = []
        self.base_score_ = 0.0

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -40, 40)))

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("labels must be binary 0/1")
        pos = np.clip(y.mean(), 1e-3, 1 - 1e-3)
        self.base_score_ = float(np.log(pos / (1 - pos)))
        score = np.full(y.shape, self.base_score_)
        self.trees_ = []
        for i in range(self.n_estimators):
            residual = y - self._sigmoid(score)
            tree = DecisionTreeRegressor(max_depth=self.max_depth,
                                         seed=self.seed + i)
            tree.fit(x, residual)
            update = tree.predict(x)
            score = score + self.learning_rate * update
            self.trees_.append(tree)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        score = np.full(x.shape[0], self.base_score_)
        for tree in self.trees_:
            score = score + self.learning_rate * tree.predict(x)
        return score

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        p = self._sigmoid(self.decision_function(x))
        return np.stack([1 - p, p], axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.decision_function(x) > 0).astype(np.int64)
